//! Secpert: the security expert (paper §6) — the policy loaded into the
//! CLIPS-like engine, the native filter functions, and the event
//! protocol between Harrier and the rules.

use std::sync::{Arc, Mutex};

use harrier::{Origin, SecpertEvent, SourceInfo};
use secpert_engine::{Engine, EngineError, Fact, FactBuilder, MatchStats, Value};

use crate::policy::{PolicyConfig, POLICY_CLIPS};
use crate::provenance::{FactSupport, Provenance};
use crate::warning::{Severity, Warning};

/// The security expert system: policy + engine + warning collection.
///
/// Warnings are stored behind `Arc` so readers can snapshot the sink
/// under the lock with cheap pointer clones and deep-copy outside it —
/// the `warn` native (called mid-inference) never contends with a
/// reader doing per-warning string clones.
pub struct Secpert {
    engine: Engine,
    warnings: Arc<Mutex<Vec<Arc<Warning>>>>,
    events_processed: u64,
}

impl Secpert {
    /// Builds a Secpert with the standard policy and the given
    /// configuration.
    ///
    /// # Errors
    ///
    /// Returns engine errors if the embedded policy fails to load (a
    /// bug, covered by tests) — propagated rather than unwrapped so
    /// custom policies loaded on top behave the same way.
    pub fn new(config: &PolicyConfig) -> Result<Secpert, EngineError> {
        let mut engine = Engine::new();
        let warnings: Arc<Mutex<Vec<Arc<Warning>>>> = Arc::new(Mutex::new(Vec::new()));

        register_filters(&mut engine, config);
        register_warn(&mut engine, warnings.clone());
        // Provenance: every firing snapshots which other rules' live
        // matches shared its supporting facts (see attach_provenance).
        engine.set_support_capture(true);
        engine.load_str(POLICY_CLIPS)?;
        for rules in &config.extra_rules {
            engine.load_str(rules)?;
        }
        engine.set_global("RARE_FREQUENCY", config.rare_frequency);
        engine.set_global("LONG_TIME", config.long_time);
        engine.set_global("PROC_COUNT_HIGH", config.proc_count_high);
        engine.set_global("PROC_RATE_HIGH", config.proc_rate_high);
        engine.set_global("MEM_HIGH", config.mem_high);
        engine.set_global("MEM_VERY_HIGH", config.mem_very_high);
        engine.reset()?;
        Ok(Secpert { engine, warnings, events_processed: 0 })
    }

    /// Loads additional CLIPS policy text (custom rules on top of the
    /// standard policy).
    ///
    /// # Errors
    ///
    /// Propagates parse and semantic errors from the engine.
    pub fn load_policy(&mut self, clips: &str) -> Result<(), EngineError> {
        self.engine.load_str(clips)
    }

    /// Engine access (inspection, custom natives, extra globals).
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Feeds one Harrier event through the rules; returns the warnings
    /// this event produced.
    ///
    /// # Errors
    ///
    /// Propagates engine evaluation errors (policy bugs).
    pub fn process_event(&mut self, event: &SecpertEvent) -> Result<Vec<Warning>, EngineError> {
        let _span = hth_trace::span("secpert.process_event");
        self.events_processed += 1;
        let before = self.warnings.lock().expect("warning sink poisoned").len();
        let firings_before = self.engine.firings().len();
        let fact = self.event_to_fact(event)?;
        self.engine.assert_fact(fact)?;
        self.engine.run(None)?;
        self.attach_provenance(event, before, firings_before);
        // Snapshot the tail under the lock (Arc bumps only); deep-clone
        // the warnings after releasing it.
        let tail: Vec<Arc<Warning>> = {
            let sink = self.warnings.lock().expect("warning sink poisoned");
            sink[before..].to_vec()
        };
        Ok(tail.iter().map(|w| (**w).clone()).collect())
    }

    /// Pairs each warning the current event produced with the firing
    /// that issued it and swaps a provenance-enriched copy into the
    /// sink. Matching is by rule name over the event's firing tail, in
    /// order — policy rules call `warn` exactly once per firing.
    fn attach_provenance(
        &self,
        event: &SecpertEvent,
        warnings_before: usize,
        firings_before: usize,
    ) {
        let firings = &self.engine.firings()[firings_before..];
        if firings.is_empty() {
            return;
        }
        let taint_sources = taint_sources_of(event);
        let mut sink = self.warnings.lock().expect("warning sink poisoned");
        let mut cursor = 0usize;
        for slot in sink[warnings_before..].iter_mut() {
            let Some(offset) = firings[cursor..].iter().position(|f| f.rule == slot.rule) else {
                continue;
            };
            let at = cursor + offset;
            cursor = at + 1;
            let firing = &firings[at];
            // Fire-time support from the match network when available
            // (Rete matcher); otherwise just the matched-fact snapshots.
            let support: Vec<FactSupport> = match self.engine.support_for(firing.seq) {
                Some(records) => records
                    .iter()
                    .enumerate()
                    .map(|(i, r)| FactSupport {
                        id: r.fact,
                        fact: firing.facts.get(i).cloned().unwrap_or_default(),
                        co_rules: r.co_rules.clone(),
                    })
                    .collect(),
                None => firing
                    .fact_ids
                    .iter()
                    .flatten()
                    .enumerate()
                    .map(|(i, id)| FactSupport {
                        id: id.raw(),
                        fact: firing.facts.get(i).cloned().unwrap_or_default(),
                        co_rules: Vec::new(),
                    })
                    .collect(),
            };
            let provenance = Provenance {
                event_index: self.events_processed,
                syscall: event.syscall().to_string(),
                firing_seq: firing.seq as u64,
                rule_chain: firings[..=at].iter().map(|f| f.rule.clone()).collect(),
                support,
                taint_sources: taint_sources.clone(),
            };
            let mut enriched = (**slot).clone();
            enriched.provenance = Some(Box::new(provenance));
            *slot = Arc::new(enriched);
        }
    }

    /// All warnings issued so far.
    pub fn warnings(&self) -> Vec<Warning> {
        let snapshot: Vec<Arc<Warning>> =
            self.warnings.lock().expect("warning sink poisoned").clone();
        snapshot.iter().map(|w| (**w).clone()).collect()
    }

    /// Match-network counters for this expert's engine (all-zero when
    /// the engine was built with the naive matcher).
    pub fn match_stats(&self) -> MatchStats {
        self.engine.match_stats()
    }

    /// Folds this expert's counters into `metrics`: the match-network
    /// stats plus `hth_secpert_events` / `hth_secpert_warnings`.
    pub fn record_metrics(&self, metrics: &mut hth_trace::MetricsSnapshot) {
        self.engine.match_stats().record_metrics(metrics);
        metrics.add_counter("hth_secpert_events", self.events_processed);
        let warnings = self.warnings.lock().expect("warning sink poisoned").len();
        metrics.add_counter("hth_secpert_warnings", warnings as u64);
    }

    /// Takes the engine's printout transcript (paper-style warning text).
    pub fn take_transcript(&mut self) -> String {
        self.engine.take_output()
    }

    fn event_to_fact(&self, event: &SecpertEvent) -> Result<Fact, EngineError> {
        fn names(sources: &[SourceInfo]) -> Value {
            Value::multi(sources.iter().map(|s| Value::str(&s.name)))
        }
        fn types(sources: &[SourceInfo]) -> Value {
            Value::multi(sources.iter().map(|s| Value::sym(s.kind.symbol())))
        }
        fn origin_names(origin: &Origin) -> Value {
            names(&origin.sources)
        }
        fn origin_types(origin: &Origin) -> Value {
            types(&origin.sources)
        }

        match event {
            SecpertEvent::ResourceAccess {
                pid,
                syscall,
                resource,
                origin,
                time,
                frequency,
                address,
                proc_count,
                proc_rate,
                mem_total,
                server,
            } => {
                let mut b: FactBuilder = self
                    .engine
                    .fact("system_call_access")?
                    .slot("pid", i64::from(*pid))
                    .slot("system_call_name", Value::sym(*syscall))
                    .slot("resource_name", Value::str(&resource.name))
                    .slot("resource_type", Value::sym(resource.kind.symbol()))
                    .slot("resource_origin_name", origin_names(origin))
                    .slot("resource_origin_type", origin_types(origin))
                    .slot("time", *time as i64)
                    .slot("frequency", *frequency as i64)
                    .slot("address", Value::str(format!("{address:x}")))
                    .slot("proc_count", proc_count.unwrap_or(0) as i64)
                    .slot("proc_rate", proc_rate.unwrap_or(0) as i64)
                    .slot("mem_total", mem_total.unwrap_or(0) as i64);
                if let Some(server) = server {
                    b = b
                        .slot("server_address", Value::str(&server.address))
                        .slot("server_origin_name", origin_names(&server.origin))
                        .slot("server_origin_type", origin_types(&server.origin));
                }
                b.build()
            }
            SecpertEvent::DataTransfer {
                pid,
                syscall,
                data_sources,
                data_origin,
                target,
                target_origin,
                time,
                frequency,
                address,
                executable_content,
                server,
            } => {
                let mut b = self
                    .engine
                    .fact("data_transfer")?
                    .slot("pid", i64::from(*pid))
                    .slot("system_call_name", Value::sym(*syscall))
                    .slot("source_name", names(data_sources))
                    .slot("source_type", types(data_sources))
                    .slot("data_origin_name", origin_names(data_origin))
                    .slot("data_origin_type", origin_types(data_origin))
                    .slot("target_name", Value::str(&target.name))
                    .slot("target_type", Value::sym(target.kind.symbol()))
                    .slot("target_origin_name", origin_names(target_origin))
                    .slot("target_origin_type", origin_types(target_origin))
                    .slot("time", *time as i64)
                    .slot("frequency", *frequency as i64)
                    .slot("address", Value::str(format!("{address:x}")))
                    .slot("executable_content", Value::bool(*executable_content));
                if let Some(server) = server {
                    b = b
                        .slot("server_address", Value::str(&server.address))
                        .slot("server_origin_name", origin_names(&server.origin))
                        .slot("server_origin_type", origin_types(&server.origin));
                }
                b.build()
            }
        }
    }
}

/// The event's taint-source set, rendered `KIND(name)`: the resource
/// origin for accesses; the data origin plus the target origin
/// (deduplicated, in that order) for transfers.
fn taint_sources_of(event: &SecpertEvent) -> Vec<String> {
    fn render(source: &SourceInfo) -> String {
        format!("{}({})", source.kind.symbol(), source.name)
    }
    match event {
        SecpertEvent::ResourceAccess { origin, .. } => origin.sources.iter().map(render).collect(),
        SecpertEvent::DataTransfer { data_origin, target_origin, .. } => {
            let mut out: Vec<String> = data_origin.sources.iter().map(render).collect();
            for source in &target_origin.sources {
                let rendered = render(source);
                if !out.contains(&rendered) {
                    out.push(rendered);
                }
            }
            out
        }
    }
}

/// Registers the `filter_*` natives used by the policy: each takes two
/// parallel multifields (types, names) and returns the names of the
/// entries with the wanted type, minus trusted ones.
fn register_filters(engine: &mut Engine, config: &PolicyConfig) {
    fn filter(
        args: &[Value],
        wanted: &'static str,
        trusted: Arc<Vec<String>>,
    ) -> Result<Value, EngineError> {
        let [types, names] = args else {
            return Err(EngineError::Type {
                expected: "two multifields (types, names)",
                found: format!("{} arguments", args.len()),
            });
        };
        let types = types.as_multi()?;
        let names = names.as_multi()?;
        let mut out = Vec::new();
        for (t, n) in types.iter().zip(names.iter()) {
            if t.is_sym(wanted) {
                let name = n.as_text().unwrap_or_default();
                if !trusted.iter().any(|trust| name.contains(trust.as_str())) {
                    out.push(n.clone());
                }
            }
        }
        Ok(Value::multi(out))
    }

    let trusted_bin = Arc::new(config.trusted_binaries.clone());
    let trusted_sock = Arc::new(config.trusted_sockets.clone());
    let none: Arc<Vec<String>> = Arc::new(Vec::new());

    let t = trusted_bin;
    engine.register_fn("filter_binary", move |args| filter(args, "BINARY", t.clone()));
    let t = trusted_sock.clone();
    engine.register_fn("filter_socket", move |args| filter(args, "SOCKET", t.clone()));
    let t = trusted_sock;
    engine.register_fn("filter_sockets_in", move |args| filter(args, "SOCKET", t.clone()));
    let t = none.clone();
    engine.register_fn("filter_file", move |args| filter(args, "FILE", t.clone()));
    let t = none.clone();
    engine.register_fn("filter_user", move |args| filter(args, "USER_INPUT", t.clone()));
    let t = none;
    engine.register_fn("filter_hardware", move |args| filter(args, "HARDWARE", t.clone()));

    engine.register_fn("severity-text", |args| {
        let level = args
            .first()
            .ok_or(EngineError::Type { expected: "severity level", found: "nothing".into() })?
            .as_int()?;
        let text = match level {
            1 => "Warning [LOW]",
            2 => "Warning [MEDIUM]",
            3 => "Warning [HIGH]",
            _ => "Warning [?]",
        };
        Ok(Value::str(text))
    });
}

/// Registers the `warn` native: `(warn level rule pid time message)`.
fn register_warn(engine: &mut Engine, sink: Arc<Mutex<Vec<Arc<Warning>>>>) {
    engine.register_fn("warn", move |args| {
        let [level, rule, pid, time, message] = args else {
            return Err(EngineError::Type {
                expected: "(warn level rule pid time message)",
                found: format!("{} arguments", args.len()),
            });
        };
        let severity = Severity::from_level(level.as_int()?)
            .ok_or(EngineError::Type { expected: "severity 1..=3", found: level.to_string() })?;
        let warning = Warning {
            severity,
            rule: rule.as_text().unwrap_or("?").to_string(),
            pid: pid.as_int()? as u32,
            time: time.as_int()? as u64,
            message: message.to_display_string(),
            provenance: None,
        };
        sink.lock().expect("warning sink poisoned").push(Arc::new(warning));
        hth_trace::instant("secpert.warning");
        Ok(Value::truth())
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use harrier::{ResourceType, ServerInfo};

    fn access_event(
        syscall: &'static str,
        name: &str,
        origin: Vec<(ResourceType, &str)>,
    ) -> SecpertEvent {
        SecpertEvent::ResourceAccess {
            pid: 1,
            syscall,
            resource: SourceInfo::new(ResourceType::File, name),
            origin: Origin {
                sources: origin.into_iter().map(|(k, n)| SourceInfo::new(k, n)).collect(),
            },
            time: 10,
            frequency: 5,
            address: 0x8048403,
            proc_count: None,
            proc_rate: None,
            mem_total: None,
            server: None,
        }
    }

    #[test]
    fn policy_loads() {
        let secpert = Secpert::new(&PolicyConfig::default());
        assert!(secpert.is_ok(), "{:?}", secpert.err());
    }

    #[test]
    fn hardcoded_execve_is_low() {
        let mut s = Secpert::new(&PolicyConfig::default()).unwrap();
        let w = s
            .process_event(&access_event(
                "SYS_execve",
                "/bin/ls",
                vec![(ResourceType::Binary, "/bin/dropper")],
            ))
            .unwrap();
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].severity, Severity::Low);
        assert!(w[0].message.contains("SYS_execve"));
        assert!(w[0].message.contains("/bin/ls"));
        let transcript = s.take_transcript();
        assert!(transcript.contains("Warning [LOW]"), "{transcript}");
    }

    #[test]
    fn user_execve_is_silent() {
        let mut s = Secpert::new(&PolicyConfig::default()).unwrap();
        let w = s
            .process_event(&access_event(
                "SYS_execve",
                "/bin/ls",
                vec![(ResourceType::UserInput, "USER_INPUT")],
            ))
            .unwrap();
        assert!(w.is_empty());
    }

    #[test]
    fn socket_execve_is_high() {
        let mut s = Secpert::new(&PolicyConfig::default()).unwrap();
        let w = s
            .process_event(&access_event(
                "SYS_execve",
                "/tmp/payload",
                vec![(ResourceType::Socket, "evil:99 (AF_INET)")],
            ))
            .unwrap();
        assert_eq!(w[0].severity, Severity::High);
    }

    #[test]
    fn rare_late_hardcoded_execve_is_medium() {
        let mut s = Secpert::new(&PolicyConfig::default()).unwrap();
        let event = SecpertEvent::ResourceAccess {
            pid: 1,
            syscall: "SYS_execve",
            resource: SourceInfo::new(ResourceType::File, "/bin/sh"),
            origin: Origin { sources: vec![SourceInfo::new(ResourceType::Binary, "/bin/app")] },
            time: 500,    // > LONG_TIME
            frequency: 1, // < RARE_FREQUENCY
            address: 0,
            proc_count: None,
            proc_rate: None,
            mem_total: None,
            server: None,
        };
        let w = s.process_event(&event).unwrap();
        assert_eq!(w[0].severity, Severity::Medium);
        assert!(w[0].message.contains("rarely executed"));
    }

    #[test]
    fn trusted_libc_execve_is_filtered() {
        let mut s = Secpert::new(&PolicyConfig::default()).unwrap();
        // The ElmExploit false negative: /bin/sh string lives in libc.so.
        let w = s
            .process_event(&access_event(
                "SYS_execve",
                "/bin/sh",
                vec![(ResourceType::Binary, "/lib/tls/libc.so.6")],
            ))
            .unwrap();
        assert!(w.is_empty(), "trusted libc must be filtered: {w:?}");
    }

    #[test]
    fn clone_count_and_rate_rules() {
        let mut s = Secpert::new(&PolicyConfig::default()).unwrap();
        let mk = |count, rate| SecpertEvent::ResourceAccess {
            pid: 1,
            syscall: "SYS_clone",
            resource: SourceInfo::new(ResourceType::Unknown, "process"),
            origin: Origin::unknown(),
            time: 5,
            frequency: 3,
            address: 0,
            proc_count: Some(count),
            proc_rate: Some(rate),
            mem_total: None,
            server: None,
        };
        assert!(s.process_event(&mk(2, 2)).unwrap().is_empty());
        let w = s.process_event(&mk(10, 2)).unwrap();
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].severity, Severity::Low);
        let w = s.process_event(&mk(30, 25)).unwrap();
        assert_eq!(w.len(), 2, "both count (Low) and rate (Medium) fire");
        assert!(w.iter().any(|w| w.severity == Severity::Medium));
    }

    fn transfer(
        sources: Vec<(ResourceType, &str)>,
        data_origin: Vec<(ResourceType, &str)>,
        target: (ResourceType, &str),
        target_origin: Vec<(ResourceType, &str)>,
        server: Option<ServerInfo>,
    ) -> SecpertEvent {
        let mk = |v: Vec<(ResourceType, &str)>| Origin {
            sources: v.into_iter().map(|(k, n)| SourceInfo::new(k, n)).collect(),
        };
        SecpertEvent::DataTransfer {
            pid: 1,
            syscall: "SYS_write",
            data_sources: sources.into_iter().map(|(k, n)| SourceInfo::new(k, n)).collect(),
            data_origin: mk(data_origin),
            target: SourceInfo::new(target.0, target.1),
            target_origin: mk(target_origin),
            time: 10,
            frequency: 5,
            address: 0,
            executable_content: false,
            server,
        }
    }

    #[test]
    fn file_to_socket_matrix() {
        let mut s = Secpert::new(&PolicyConfig::default()).unwrap();
        // user file + user socket: silent.
        let w = s
            .process_event(&transfer(
                vec![(ResourceType::File, "/etc/passwd")],
                vec![(ResourceType::UserInput, "USER_INPUT")],
                (ResourceType::Socket, "h:1 (AF_INET)"),
                vec![(ResourceType::UserInput, "USER_INPUT")],
                None,
            ))
            .unwrap();
        assert!(w.is_empty());
        // user file + hardcoded socket: Low.
        let w = s
            .process_event(&transfer(
                vec![(ResourceType::File, "/etc/passwd")],
                vec![(ResourceType::UserInput, "USER_INPUT")],
                (ResourceType::Socket, "h:2 (AF_INET)"),
                vec![(ResourceType::Binary, "/bin/x")],
                None,
            ))
            .unwrap();
        assert_eq!(w[0].severity, Severity::Low);
        // hardcoded file + hardcoded socket: High.
        let w = s
            .process_event(&transfer(
                vec![(ResourceType::File, "/etc/passwd")],
                vec![(ResourceType::Binary, "/bin/x")],
                (ResourceType::Socket, "h:3 (AF_INET)"),
                vec![(ResourceType::Binary, "/bin/x")],
                None,
            ))
            .unwrap();
        assert_eq!(w[0].severity, Severity::High);
    }

    #[test]
    fn binary_to_hardcoded_file_is_high() {
        let mut s = Secpert::new(&PolicyConfig::default()).unwrap();
        let w = s
            .process_event(&transfer(
                vec![(ResourceType::Binary, "/bin/grabem")],
                vec![],
                (ResourceType::File, ".exrc%"),
                vec![(ResourceType::Binary, "/bin/grabem")],
                None,
            ))
            .unwrap();
        assert_eq!(w[0].severity, Severity::High);
        assert!(w[0].message.contains(".exrc%"));
    }

    #[test]
    fn hardware_to_hardcoded_file_is_high() {
        let mut s = Secpert::new(&PolicyConfig::default()).unwrap();
        let w = s
            .process_event(&transfer(
                vec![(ResourceType::Hardware, "HARDWARE")],
                vec![],
                (ResourceType::File, "hw.dat"),
                vec![(ResourceType::Binary, "/bin/x")],
                None,
            ))
            .unwrap();
        assert_eq!(w[0].severity, Severity::High);
        // user filename: silent.
        let w = s
            .process_event(&transfer(
                vec![(ResourceType::Hardware, "HARDWARE")],
                vec![],
                (ResourceType::File, "user.dat"),
                vec![(ResourceType::UserInput, "USER_INPUT")],
                None,
            ))
            .unwrap();
        assert!(w.is_empty());
    }

    #[test]
    fn backdoor_server_rule_fires_with_server_context() {
        let mut s = Secpert::new(&PolicyConfig::default()).unwrap();
        let server = ServerInfo {
            address: "LocalHost:11116 (AF_INET)".into(),
            origin: Origin { sources: vec![SourceInfo::new(ResourceType::Binary, "pmad")] },
        };
        let w = s
            .process_event(&transfer(
                vec![(ResourceType::File, "outpipe32425")],
                vec![(ResourceType::Binary, "pmad")],
                (ResourceType::Socket, "gateway:36982 (AF_INET)"),
                vec![(ResourceType::Socket, "gateway:36982 (AF_INET)")],
                Some(server),
            ))
            .unwrap();
        assert!(w
            .iter()
            .any(|w| w.rule == "check_backdoor_server" && w.severity == Severity::High));
        assert!(w.iter().any(|w| w.message.contains("server with the address")));
    }

    #[test]
    fn console_writes_are_silent() {
        let mut s = Secpert::new(&PolicyConfig::default()).unwrap();
        let w = s
            .process_event(&transfer(
                vec![(ResourceType::File, "/etc/motd")],
                vec![(ResourceType::UserInput, "USER_INPUT")],
                (ResourceType::Console, "STDOUT"),
                vec![],
                None,
            ))
            .unwrap();
        assert!(w.is_empty());
    }

    #[test]
    fn working_memory_stays_clean() {
        let mut s = Secpert::new(&PolicyConfig::default()).unwrap();
        for i in 0..20 {
            let _ = s
                .process_event(&access_event(
                    "SYS_open",
                    &format!("/tmp/f{i}"),
                    vec![(ResourceType::Binary, "/bin/x")],
                ))
                .unwrap();
        }
        // Only initial-fact should remain after cleanup rules.
        assert_eq!(s.engine_mut().fact_count(), 1);
    }
}
