//! Warnings: the user-facing output of the HTH pipeline.

use std::fmt;

/// Warning severity (paper §4: confidence that the behaviour is
/// actually malicious).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Low confidence — also seen in trusted programs.
    Low,
    /// Medium confidence.
    Medium,
    /// High confidence the behaviour is malicious.
    High,
}

impl Severity {
    /// Parses the policy's numeric encoding (1/2/3).
    pub fn from_level(level: i64) -> Option<Severity> {
        Some(match level {
            1 => Severity::Low,
            2 => Severity::Medium,
            3 => Severity::High,
            _ => return None,
        })
    }

    /// The policy's numeric encoding (inverse of
    /// [`Severity::from_level`]).
    pub fn level(self) -> i64 {
        match self {
            Severity::Low => 1,
            Severity::Medium => 2,
            Severity::High => 3,
        }
    }

    /// The paper's rendering: `LOW`, `MEDIUM`, `HIGH`.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Low => "LOW",
            Severity::Medium => "MEDIUM",
            Severity::High => "HIGH",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One warning issued by Secpert.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Warning {
    /// Severity level.
    pub severity: Severity,
    /// Name of the policy rule that fired.
    pub rule: String,
    /// Monitored process.
    pub pid: u32,
    /// Virtual time of the triggering event.
    pub time: u64,
    /// Human-readable message (paper-style).
    pub message: String,
    /// The causal story behind the warning (see
    /// [`Provenance`](crate::Provenance)); attached by Secpert right
    /// after the triggering event finishes, `None` for hand-built
    /// warnings. Boxed to keep the common path small.
    pub provenance: Option<Box<crate::provenance::Provenance>>,
}

impl fmt::Display for Warning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Warning [{}] {}", self.severity, self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_levels() {
        assert_eq!(Severity::from_level(1), Some(Severity::Low));
        assert_eq!(Severity::from_level(3), Some(Severity::High));
        assert_eq!(Severity::from_level(9), None);
        assert!(Severity::High > Severity::Low);
    }

    #[test]
    fn display_matches_paper() {
        let w = Warning {
            severity: Severity::High,
            rule: "flow_to_file_hardcoded".into(),
            pid: 1,
            time: 7,
            message: "Found Write call to .exrc%".into(),
            provenance: None,
        };
        assert_eq!(w.to_string(), "Warning [HIGH] Found Write call to .exrc%");
    }
}
