//! Session digests: the compact facts one monitored session exports for
//! fleet-wide correlation.
//!
//! The paper scores one process at a time; a fleet correlator needs a
//! summary of each session that is (a) tiny compared to the event
//! stream, (b) order-insensitive, and (c) mergeable — a digest built
//! from two halves of a stream must equal the digest of the whole.
//! [`SessionDigest`] is that summary: warning skeletons (severity +
//! rule), hardcoded beacon endpoints, dropped-artifact identities, and
//! per-target exfiltration byte counters. All collections are B-tree
//! ordered so two digests built from the same events are *structurally
//! identical*, whatever shard or batch boundary produced them — the
//! property `tests/correlate_equivalence.rs` pins.

use std::collections::{BTreeMap, BTreeSet};

use harrier::{ResourceType, SecpertEvent};

use crate::warning::{Severity, Warning};

/// Identity of an artifact a session dropped on disk: the path plus the
/// content classification. Two sessions writing executable socket-fed
/// bytes to the same path share a [`DropIdentity`] — the fleet-level
/// "recurring dropper" signal.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct DropIdentity {
    /// Path written to.
    pub path: String,
    /// True when the written bytes looked executable.
    pub executable: bool,
    /// Sorted, deduplicated taint kinds of the written bytes
    /// (`SOCKET`, `FILE`, …).
    pub content: Vec<String>,
}

/// The compact, mergeable summary of one session that crosses the wire
/// to the fleet correlator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SessionDigest {
    /// Fleet-wide session id.
    pub session: u64,
    /// Program label (scenario id under `hth fleet`, client-supplied
    /// under `hth serve`); empty when never registered.
    pub label: String,
    /// Events the session produced.
    pub events: u64,
    /// Per-session warning skeletons: `(severity, rule)` → count.
    pub warnings: BTreeMap<(Severity, String), u64>,
    /// Endpoints the program connected to using a *hardcoded* address —
    /// the per-session C2 beacon candidates.
    pub beacons: BTreeSet<String>,
    /// Artifacts written to disk from socket-tainted bytes.
    pub drops: BTreeSet<DropIdentity>,
    /// Bytes of file/user-input-tainted data written per socket target.
    pub exfil: BTreeMap<String, u64>,
}

impl SessionDigest {
    /// An empty digest for a session.
    pub fn new(session: u64, label: impl Into<String>) -> SessionDigest {
        SessionDigest {
            session,
            label: label.into(),
            events: 0,
            warnings: BTreeMap::new(),
            beacons: BTreeSet::new(),
            drops: BTreeSet::new(),
            exfil: BTreeMap::new(),
        }
    }

    /// True when the session produced nothing a correlator could use.
    pub fn is_quiet(&self) -> bool {
        self.warnings.is_empty()
            && self.beacons.is_empty()
            && self.drops.is_empty()
            && self.exfil.is_empty()
    }

    /// Folds another digest of the *same session* into this one: counts
    /// add, sets union. Digesting a stream in two halves and merging
    /// equals digesting the whole — the property chaos recovery leans
    /// on when a quarantined shard's lost digests are replayed.
    pub fn merge(&mut self, other: &SessionDigest) {
        debug_assert_eq!(self.session, other.session, "merging digests of different sessions");
        if self.label.is_empty() {
            self.label = other.label.clone();
        }
        self.events += other.events;
        for (key, count) in &other.warnings {
            *self.warnings.entry(key.clone()).or_insert(0) += count;
        }
        self.beacons.extend(other.beacons.iter().cloned());
        self.drops.extend(other.drops.iter().cloned());
        for (target, bytes) in &other.exfil {
            *self.exfil.entry(target.clone()).or_insert(0) += bytes;
        }
    }
}

/// Incrementally builds a [`SessionDigest`] from a session's event and
/// warning stream. Order-insensitive: any interleaving of the same
/// multiset of observations yields the same digest.
#[derive(Clone, Debug)]
pub struct DigestBuilder {
    digest: SessionDigest,
}

impl DigestBuilder {
    /// A builder for one session.
    pub fn new(session: u64, label: impl Into<String>) -> DigestBuilder {
        DigestBuilder { digest: SessionDigest::new(session, label) }
    }

    /// (Re)binds the program label.
    pub fn set_label(&mut self, label: &str) {
        self.digest.label = label.to_string();
    }

    /// Folds one event into the digest.
    pub fn observe(&mut self, event: &SecpertEvent) {
        self.digest.events += 1;
        match event {
            SecpertEvent::ResourceAccess { syscall, resource, origin, .. } => {
                // A connect to an endpoint the program carries in its
                // own image: the beacon shape. User-directed or
                // file-configured endpoints don't count — they differ
                // per session and would only add noise fleet-wide.
                if *syscall == "SYS_connect"
                    && resource.kind == ResourceType::Socket
                    && origin.has(ResourceType::Binary)
                {
                    self.digest.beacons.insert(resource.name.clone());
                }
            }
            SecpertEvent::DataTransfer {
                data_sources, target, executable_content, bytes, ..
            } => {
                let tainted = |kind| data_sources.iter().any(|s| s.kind == kind);
                if target.kind == ResourceType::File && tainted(ResourceType::Socket) {
                    // Downloaded bytes landing on disk: a drop.
                    let mut content: Vec<String> =
                        data_sources.iter().map(|s| s.kind.symbol().to_string()).collect();
                    content.sort();
                    content.dedup();
                    self.digest.drops.insert(DropIdentity {
                        path: target.name.clone(),
                        executable: *executable_content,
                        content,
                    });
                }
                if target.kind == ResourceType::Socket
                    && (tainted(ResourceType::File) || tainted(ResourceType::UserInput))
                {
                    // Local data leaving over the network: count the
                    // bytes per target so the correlator can sum a
                    // fleet-wide exfiltration volume that no single
                    // session's counter reveals.
                    *self.digest.exfil.entry(target.name.clone()).or_insert(0) += bytes;
                }
            }
        }
    }

    /// Folds one warning skeleton into the digest.
    pub fn observe_warning(&mut self, warning: &Warning) {
        *self.digest.warnings.entry((warning.severity, warning.rule.clone())).or_insert(0) += 1;
    }

    /// The digest built so far.
    pub fn digest(&self) -> &SessionDigest {
        &self.digest
    }

    /// A copy of the digest built so far (live streaming under
    /// `hth serve`, where the session keeps running).
    pub fn snapshot(&self) -> SessionDigest {
        self.digest.clone()
    }

    /// Consumes the builder.
    pub fn finish(self) -> SessionDigest {
        self.digest
    }
}

/// Digests a recorded session in one call (offline replay paths).
pub fn digest_session(
    session: u64,
    label: &str,
    events: &[SecpertEvent],
    warnings: &[Warning],
) -> SessionDigest {
    let mut builder = DigestBuilder::new(session, label);
    for event in events {
        builder.observe(event);
    }
    for warning in warnings {
        builder.observe_warning(warning);
    }
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use harrier::{Origin, SourceInfo};

    fn connect(endpoint: &str, hardcoded: bool) -> SecpertEvent {
        SecpertEvent::ResourceAccess {
            pid: 1,
            syscall: "SYS_connect",
            resource: SourceInfo::new(ResourceType::Socket, endpoint),
            origin: if hardcoded {
                Origin { sources: vec![SourceInfo::new(ResourceType::Binary, "/bin/bot")] }
            } else {
                Origin { sources: vec![SourceInfo::new(ResourceType::UserInput, "STDIN")] }
            },
            time: 1,
            frequency: 1,
            address: 0,
            proc_count: None,
            proc_rate: None,
            mem_total: None,
            server: None,
        }
    }

    fn transfer(target: SourceInfo, source: ResourceType, bytes: u64) -> SecpertEvent {
        SecpertEvent::DataTransfer {
            pid: 1,
            syscall: "SYS_write",
            data_sources: vec![SourceInfo::new(source, "src")],
            data_origin: Origin::unknown(),
            target,
            target_origin: Origin::unknown(),
            time: 2,
            frequency: 1,
            address: 0,
            executable_content: source == ResourceType::Socket,
            server: None,
            bytes,
        }
    }

    #[test]
    fn extraction_rules() {
        let mut b = DigestBuilder::new(7, "bot");
        b.observe(&connect("c2.example:6667", true));
        b.observe(&connect("user.example:80", false)); // user-directed: not a beacon
        b.observe(&transfer(
            SourceInfo::new(ResourceType::File, "/tmp/payload"),
            ResourceType::Socket,
            100,
        ));
        b.observe(&transfer(
            SourceInfo::new(ResourceType::Socket, "drop.example:81"),
            ResourceType::File,
            600,
        ));
        b.observe(&transfer(
            SourceInfo::new(ResourceType::Socket, "drop.example:81"),
            ResourceType::File,
            24,
        ));
        // Binary-tainted socket writes (the xeyes shape) are not exfil.
        b.observe(&transfer(
            SourceInfo::new(ResourceType::Socket, "x11:6000"),
            ResourceType::Binary,
            999,
        ));
        let d = b.finish();
        assert_eq!(d.events, 6);
        assert_eq!(d.beacons.iter().collect::<Vec<_>>(), ["c2.example:6667"]);
        assert_eq!(d.drops.len(), 1);
        let drop = d.drops.iter().next().unwrap();
        assert_eq!(drop.path, "/tmp/payload");
        assert!(drop.executable);
        assert_eq!(drop.content, ["SOCKET"]);
        assert_eq!(d.exfil.get("drop.example:81"), Some(&624));
        assert_eq!(d.exfil.len(), 1);
    }

    #[test]
    fn merge_of_halves_equals_digest_of_whole() {
        let events = vec![
            connect("c2.example:6667", true),
            transfer(SourceInfo::new(ResourceType::Socket, "t:1"), ResourceType::File, 10),
            connect("c2.example:6667", true),
            transfer(SourceInfo::new(ResourceType::Socket, "t:1"), ResourceType::File, 32),
        ];
        let whole = digest_session(3, "w", &events, &[]);
        let mut first = digest_session(3, "w", &events[..2], &[]);
        let second = digest_session(3, "", &events[2..], &[]);
        first.merge(&second);
        assert_eq!(first, whole);
    }

    #[test]
    fn quiet_digest() {
        let d = SessionDigest::new(1, "idle");
        assert!(d.is_quiet());
        let mut b = DigestBuilder::new(1, "idle");
        b.observe_warning(&Warning {
            severity: Severity::Low,
            rule: "r".into(),
            pid: 1,
            time: 0,
            message: "m".into(),
            provenance: None,
        });
        assert!(!b.finish().is_quiet());
    }
}
