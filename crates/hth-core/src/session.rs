//! The monitoring session: wires the kernel, Harrier and Secpert into
//! the pipeline of Figure 1 — program → monitoring & tracking → events →
//! analysis & policy → warnings.

use emukernel::{errno, Kernel, ProcState, Process, SpawnError, SyscallEffect};
use harrier::{Harrier, HarrierConfig, SecpertEvent};
use hth_vm::{Reg, StepEvent};
use secpert_engine::EngineError;

use crate::policy::PolicyConfig;
use crate::secpert::Secpert;
use crate::warning::{Severity, Warning};

/// Session configuration.
#[derive(Clone, Debug)]
pub struct SessionConfig {
    /// Monitor configuration (dataflow / BB tracking toggles).
    pub harrier: HarrierConfig,
    /// Policy thresholds and trust lists.
    pub policy: PolicyConfig,
    /// Total instruction budget across all processes (safety stop for
    /// fork bombs and spinning servers).
    pub max_instructions: u64,
    /// Instructions per scheduling quantum.
    pub quantum: u64,
    /// Hard cap on live processes; further forks fail with `EAGAIN`.
    pub max_processes: usize,
    /// Keep every Harrier event for inspection (tables/benches).
    pub record_events: bool,
    /// Feed events through this session's own Secpert as they happen
    /// (the classic single-threaded pipeline). Fleet deployments turn
    /// this off and ship events to a shared analyst pool through an
    /// event tap instead (see [`Session::set_event_tap`]).
    pub analyze_inline: bool,
    /// Hybrid static/dynamic monitoring (paper §10 item 2): before a
    /// program runs, the Appendix B Secure Binary audit scans its image;
    /// if no hardcoded resource names are found, expensive data-flow
    /// tracking is switched off for the run — the origin information it
    /// would compute cannot implicate a hardcoded resource anyway.
    pub hybrid_static_analysis: bool,
    /// Flight-recorder ring capacity: the session keeps this many
    /// recent events, always on, and snapshots them into a
    /// [`hth_trace::DiagnosticBundle`] when an inline High warning
    /// fires (see [`Session::diagnostic_bundles`]). `0` disables it.
    pub flight_capacity: usize,
}

impl Default for SessionConfig {
    fn default() -> SessionConfig {
        SessionConfig {
            harrier: HarrierConfig::default(),
            policy: PolicyConfig::default(),
            max_instructions: 2_000_000,
            quantum: 200,
            max_processes: 128,
            record_events: true,
            analyze_inline: true,
            hybrid_static_analysis: false,
            flight_capacity: hth_trace::DEFAULT_FLIGHT_CAPACITY,
        }
    }
}

/// Errors from session construction and start-up.
#[derive(Debug)]
pub enum SessionError {
    /// The policy failed to load (engine error).
    Policy(EngineError),
    /// The program could not be spawned.
    Spawn(SpawnError),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Policy(e) => write!(f, "policy error: {e}"),
            SessionError::Spawn(e) => write!(f, "spawn error: {e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<EngineError> for SessionError {
    fn from(e: EngineError) -> SessionError {
        SessionError::Policy(e)
    }
}

impl From<SpawnError> for SessionError {
    fn from(e: SpawnError) -> SessionError {
        SessionError::Spawn(e)
    }
}

/// Outcome of a [`Session::run`].
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Instructions retired across all processes.
    pub instructions: u64,
    /// `(pid, status)` of exited processes.
    pub exited: Vec<(u32, i32)>,
    /// `(pid, fault)` of crashed processes.
    pub faults: Vec<(u32, String)>,
    /// True when the instruction budget stopped the run.
    pub truncated: bool,
}

/// Aggregated outcome of a session, for quick reporting.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SessionSummary {
    /// Warnings at Low severity.
    pub low: usize,
    /// Warnings at Medium severity.
    pub medium: usize,
    /// Warnings at High severity.
    pub high: usize,
    /// Distinct rules that fired, with counts, most frequent first.
    pub rules: Vec<(String, usize)>,
    /// Events Harrier emitted.
    pub events: usize,
    /// Instructions retired.
    pub instructions: u64,
}

impl std::fmt::Display for SessionSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} warnings (high: {}, medium: {}, low: {}) from {} events over {} instructions",
            self.low + self.medium + self.high,
            self.high,
            self.medium,
            self.low,
            self.events,
            self.instructions,
        )?;
        for (rule, count) in &self.rules {
            writeln!(f, "  {count:4}x {rule}")?;
        }
        Ok(())
    }
}

/// Observer for the live event stream: called once per Harrier event, in
/// order, before inline analysis. This is the Harrier→Secpert protocol
/// boundary made pluggable — journal recorders and fleet analyst pools
/// both attach here.
pub type EventTap = Box<dyn FnMut(&SecpertEvent) + Send>;

/// An HTH monitoring session over one program (and its children).
pub struct Session {
    /// The emulated OS (configure files, hosts and peers through this).
    pub kernel: Kernel,
    harrier: Harrier,
    secpert: Secpert,
    procs: Vec<Process>,
    warnings: Vec<Warning>,
    events: Vec<SecpertEvent>,
    taps: Vec<EventTap>,
    config: SessionConfig,
    instructions: u64,
    flight: Option<hth_trace::FlightRecorder>,
    bundles: hth_trace::BundleRing,
}

impl Session {
    /// Builds a session with the given configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SessionError::Policy`] when the policy fails to load.
    pub fn new(config: SessionConfig) -> Result<Session, SessionError> {
        Ok(Session {
            kernel: Kernel::new(),
            harrier: Harrier::new(config.harrier.clone()),
            secpert: Secpert::new(&config.policy)?,
            procs: Vec::new(),
            warnings: Vec::new(),
            events: Vec::new(),
            taps: Vec::new(),
            flight: (config.flight_capacity > 0)
                .then(|| hth_trace::FlightRecorder::new(config.flight_capacity)),
            bundles: hth_trace::BundleRing::default(),
            config,
            instructions: 0,
        })
    }

    /// Spawns and attaches the program to monitor.
    ///
    /// # Errors
    ///
    /// Returns [`SessionError::Spawn`] when the binary is unknown or
    /// fails to assemble.
    pub fn start(
        &mut self,
        path: &str,
        argv: &[&str],
        env: &[(&str, &str)],
    ) -> Result<u32, SessionError> {
        let proc = self.kernel.spawn(path, argv, env)?;
        let pid = proc.pid;
        if self.config.hybrid_static_analysis && self.harrier.config().track_dataflow {
            // Static pre-pass (paper §10 item 2): a binary with no
            // hardcoded resource names cannot trip the origin-based
            // rules, so the dynamic data-flow tracker can be skipped.
            let audit = harrier::audit::audit(&proc.core.images()[0]);
            if audit.is_secure() {
                let config = harrier::HarrierConfig {
                    track_dataflow: false,
                    ..self.harrier.config().clone()
                };
                self.harrier = Harrier::new(config);
            }
        }
        self.harrier.attach(&proc);
        self.procs.push(proc);
        Ok(pid)
    }

    /// Runs all processes round-robin until they exit, crash, or the
    /// instruction budget is exhausted.
    ///
    /// # Errors
    ///
    /// Propagates policy evaluation errors (rule bugs), never workload
    /// faults — those are recorded in the report.
    pub fn run(&mut self) -> Result<RunReport, SessionError> {
        let _span = hth_trace::span("session.run");
        let mut report = RunReport::default();
        loop {
            if self.instructions >= self.config.max_instructions {
                report.truncated = true;
                break;
            }
            let mut progressed = false;
            let mut i = 0;
            while i < self.procs.len() {
                if self.procs[i].runnable() {
                    progressed = true;
                    self.run_quantum(i, &mut report)?;
                }
                i += 1;
            }
            if !progressed {
                break;
            }
            // Drop exited processes (children stay until observed here).
            self.procs.retain(|p| {
                if let ProcState::Exited(code) = p.state {
                    report.exited.push((p.pid, code));
                    false
                } else {
                    true
                }
            });
        }
        report.instructions = self.instructions;
        Ok(report)
    }

    fn run_quantum(&mut self, idx: usize, report: &mut RunReport) -> Result<(), SessionError> {
        for _ in 0..self.config.quantum {
            if self.instructions >= self.config.max_instructions {
                return Ok(());
            }
            if !self.procs[idx].runnable() {
                return Ok(());
            }
            let pid = self.procs[idx].pid;
            let step = {
                let proc = &mut self.procs[idx];
                let mut hooks = self.harrier.hooks(pid);
                proc.core.step(&mut hooks)
            };
            self.instructions += 1;
            self.kernel.note_instructions(1);
            match step {
                Ok(StepEvent::Continue) => {}
                Ok(StepEvent::Halted) => {
                    self.procs[idx].state = ProcState::Exited(0);
                    self.harrier.detach(pid);
                    return Ok(());
                }
                Ok(StepEvent::Interrupt(0x80)) => self.handle_syscall(idx)?,
                Ok(StepEvent::Interrupt(_)) => {
                    self.procs[idx].state = ProcState::Exited(-1);
                    return Ok(());
                }
                Err(e) => {
                    report.faults.push((pid, e.to_string()));
                    self.procs[idx].state = ProcState::Exited(-1);
                    self.harrier.detach(pid);
                    return Ok(());
                }
            }
        }
        Ok(())
    }

    fn handle_syscall(&mut self, idx: usize) -> Result<(), SessionError> {
        let record = self.kernel.syscall(&mut self.procs[idx]);
        let mut exec_to: Option<String> = None;
        match &record.effect {
            SyscallEffect::ForkRequested => {
                if self.procs.len() < self.config.max_processes {
                    let child = self.kernel.fork(&self.procs[idx]);
                    let (ppid, cpid) = (self.procs[idx].pid, child.pid);
                    self.procs[idx].core.cpu.set(Reg::Eax, cpid);
                    self.harrier.fork_attach(ppid, cpid);
                    self.procs.push(child);
                } else {
                    self.procs[idx].core.cpu.set(Reg::Eax, -errno::EAGAIN as u32);
                }
            }
            SyscallEffect::ExecRequested { path, found: true, .. } => {
                exec_to = Some(path.clone());
            }
            _ => {}
        }
        // Events are generated before an exec replaces the image, so
        // origins are read from the *current* shadow state.
        let events = self.harrier.on_syscall(&self.procs[idx], &record, &self.kernel);
        let mut fired_high: Vec<Warning> = Vec::new();
        for event in &events {
            for tap in &mut self.taps {
                tap(event);
            }
            if let Some(flight) = &self.flight {
                flight.record(
                    u64::from(event.pid()),
                    event.time(),
                    "event",
                    event.syscall(),
                    event.resource_name(),
                );
            }
            if self.config.analyze_inline {
                let warnings = self.secpert.process_event(event)?;
                fired_high
                    .extend(warnings.iter().filter(|w| w.severity == Severity::High).cloned());
                self.warnings.extend(warnings);
            }
        }
        if self.config.record_events {
            self.events.extend(events);
        }
        for warning in &fired_high {
            self.capture_warning_bundle(warning);
        }
        if let Some(path) = exec_to {
            let argv_owned = [path.clone()];
            let argv: Vec<&str> = argv_owned.iter().map(String::as_str).collect();
            if self.kernel.exec_into(&mut self.procs[idx], &path, &argv).is_ok() {
                self.harrier.on_exec(&self.procs[idx]);
            }
        }
        if let SyscallEffect::SignalRequested { target, sig } = record.effect {
            self.deliver_signal(idx, target, sig);
        }
        Ok(())
    }

    /// Delivers a `kill`-requested signal (after the event was emitted):
    /// a registered handler absorbs it, otherwise the target dies with
    /// `128 + sig`, mirroring the shell's exit-status convention.
    fn deliver_signal(&mut self, sender_idx: usize, target: u32, sig: u32) {
        let Some(victim) = self.procs.iter_mut().find(|p| p.pid == target && p.runnable()) else {
            self.procs[sender_idx].core.cpu.set(Reg::Eax, (-errno::ESRCH) as u32);
            return;
        };
        if victim.sig_handlers.contains_key(&sig) {
            victim.delivered_signals.push(sig);
        } else {
            let pid = victim.pid;
            victim.state = ProcState::Exited(128 + sig as i32);
            self.harrier.detach(pid);
        }
    }

    /// Snapshots the flight recorder into a warning-triggered
    /// diagnostic bundle carrying the session's metrics and the
    /// warning's rendered provenance tree.
    fn capture_warning_bundle(&mut self, warning: &Warning) {
        let Some(flight) = &self.flight else {
            return;
        };
        let provenance: Vec<String> = warning
            .provenance
            .as_ref()
            .map(|p| p.render_tree(warning))
            .unwrap_or_default()
            .lines()
            .map(str::to_string)
            .collect();
        let bundle = flight.capture(
            "session",
            hth_trace::Trigger::Warning {
                rule: warning.rule.clone(),
                severity: warning.severity.label().to_string(),
            },
            self.metrics(),
            provenance,
        );
        self.bundles.push(bundle);
    }

    /// The session's always-on flight recorder (`None` when
    /// [`SessionConfig::flight_capacity`] is 0).
    pub fn flight_recorder(&self) -> Option<&hth_trace::FlightRecorder> {
        self.flight.as_ref()
    }

    /// Diagnostic bundles captured so far (inline High warnings),
    /// oldest first.
    pub fn diagnostic_bundles(&self) -> Vec<std::sync::Arc<hth_trace::DiagnosticBundle>> {
        self.bundles.list()
    }

    /// Attaches an event tap: it sees every Harrier event as it is
    /// generated, before (and regardless of) inline analysis. Multiple
    /// taps run in attachment order.
    pub fn set_event_tap(&mut self, tap: EventTap) {
        self.taps.push(tap);
    }

    /// All warnings issued so far, in order.
    pub fn warnings(&self) -> &[Warning] {
        &self.warnings
    }

    /// Highest severity seen (None = clean run).
    pub fn max_severity(&self) -> Option<Severity> {
        self.warnings.iter().map(|w| w.severity).max()
    }

    /// All Harrier events (when `record_events` is on).
    pub fn events(&self) -> &[SecpertEvent] {
        &self.events
    }

    /// The expert system (custom rules, inspection).
    pub fn secpert_mut(&mut self) -> &mut Secpert {
        &mut self.secpert
    }

    /// The monitor (taint inspection).
    pub fn harrier(&self) -> &Harrier {
        &self.harrier
    }

    /// Tag interning and union-memoization counters from the monitor's
    /// hash-consed tag store (perf diagnostics).
    pub fn taint_stats(&self) -> harrier::TaintStats {
        self.harrier.taint_stats()
    }

    /// Paper-style warning transcript accumulated by the policy rules.
    pub fn take_transcript(&mut self) -> String {
        self.secpert.take_transcript()
    }

    /// Instructions retired so far.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// One unified metrics snapshot for this session: taint-store
    /// (`hth_taint_*`), match-network (`hth_match_*`), expert
    /// (`hth_secpert_*`) and pipeline (`hth_session_*`) counters.
    pub fn metrics(&self) -> hth_trace::MetricsSnapshot {
        let mut metrics = hth_trace::MetricsSnapshot::default();
        self.taint_stats().record_metrics(&mut metrics);
        self.secpert.record_metrics(&mut metrics);
        metrics.add_counter("hth_session_events", self.harrier.events_emitted());
        metrics.add_counter("hth_session_instructions", self.instructions);
        metrics.add_counter("hth_session_warnings", self.warnings.len() as u64);
        metrics
    }

    /// Aggregates warnings, rules and counters into a printable summary.
    pub fn summary(&self) -> SessionSummary {
        let mut summary = SessionSummary {
            events: self.events.len(),
            instructions: self.instructions,
            ..SessionSummary::default()
        };
        let mut rules: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
        for warning in &self.warnings {
            match warning.severity {
                Severity::Low => summary.low += 1,
                Severity::Medium => summary.medium += 1,
                Severity::High => summary.high += 1,
            }
            *rules.entry(warning.rule.as_str()).or_default() += 1;
        }
        summary.rules = rules.into_iter().map(|(r, c)| (r.to_string(), c)).collect();
        summary.rules.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        summary
    }
}
