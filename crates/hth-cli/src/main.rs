//! The `hth` binary: parse the command line, execute, print.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match hth_cli::parse(&args).and_then(hth_cli::execute) {
        Ok(output) => print!("{output}"),
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    }
}
