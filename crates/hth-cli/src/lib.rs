//! # hth-cli — command-line front end for the HTH framework
//!
//! ```text
//! hth run <prog.s> [--arg V]… [--stdin TEXT]… [--file PATH=TEXT]…
//!                  [--host NAME=a.b.c.d]… [--peer IP:PORT[=REPLY]]…
//!                  [--client PORT[=SEND]]… [--lib NAME=FILE.s]…
//!                  [--trust NAME]… [--no-dataflow] [--no-bb] [--hybrid]
//!                  [--events] [--summary]
//! hth audit <prog.s>      # Appendix B Secure Binary audit
//! hth listing <prog.s>    # assemble and print the listing
//! hth fleet [--sessions N] [--shards N] [--workers N] [--queue N]
//!           [--batch-size N] [--drop-oldest] [--chaos-seed N]
//!           [--correlate] [--gen2] [--digests OUT.hthd]
//!           [--trust NAME]… [--trace OUT.json] [--metrics]
//! hth replay <events.hthj> [--repair] [--batch-size N] [--trust NAME]…
//! hth explain <events.hthj|digests.hthd> <warning-idx> [--trust NAME]…
//! hth serve [--addr H:P] [--workers N] [--budget-mb N] [--idle-ms N]
//!           [--trust NAME]… [--metrics]
//! hth load [--addr H:P] [--sessions N] [--events N] [--shutdown]
//! hth top [--addr H:P] [--once] [--interval-ms N]
//! ```
//!
//! The argument parser and command execution live here so they are unit
//! testable; `main.rs` is a thin shell.

#![warn(missing_docs)]

use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use emukernel::{Endpoint, FileNode, Peer, RemoteClient};
use harrier::audit;
use hth_core::{PolicyConfig, Secpert, Session, SessionConfig};
use hth_fleet::{Backpressure, FaultPlan, FleetConfig, JournalReader, JournalWriter};

/// A parsed command line.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Monitor a program.
    Run(Box<RunOptions>),
    /// Static Secure Binary audit.
    Audit {
        /// Path to the assembly source.
        source: String,
    },
    /// Print the assembled listing.
    Listing {
        /// Path to the assembly source.
        source: String,
    },
    /// Run a workload fleet through the sharded analyst pool.
    Fleet(FleetOptions),
    /// Replay a recorded event journal through a fresh Secpert.
    Replay {
        /// Path to the journal recorded with `hth run --journal`.
        journal: String,
        /// Extra trusted binaries for the replay policy.
        trust: Vec<String>,
        /// Salvage every decodable frame from a damaged journal instead
        /// of failing on the first corrupt byte.
        repair: bool,
        /// Events fed to the engine per batch; 1 replays strictly
        /// event-at-a-time (identical results either way).
        batch_size: usize,
    },
    /// Run the long-lived fleet daemon: sessions over TCP, LRU + idle
    /// eviction under a memory budget, snapshot/restore, live
    /// `/metrics`.
    Serve(ServeOptions),
    /// Drive synthetic sessions against a running daemon and report
    /// throughput and ack latency.
    Load(LoadOptions),
    /// Poll a running daemon's `/statusz` endpoint and render a live
    /// fleet view (`--once` prints one frame and exits, for scripts).
    Top(TopOptions),
    /// Explain one warning from a journal replay: print its causal
    /// tree (triggering event, rule chain, supporting facts, taint
    /// sources). Given a digest stream (`hth fleet --digests`) instead,
    /// explains a *fleet* warning: the tree spans the contributing
    /// sessions.
    Explain {
        /// Path to a journal (`hth run --journal`) or a digest stream
        /// (`hth fleet --digests`); told apart by the header version.
        journal: String,
        /// 0-based index of the warning in replay order.
        index: usize,
        /// Extra trusted binaries for the replay policy.
        trust: Vec<String>,
    },
    /// Print usage.
    Help,
}

/// Options for `hth fleet`.
#[derive(Clone, Debug, PartialEq)]
pub struct FleetOptions {
    /// Workload sessions to run (the Table 8 catalog, cycled).
    pub sessions: usize,
    /// Analyst pool shards.
    pub shards: usize,
    /// Session-runner threads.
    pub workers: usize,
    /// Per-shard queue capacity.
    pub queue: usize,
    /// Events an analyst drains from its queue per lock crossing; 1
    /// disables batching (identical results either way).
    pub batch_size: usize,
    /// Shed load (`DropOldest`) instead of blocking producers.
    pub drop_oldest: bool,
    /// Seed for deterministic fault injection (chaos testing); `None`
    /// runs the fleet fault-free.
    pub chaos_seed: Option<u64>,
    /// Run the coordinated-campaign catalog and correlate the fleet's
    /// session digests after the run.
    pub correlate: bool,
    /// Run the second-generation syscall-surface catalog (mmap dropper,
    /// pipe laundering, /proc beacon, signal killer, select server)
    /// instead of the Table 8 exploits.
    pub gen2: bool,
    /// Write the fleet's session digest stream here.
    pub digests: Option<String>,
    /// Extra trusted binaries.
    pub trust: Vec<String>,
    /// Write a Chrome `trace_event` JSON timeline of the run here.
    pub trace: Option<String>,
    /// Print the unified Prometheus-style metrics snapshot.
    pub metrics: bool,
    /// Write the shards' diagnostic bundles (quarantines, watchdog
    /// overruns) here as a JSON array.
    pub bundles: Option<String>,
}

impl Default for FleetOptions {
    fn default() -> FleetOptions {
        FleetOptions {
            sessions: 8,
            shards: 4,
            workers: 4,
            queue: 1024,
            batch_size: hth_fleet::PoolConfig::default().batch_size,
            drop_oldest: false,
            chaos_seed: None,
            correlate: false,
            gen2: false,
            digests: None,
            trust: Vec::new(),
            trace: None,
            metrics: false,
            bundles: None,
        }
    }
}

/// Options for `hth serve`.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeOptions {
    /// Listen address (`HOST:PORT`; port 0 picks a free one).
    pub addr: String,
    /// Connection worker threads.
    pub workers: usize,
    /// Resident engine memory budget, in MiB.
    pub budget_mb: usize,
    /// Evict sessions idle for this many milliseconds (`None` = never).
    pub idle_ms: Option<u64>,
    /// Extra trusted binaries.
    pub trust: Vec<String>,
    /// Print the final metrics snapshot on drain.
    pub metrics: bool,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            addr: "127.0.0.1:7177".to_string(),
            workers: 4,
            budget_mb: 64,
            idle_ms: None,
            trust: Vec::new(),
            metrics: false,
        }
    }
}

/// Options for `hth load`.
#[derive(Clone, Debug, PartialEq)]
pub struct LoadOptions {
    /// Daemon address.
    pub addr: String,
    /// Synthetic sessions to drive.
    pub sessions: u64,
    /// Events per session.
    pub events: u64,
    /// Ask the daemon to drain and stop after the run.
    pub shutdown: bool,
}

impl Default for LoadOptions {
    fn default() -> LoadOptions {
        LoadOptions {
            addr: "127.0.0.1:7177".to_string(),
            sessions: 8,
            events: 100,
            shutdown: false,
        }
    }
}

/// Options for `hth top`.
#[derive(Clone, Debug, PartialEq)]
pub struct TopOptions {
    /// Daemon address.
    pub addr: String,
    /// Print one frame and exit (script / golden mode).
    pub once: bool,
    /// Refresh interval in milliseconds.
    pub interval_ms: u64,
}

impl Default for TopOptions {
    fn default() -> TopOptions {
        TopOptions { addr: "127.0.0.1:7177".to_string(), once: false, interval_ms: 1000 }
    }
}

/// Options for `hth run`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunOptions {
    /// Path to the assembly source of the program to monitor.
    pub source: String,
    /// Extra argv entries (argv\[0\] is the program path).
    pub args: Vec<String>,
    /// Environment entries.
    pub env: Vec<(String, String)>,
    /// Console input chunks.
    pub stdin: Vec<String>,
    /// VFS files to install, `path=content`.
    pub files: Vec<(String, String)>,
    /// DNS entries, `name=a.b.c.d`.
    pub hosts: Vec<(String, u32)>,
    /// Scripted peers `(endpoint, optional reply)`.
    pub peers: Vec<(Endpoint, Option<String>)>,
    /// Scripted inbound clients `(port, optional send)`.
    pub clients: Vec<(u16, Option<String>)>,
    /// Shared objects to register, `name=path`.
    pub libs: Vec<(String, String)>,
    /// Extra trusted binaries.
    pub trust: Vec<String>,
    /// Disable dataflow tracking.
    pub no_dataflow: bool,
    /// Disable BB frequency tracking.
    pub no_bb: bool,
    /// Enable the hybrid static pre-pass.
    pub hybrid: bool,
    /// Print Harrier events.
    pub show_events: bool,
    /// Print the session summary.
    pub show_summary: bool,
    /// Record the event stream to a journal file.
    pub journal: Option<String>,
    /// Write a Chrome `trace_event` JSON timeline of the run here.
    pub trace: Option<String>,
    /// Print the unified Prometheus-style metrics snapshot.
    pub metrics: bool,
}

/// Usage text.
pub const USAGE: &str = "\
hth — Hunting Trojan Horses

USAGE:
  hth run <prog.s> [options]   monitor a program, print warnings
  hth audit <prog.s>           Secure Binary audit (Appendix B)
  hth listing <prog.s>         assemble and print the listing
  hth fleet [options]          run a workload fleet through the analyst pool
  hth replay <events.hthj> [--repair] [--batch-size N] [--trust NAME]…
                               replay a recorded journal offline; --repair
                               salvages every decodable frame from a
                               damaged journal and reports what was lost;
                               --batch-size N feeds the engine N events
                               per batch (same warnings at any size)
  hth explain <events.hthj|digests.hthd> <warning-idx>
                               replay a journal and print the causal tree
                               behind one warning (0-based replay order):
                               triggering event, rule-firing chain,
                               supporting facts, taint sources; given a
                               digest stream (hth fleet --digests) the
                               tree is fleet-level and spans the
                               sessions behind the correlated warning
  hth serve [options]          run the fleet daemon: sessions over TCP,
                               LRU + idle eviction under a memory
                               budget, snapshot/restore on eviction,
                               live Prometheus /metrics on the same port
  hth load [options]           drive synthetic sessions against a
                               running daemon; report events/sec and
                               ack latency
  hth top [options]            poll a running daemon's /statusz and
                               render a live fleet view: sessions,
                               ack latency, diagnostic bundles
  hth help                     this text

RUN OPTIONS:
  --arg V            append an argv entry (repeatable)
  --env K=V          set an environment variable
  --stdin TEXT       queue one chunk of console input
  --file PATH=TEXT   install a file in the VFS
  --host NAME=IP     add a DNS entry (dotted quad)
  --peer IP:PORT[=REPLY]   script a remote server
  --client PORT[=SEND]     script an inbound client
  --lib NAME=FILE.s  register a shared object from a source file
  --trust NAME       add a trusted binary (substring match)
  --no-dataflow      disable taint tracking (fast, loses origins)
  --no-bb            disable basic-block frequency
  --hybrid           static pre-pass: skip dataflow for Secure Binaries
  --events           print every Harrier event
  --summary          print the session summary
  --journal PATH     record the event stream to a journal file
  --trace OUT.json   write a Chrome trace_event timeline of the run
                     (load it in chrome://tracing or Perfetto)
  --metrics          print the unified metrics snapshot (taint store,
                     match network, expert, pipeline) in Prometheus
                     text format

FLEET OPTIONS:
  --sessions N       workload sessions to run (default 8)
  --shards N         analyst pool shards (default 4)
  --workers N        session-runner threads (default 4)
  --queue N          per-shard queue capacity (default 1024)
  --batch-size N     events an analyst drains per queue lock crossing
                     (default 64); 1 disables batching — warnings and
                     stats are identical at every size
  --drop-oldest      shed load instead of blocking when a queue fills
  --chaos-seed N     inject deterministic faults (shard panics, queue
                     stalls) derived from seed N; losses are counted,
                     never silent
  --correlate        run the coordinated-campaign catalog (bots sharing
                     one C2, droppers planting one artifact, leakers
                     slicing exfil under per-session thresholds) and
                     correlate the fleet's session digests after the
                     run — fleet warnings print with the report
  --gen2             run the second-generation syscall-surface catalog
                     (mmap dropper, pipe laundering, /proc beacon,
                     signal killer, select echo server) instead of the
                     Table 8 exploits
  --digests OUT.hthd write the fleet's session digest stream; feed it
                     to `hth explain` for fleet-level causal trees
  --trust NAME       add a trusted binary (substring match)
  --trace OUT.json   write a Chrome trace_event timeline of the fleet
                     run (all worker and analyst threads)
  --metrics          print the unified metrics snapshot covering the
                     whole fleet in Prometheus text format
  --bundles OUT.json write the shards' diagnostic bundles (flight
                     recorder snapshots captured on quarantines and
                     watchdog overruns) as a JSON array

SERVE OPTIONS:
  --addr HOST:PORT   listen address (default 127.0.0.1:7177; port 0
                     picks a free port, printed on stderr)
  --workers N        connection worker threads (default 4)
  --budget-mb N      resident engine memory budget in MiB (default 64);
                     least-recently-used sessions are snapshotted and
                     evicted to stay under it, and revived from the
                     snapshot on their next event — warnings are
                     byte-identical either way
  --idle-ms N        evict sessions idle for N milliseconds
  --trust NAME       add a trusted binary (substring match)
  --metrics          print the final metrics snapshot on drain

LOAD OPTIONS:
  --addr HOST:PORT   daemon address (default 127.0.0.1:7177)
  --sessions N       synthetic sessions to drive (default 8)
  --events N         events per session (default 100)
  --shutdown         ask the daemon to drain and stop after the run

TOP OPTIONS:
  --addr HOST:PORT   daemon address (default 127.0.0.1:7177)
  --once             fetch and print one frame, then exit (for
                     scripts and goldens)
  --interval-ms N    refresh interval in live mode (default 1000)
";

fn parse_ip(text: &str) -> Result<u32, String> {
    let parts: Vec<&str> = text.split('.').collect();
    if parts.len() != 4 {
        return Err(format!("bad IP `{text}` (want a.b.c.d)"));
    }
    let mut ip = 0u32;
    for part in parts {
        let octet: u8 = part.parse().map_err(|_| format!("bad IP octet `{part}`"))?;
        ip = (ip << 8) | u32::from(octet);
    }
    Ok(ip)
}

fn parse_kv(text: &str, what: &str) -> Result<(String, String), String> {
    text.split_once('=')
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .ok_or_else(|| format!("bad {what} `{text}` (want K=V)"))
}

fn parse_endpoint(text: &str) -> Result<Endpoint, String> {
    let (ip, port) =
        text.split_once(':').ok_or_else(|| format!("bad endpoint `{text}` (want IP:PORT)"))?;
    Ok(Endpoint {
        ip: parse_ip(ip)?,
        port: port.parse().map_err(|_| format!("bad port `{port}`"))?,
    })
}

/// Parses a command line (without the leading program name).
///
/// # Errors
///
/// Returns a human-readable message for unknown flags, missing values
/// or malformed option payloads.
pub fn parse(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter();
    let command = match it.next().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => return Ok(Command::Help),
        Some(c) => c,
    };
    if command == "fleet" {
        return parse_fleet(it);
    }
    if command == "serve" {
        return parse_serve(it);
    }
    if command == "load" {
        return parse_load(it);
    }
    if command == "top" {
        return parse_top(it);
    }
    let operand =
        if matches!(command, "replay" | "explain") { "journal file" } else { "source file" };
    let source = it.next().ok_or_else(|| format!("`{command}` needs a {operand}"))?.clone();
    match command {
        "audit" => return Ok(Command::Audit { source }),
        "listing" => return Ok(Command::Listing { source }),
        "replay" => {
            let mut trust = Vec::new();
            let mut repair = false;
            let mut batch_size = hth_fleet::PoolConfig::default().batch_size;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--trust" => trust.push(
                        it.next().cloned().ok_or_else(|| "--trust needs a value".to_string())?,
                    ),
                    "--repair" => repair = true,
                    "--batch-size" => {
                        let text = it
                            .next()
                            .cloned()
                            .ok_or_else(|| "--batch-size needs a value".to_string())?;
                        batch_size = parse_count(&text, "--batch-size")?;
                    }
                    other => return Err(format!("unknown flag `{other}`")),
                }
            }
            return Ok(Command::Replay { journal: source, trust, repair, batch_size });
        }
        "explain" => {
            let text = it.next().ok_or_else(|| "`explain` needs a warning index".to_string())?;
            let index = text
                .parse::<usize>()
                .map_err(|_| format!("bad warning index `{text}` (want a 0-based count)"))?;
            let mut trust = Vec::new();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--trust" => trust.push(
                        it.next().cloned().ok_or_else(|| "--trust needs a value".to_string())?,
                    ),
                    other => return Err(format!("unknown flag `{other}`")),
                }
            }
            return Ok(Command::Explain { journal: source, index, trust });
        }
        "run" => {}
        other => return Err(format!("unknown command `{other}` (try `hth help`)")),
    }
    let mut opts = RunOptions { source, ..RunOptions::default() };
    while let Some(flag) = it.next() {
        let mut value = |what: &str| -> Result<String, String> {
            it.next().cloned().ok_or_else(|| format!("{what} needs a value"))
        };
        match flag.as_str() {
            "--arg" => opts.args.push(value("--arg")?),
            "--env" => opts.env.push(parse_kv(&value("--env")?, "--env")?),
            "--stdin" => opts.stdin.push(value("--stdin")?),
            "--file" => opts.files.push(parse_kv(&value("--file")?, "--file")?),
            "--host" => {
                let (name, ip) = parse_kv(&value("--host")?, "--host")?;
                opts.hosts.push((name, parse_ip(&ip)?));
            }
            "--peer" => {
                let text = value("--peer")?;
                let (ep, reply) = match text.split_once('=') {
                    Some((ep, reply)) => (ep.to_string(), Some(reply.to_string())),
                    None => (text, None),
                };
                opts.peers.push((parse_endpoint(&ep)?, reply));
            }
            "--client" => {
                let text = value("--client")?;
                let (port, send) = match text.split_once('=') {
                    Some((port, send)) => (port.to_string(), Some(send.to_string())),
                    None => (text, None),
                };
                opts.clients.push((port.parse().map_err(|_| format!("bad port `{port}`"))?, send));
            }
            "--lib" => opts.libs.push(parse_kv(&value("--lib")?, "--lib")?),
            "--trust" => opts.trust.push(value("--trust")?),
            "--no-dataflow" => opts.no_dataflow = true,
            "--no-bb" => opts.no_bb = true,
            "--hybrid" => opts.hybrid = true,
            "--events" => opts.show_events = true,
            "--summary" => opts.show_summary = true,
            "--journal" => opts.journal = Some(value("--journal")?),
            "--trace" => opts.trace = Some(value("--trace")?),
            "--metrics" => opts.metrics = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(Command::Run(Box::new(opts)))
}

fn parse_count(text: &str, what: &str) -> Result<usize, String> {
    match text.parse::<usize>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(format!("bad {what} `{text}` (want a positive count)")),
    }
}

fn parse_fleet(mut it: std::slice::Iter<'_, String>) -> Result<Command, String> {
    let mut opts = FleetOptions::default();
    while let Some(flag) = it.next() {
        let mut value = |what: &str| -> Result<String, String> {
            it.next().cloned().ok_or_else(|| format!("{what} needs a value"))
        };
        match flag.as_str() {
            "--sessions" => opts.sessions = parse_count(&value("--sessions")?, "--sessions")?,
            "--shards" => opts.shards = parse_count(&value("--shards")?, "--shards")?,
            "--workers" => opts.workers = parse_count(&value("--workers")?, "--workers")?,
            "--queue" => opts.queue = parse_count(&value("--queue")?, "--queue")?,
            "--batch-size" => {
                opts.batch_size = parse_count(&value("--batch-size")?, "--batch-size")?;
            }
            "--drop-oldest" => opts.drop_oldest = true,
            "--chaos-seed" => {
                let text = value("--chaos-seed")?;
                opts.chaos_seed = Some(
                    text.parse::<u64>()
                        .map_err(|_| format!("bad --chaos-seed `{text}` (want a u64)"))?,
                );
            }
            "--correlate" => opts.correlate = true,
            "--gen2" => opts.gen2 = true,
            "--digests" => opts.digests = Some(value("--digests")?),
            "--trust" => opts.trust.push(value("--trust")?),
            "--trace" => opts.trace = Some(value("--trace")?),
            "--metrics" => opts.metrics = true,
            "--bundles" => opts.bundles = Some(value("--bundles")?),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(Command::Fleet(opts))
}

fn parse_serve(mut it: std::slice::Iter<'_, String>) -> Result<Command, String> {
    let mut opts = ServeOptions::default();
    while let Some(flag) = it.next() {
        let mut value = |what: &str| -> Result<String, String> {
            it.next().cloned().ok_or_else(|| format!("{what} needs a value"))
        };
        match flag.as_str() {
            "--addr" => opts.addr = value("--addr")?,
            "--workers" => opts.workers = parse_count(&value("--workers")?, "--workers")?,
            "--budget-mb" => {
                let text = value("--budget-mb")?;
                opts.budget_mb = text
                    .parse::<usize>()
                    .map_err(|_| format!("bad --budget-mb `{text}` (want MiB)"))?;
            }
            "--idle-ms" => {
                let text = value("--idle-ms")?;
                opts.idle_ms = Some(
                    text.parse::<u64>()
                        .map_err(|_| format!("bad --idle-ms `{text}` (want milliseconds)"))?,
                );
            }
            "--trust" => opts.trust.push(value("--trust")?),
            "--metrics" => opts.metrics = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(Command::Serve(opts))
}

fn parse_load(mut it: std::slice::Iter<'_, String>) -> Result<Command, String> {
    let mut opts = LoadOptions::default();
    while let Some(flag) = it.next() {
        let mut value = |what: &str| -> Result<String, String> {
            it.next().cloned().ok_or_else(|| format!("{what} needs a value"))
        };
        match flag.as_str() {
            "--addr" => opts.addr = value("--addr")?,
            "--sessions" => {
                opts.sessions = parse_count(&value("--sessions")?, "--sessions")? as u64;
            }
            "--events" => opts.events = parse_count(&value("--events")?, "--events")? as u64,
            "--shutdown" => opts.shutdown = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(Command::Load(opts))
}

fn parse_top(mut it: std::slice::Iter<'_, String>) -> Result<Command, String> {
    let mut opts = TopOptions::default();
    while let Some(flag) = it.next() {
        let mut value = |what: &str| -> Result<String, String> {
            it.next().cloned().ok_or_else(|| format!("{what} needs a value"))
        };
        match flag.as_str() {
            "--addr" => opts.addr = value("--addr")?,
            "--once" => opts.once = true,
            "--interval-ms" => {
                opts.interval_ms = parse_count(&value("--interval-ms")?, "--interval-ms")? as u64;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(Command::Top(opts))
}

/// Executes a parsed command; returns the text to print.
///
/// # Errors
///
/// Returns a message for unreadable files, assembly errors and session
/// failures.
pub fn execute(command: Command) -> Result<String, String> {
    match command {
        Command::Help => Ok(USAGE.to_string()),
        Command::Audit { source } => {
            let text = std::fs::read_to_string(&source)
                .map_err(|e| format!("cannot read `{source}`: {e}"))?;
            let image = hth_vm::asm::assemble(&source, &text, emukernel::APP_BASE)
                .map_err(|e| e.to_string())?;
            let report = audit::audit(&image);
            let mut out = String::new();
            if report.is_secure() {
                let _ = writeln!(out, "{source}: SECURE (no hardcoded resource names)");
            } else {
                let _ = writeln!(out, "{source}: NOT secure");
                for finding in &report.findings {
                    let _ = writeln!(
                        out,
                        "  {:#010x}  {:<24}  {}",
                        finding.addr, finding.text, finding.reason
                    );
                }
            }
            Ok(out)
        }
        Command::Listing { source } => {
            let text = std::fs::read_to_string(&source)
                .map_err(|e| format!("cannot read `{source}`: {e}"))?;
            let image = hth_vm::asm::assemble(&source, &text, emukernel::APP_BASE)
                .map_err(|e| e.to_string())?;
            Ok(hth_vm::disasm::listing(image.text_base(), image.text()))
        }
        Command::Run(opts) => run(*opts),
        Command::Fleet(opts) => fleet(opts),
        Command::Serve(opts) => serve(opts),
        Command::Load(opts) => load(opts),
        Command::Top(opts) => top(opts),
        Command::Replay { journal, trust, repair, batch_size } => {
            replay_journal(&journal, trust, repair, batch_size)
        }
        Command::Explain { journal, index, trust } => explain(&journal, index, trust),
    }
}

/// Renders the match-network counter line. Both `hth replay` and
/// `hth fleet` print this — one formatter so the two outputs never
/// drift apart again.
fn render_match_stats(stats: &hth_core::secpert_engine::MatchStats, indent: &str) -> String {
    format!(
        "{indent}match: {} activations, {} joins ({} matched), {} tokens created ({} live), index hit rate {:.0}%",
        stats.activations,
        stats.join_attempts,
        stats.join_matches,
        stats.tokens_created,
        stats.tokens_live,
        stats.index_hit_rate() * 100.0,
    )
}

/// Stops tracing, drains every thread's ring buffer and writes the
/// Chrome `trace_event` JSON to `path`. Returns a one-line summary.
fn write_trace(path: &str) -> Result<String, String> {
    hth_trace::set_enabled(false);
    let log = hth_trace::drain();
    std::fs::write(path, log.to_chrome_json())
        .map_err(|e| format!("cannot write trace `{path}`: {e}"))?;
    let mut line = format!("trace: {} events written to {path}", log.events.len());
    if log.dropped > 0 {
        let _ = write!(line, " ({} lost to ring overwrites)", log.dropped);
    }
    Ok(line)
}

/// Publishes a snapshot as *the* process-wide metrics state and renders
/// it from there. Every reader — `--metrics` on any command, the serve
/// daemon's `/metrics` endpoint, the drain summary — goes through the
/// same [`hth_trace::global_metrics`] registry, so a scrape taken
/// mid-run and a flag printed at exit can never disagree about what the
/// process measured. Snapshots are re-derived totals, so they replace
/// (never merge into) the registry.
fn publish_metrics(snapshot: hth_trace::MetricsSnapshot) -> String {
    let registry = hth_trace::global_metrics();
    registry.replace(snapshot);
    registry.snapshot().render_prometheus()
}

/// Runs the fleet daemon until a client asks it to drain, then renders
/// the summary: final counters, the aggregate warning multiset (the
/// same shape batch-mode `hth fleet` prints), and optionally the final
/// metrics snapshot.
fn serve(opts: ServeOptions) -> Result<String, String> {
    let mut table = hth_serve::TableConfig {
        budget_bytes: opts.budget_mb.saturating_mul(1 << 20),
        idle_timeout: opts.idle_ms.map(std::time::Duration::from_millis),
        ..hth_serve::TableConfig::default()
    };
    table.policy.trusted_binaries.extend(opts.trust.iter().cloned());
    let config = hth_serve::ServeConfig { addr: opts.addr, workers: opts.workers, table };
    let server = hth_serve::Server::bind(config).map_err(|e| e.to_string())?;
    // Announce readiness on stderr immediately; stdout carries the
    // drain summary once the daemon stops.
    eprintln!("hth serve: listening on {}", server.local_addr());
    let handle = server.table();
    let summary = server.run().map_err(|e| e.to_string())?;
    let mut out = String::new();
    let s = &summary.stats;
    let _ = writeln!(
        out,
        "serve: {} events over {} sessions ({} still open), {} warnings",
        s.events_total,
        s.sessions_open.max(summary.resident_high_water),
        s.sessions_open,
        s.warnings_total,
    );
    let _ = writeln!(
        out,
        "  lifecycle: {} evictions, {} snapshot restores, {} fallback replays, high water {} resident",
        s.evictions, s.restores, s.fallback_replays, summary.resident_high_water,
    );
    let _ = writeln!(
        out,
        "  served: {} connections, {} metric scrapes",
        summary.connections, summary.http_requests
    );
    for ((severity, rule), count) in summary.warning_counts.iter().rev() {
        let _ = writeln!(out, "  {count}x [{}] {rule}", severity.label());
    }
    if opts.metrics {
        let mut snapshot = hth_trace::MetricsSnapshot::default();
        handle.record_metrics(&mut snapshot);
        let _ = writeln!(out, "--- metrics ---");
        let _ = write!(out, "{}", publish_metrics(snapshot));
    }
    Ok(out)
}

/// One plain HTTP GET against the daemon's introspection surface (the
/// workspace is dependency-free, so this speaks just enough HTTP/1.1
/// itself). Returns the response body of a 200, an error otherwise.
fn http_get(addr: &str, path: &str) -> Result<String, String> {
    use std::io::{Read as _, Write as _};
    let mut stream = std::net::TcpStream::connect(addr)
        .map_err(|e| format!("cannot connect to `{addr}`: {e}"))?;
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes()).map_err(|e| format!("`{addr}`: {e}"))?;
    let mut response = String::new();
    stream.read_to_string(&mut response).map_err(|e| format!("`{addr}`: {e}"))?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("malformed HTTP response from `{addr}`"))?;
    let status = head.lines().next().unwrap_or_default();
    if !status.contains("200") {
        return Err(format!("`{addr}{path}`: {status}"));
    }
    Ok(body.to_string())
}

/// Polls `/statusz` and renders the live fleet view. `--once` fetches a
/// single frame and returns it; live mode redraws in place until the
/// daemon goes away.
fn top(opts: TopOptions) -> Result<String, String> {
    if opts.once {
        return http_get(&opts.addr, "/statusz");
    }
    loop {
        let frame = http_get(&opts.addr, "/statusz")?;
        // Clear + home: a redrawn dashboard, not a scrollback flood.
        print!("\x1b[2J\x1b[H{frame}");
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        std::thread::sleep(std::time::Duration::from_millis(opts.interval_ms.max(50)));
    }
}

/// Drives synthetic sessions against a running daemon over loopback and
/// reports throughput and ack latency.
fn load(opts: LoadOptions) -> Result<String, String> {
    let report = hth_serve::run_load(opts.addr.as_str(), opts.sessions, opts.events)
        .map_err(|e| format!("load against `{}` failed: {e}", opts.addr))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "load: {} events over {} sessions in {:.2?} ({:.0} events/sec)",
        report.events,
        report.sessions,
        report.elapsed,
        report.events_per_sec(),
    );
    let _ = writeln!(
        out,
        "  ack latency: p50 <= {}us, p99 <= {}us over {} acks",
        report.ack_latency_us.quantile(0.5),
        report.ack_latency_us.quantile(0.99),
        report.ack_latency_us.count(),
    );
    let s = &report.server;
    let _ = writeln!(
        out,
        "  server: {} events total, {} resident of {} open, {} evictions, {} restores",
        s.events_total, s.sessions_resident, s.sessions_open, s.evictions, s.restores,
    );
    if opts.shutdown {
        let mut client =
            hth_serve::Client::connect(opts.addr.as_str()).map_err(|e| e.to_string())?;
        client.shutdown().map_err(|e| e.to_string())?;
        let _ = writeln!(out, "  daemon drained");
    }
    Ok(out)
}

/// Runs `opts.sessions` workload sessions through the sharded analyst
/// pool and renders the report. The catalog is the Table 8 exploit set,
/// cycled — or, with `--correlate`, the coordinated campaign whose
/// sessions are individually (near-)silent and only damn each other in
/// aggregate — or, with `--gen2`, the second-generation syscall-surface
/// workloads (mmap, pipes, select, signals, /proc).
fn fleet(opts: FleetOptions) -> Result<String, String> {
    let catalog = if opts.correlate {
        hth_workloads::coordinated::scenarios
    } else if opts.gen2 {
        hth_workloads::gen2::scenarios
    } else {
        hth_workloads::exploits::scenarios
    };
    let mut scenarios = Vec::with_capacity(opts.sessions);
    while scenarios.len() < opts.sessions {
        for scenario in catalog() {
            if scenarios.len() == opts.sessions {
                break;
            }
            scenarios.push(scenario);
        }
    }
    let mut config = FleetConfig::default();
    config.pool.shards = opts.shards;
    config.pool.queue_capacity = opts.queue;
    config.pool.batch_size = opts.batch_size;
    config.pool.backpressure =
        if opts.drop_oldest { Backpressure::DropOldest } else { Backpressure::Block };
    config.workers = opts.workers;
    if let Some(seed) = opts.chaos_seed {
        config.pool.faults = Some(Arc::new(FaultPlan::from_seed(seed)));
    }
    if opts.correlate {
        config.correlate = Some(hth_core::CorrelateConfig::default());
    }
    config.session.policy.trusted_binaries.extend(opts.trust.iter().cloned());
    if opts.trace.is_some() {
        hth_trace::set_enabled(true);
    }
    let report = hth_fleet::run_scenarios(scenarios, &config).map_err(|e| e.to_string())?;
    let mut out = report.render();
    if let Some(path) = &opts.digests {
        let stream = hth_fleet::write_digest_stream(&report.digests);
        std::fs::write(path, &stream)
            .map_err(|e| format!("cannot write digest stream `{path}`: {e}"))?;
        let _ = writeln!(
            out,
            "digests: {} sessions ({} bytes) written to {path}",
            report.digests.len(),
            stream.len(),
        );
    }
    if !report.match_stats.is_empty() {
        let _ = writeln!(out, "{}", render_match_stats(&report.match_stats, "  "));
    }
    if let Some(seed) = opts.chaos_seed {
        let _ = writeln!(
            out,
            "chaos: seed {seed}, {} lost of {} submitted, {} respawns (all accounted)",
            report.lost(),
            report.submitted,
            report.respawns,
        );
    }
    if let Some(path) = &opts.bundles {
        let json: Vec<String> = report.bundles.iter().map(|b| b.to_json()).collect();
        std::fs::write(path, format!("[{}]\n", json.join(",")))
            .map_err(|e| format!("cannot write bundles `{path}`: {e}"))?;
        let _ = writeln!(out, "bundles: {} written to {path}", report.bundles.len());
    }
    if opts.metrics {
        let _ = writeln!(out, "--- metrics ---");
        let _ = write!(out, "{}", publish_metrics(report.metrics()));
    }
    if let Some(path) = &opts.trace {
        let _ = writeln!(out, "{}", write_trace(path)?);
    }
    Ok(out)
}

/// Replays a journal through a fresh Secpert and prints the causal
/// tree behind warning number `index` (0-based, replay order). A
/// digest stream — told apart by its header version byte — is instead
/// fed to the fleet correlator, and the tree printed is fleet-level:
/// its supports are the per-session digest facts behind the correlated
/// warning, so it spans the contributing sessions.
fn explain(journal: &str, index: usize, trust: Vec<String>) -> Result<String, String> {
    let bytes =
        std::fs::read(journal).map_err(|e| format!("cannot read journal `{journal}`: {e}"))?;
    if matches!(hth_fleet::wire::read_header_any(&bytes), Ok(hth_fleet::DIGEST_VERSION)) {
        let digests =
            hth_fleet::read_digest_stream(&bytes).map_err(|e| format!("`{journal}`: {e}"))?;
        let mut correlator = hth_core::Correlator::new(hth_core::CorrelateConfig::default());
        for digest in digests {
            correlator.ingest(digest);
        }
        let report = correlator.correlate().map_err(|e| format!("`{journal}`: {e}"))?;
        let warning = report.warnings.get(index).ok_or_else(|| {
            format!(
                "`{journal}` correlated {} sessions into {} fleet warnings; index {index} is out of range (0-based)",
                report.sessions,
                report.warnings.len()
            )
        })?;
        return match &warning.provenance {
            Some(provenance) => Ok(provenance.render_tree(warning)),
            None => Err(format!("fleet warning {index} has no recorded provenance")),
        };
    }
    let mut policy = PolicyConfig::default();
    policy.trusted_binaries.extend(trust);
    let mut secpert = Secpert::new(&policy).map_err(|e| e.to_string())?;
    let reader =
        JournalReader::new(std::io::Cursor::new(bytes)).map_err(|e| format!("`{journal}`: {e}"))?;
    let warnings =
        hth_fleet::replay(reader, &mut secpert).map_err(|e| format!("`{journal}`: {e}"))?;
    let warning = warnings.get(index).ok_or_else(|| {
        format!(
            "`{journal}` replay produced {} warnings; index {index} is out of range (0-based)",
            warnings.len()
        )
    })?;
    match &warning.provenance {
        Some(provenance) => Ok(provenance.render_tree(warning)),
        None => Err(format!("warning {index} has no recorded provenance")),
    }
}

/// Replays a recorded journal through a fresh Secpert, printing every
/// warning the offline analysis reproduces. With `repair`, a damaged
/// journal is salvaged frame by frame instead of aborting: every
/// decodable prefix is replayed and the recovery report says exactly
/// what was dropped.
fn replay_journal(
    journal: &str,
    trust: Vec<String>,
    repair: bool,
    batch_size: usize,
) -> Result<String, String> {
    let mut policy = PolicyConfig::default();
    policy.trusted_binaries.extend(trust);
    let mut secpert = Secpert::new(&policy).map_err(|e| e.to_string())?;
    let (warnings, recovery) = if repair {
        let bytes =
            std::fs::read(journal).map_err(|e| format!("cannot read journal `{journal}`: {e}"))?;
        let (warnings, report) = hth_fleet::replay_repair_batched(&bytes, &mut secpert, batch_size)
            .map_err(|e| format!("`{journal}`: {e}"))?;
        (warnings, Some(report))
    } else {
        let file = std::fs::File::open(journal)
            .map_err(|e| format!("cannot read journal `{journal}`: {e}"))?;
        let reader = JournalReader::new(std::io::BufReader::new(file))
            .map_err(|e| format!("`{journal}`: {e}"))?;
        let warnings = hth_fleet::replay_batched(reader, &mut secpert, batch_size)
            .map_err(|e| format!("`{journal}`: {e}"))?;
        (warnings, None)
    };
    let mut out = String::new();
    if let Some(report) = &recovery {
        let _ = writeln!(out, "recovery: {}", report.render());
    }
    if warnings.is_empty() {
        let _ = writeln!(out, "clean: no warnings");
    } else {
        for warning in &warnings {
            let _ = writeln!(
                out,
                "t={} pid={} {} [{}] {}",
                warning.time,
                warning.pid,
                warning.rule,
                warning.severity.label(),
                warning.message
            );
        }
    }
    let _ = writeln!(out, "replay: {} warnings", warnings.len());
    let stats = secpert.match_stats();
    if !stats.is_empty() {
        let _ = writeln!(out, "{}", render_match_stats(&stats, ""));
    }
    Ok(out)
}

/// Builds the session from options, runs it, renders the report.
fn run(opts: RunOptions) -> Result<String, String> {
    let program = std::fs::read_to_string(&opts.source)
        .map_err(|e| format!("cannot read `{}`: {e}", opts.source))?;
    let mut config = SessionConfig::default();
    config.harrier.track_dataflow = !opts.no_dataflow;
    config.harrier.track_bb_freq = !opts.no_bb;
    config.hybrid_static_analysis = opts.hybrid;
    config.policy.trusted_binaries.extend(opts.trust.iter().cloned());
    let mut session = Session::new(config).map_err(|e| e.to_string())?;

    // (writer, first append error) — the tap can't propagate errors, so
    // the first failure is parked here and reported after the run.
    type JournalSink =
        Arc<Mutex<(JournalWriter<std::io::BufWriter<std::fs::File>>, Option<String>)>>;
    let journal: Option<JournalSink> = match &opts.journal {
        Some(path) => {
            let file = std::fs::File::create(path)
                .map_err(|e| format!("cannot create journal `{path}`: {e}"))?;
            let writer = JournalWriter::new(std::io::BufWriter::new(file))
                .map_err(|e| format!("cannot start journal `{path}`: {e}"))?;
            let sink: JournalSink = Arc::new(Mutex::new((writer, None)));
            let tap = Arc::clone(&sink);
            session.set_event_tap(Box::new(move |event| {
                let mut guard = tap.lock().expect("journal sink poisoned");
                if guard.1.is_none() {
                    if let Err(e) = guard.0.append(event) {
                        guard.1 = Some(e.to_string());
                    }
                }
            }));
            Some(sink)
        }
        None => None,
    };

    for chunk in &opts.stdin {
        session.kernel.push_stdin(chunk.as_bytes().to_vec());
    }
    for (path, content) in &opts.files {
        session.kernel.vfs.install(path.clone(), FileNode::regular(content.as_bytes().to_vec()));
    }
    for (name, ip) in &opts.hosts {
        session.kernel.net.add_host(name, *ip);
    }
    for (endpoint, reply) in &opts.peers {
        let peer = match reply {
            Some(text) => Peer { on_connect: vec![text.as_bytes().to_vec()], ..Peer::default() },
            None => Peer::default(),
        };
        session.kernel.net.add_peer(*endpoint, peer);
    }
    for (port, send) in &opts.clients {
        let sends = send.iter().map(|s| s.as_bytes().to_vec()).collect();
        session.kernel.net.queue_client(
            *port,
            RemoteClient {
                from: Endpoint { ip: 0xc0a8_0101, port: 40000 },
                sends,
                received: Vec::new(),
            },
        );
    }
    let mut lib_names = Vec::new();
    for (name, path) in &opts.libs {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read library `{path}`: {e}"))?;
        session.kernel.register_lib(name, &text);
        lib_names.push(name.clone());
    }
    let libs: Vec<&str> = lib_names.iter().map(String::as_str).collect();
    session.kernel.register_binary(&opts.source, &program, &libs);

    let mut argv: Vec<&str> = vec![&opts.source];
    argv.extend(opts.args.iter().map(String::as_str));
    let env: Vec<(&str, &str)> = opts.env.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
    session.start(&opts.source, &argv, &env).map_err(|e| e.to_string())?;
    if opts.trace.is_some() {
        hth_trace::set_enabled(true);
    }
    let report = session.run().map_err(|e| e.to_string())?;

    let mut out = String::new();
    if opts.show_events {
        let _ = writeln!(out, "--- events ---");
        for event in session.events() {
            let _ = writeln!(out, "{event:?}");
        }
    }
    let transcript = session.take_transcript();
    if transcript.is_empty() {
        let _ = writeln!(out, "clean: no warnings");
    } else {
        let _ = write!(out, "{transcript}");
    }
    if opts.show_summary {
        let _ = writeln!(out, "--- summary ---");
        let _ = write!(out, "{}", session.summary());
    }
    if opts.metrics {
        let _ = writeln!(out, "--- metrics ---");
        let _ = write!(out, "{}", publish_metrics(session.metrics()));
    }
    if report.truncated {
        let _ = writeln!(out, "(run truncated at the instruction budget)");
    }
    for (pid, fault) in &report.faults {
        let _ = writeln!(out, "(pid {pid} crashed: {fault})");
    }
    if let Some(sink) = journal {
        drop(session); // releases the tap's Arc so the sink has one owner
        let (writer, error) = Arc::try_unwrap(sink)
            .unwrap_or_else(|_| unreachable!("tap dropped with the session"))
            .into_inner()
            .map_err(|_| "journal sink poisoned".to_string())?;
        let path = opts.journal.as_deref().unwrap_or_default();
        if let Some(e) = error {
            return Err(format!("journal `{path}` write failed: {e}"));
        }
        let events = writer.events();
        writer.finish().map_err(|e| format!("journal `{path}` flush failed: {e}"))?;
        let _ = writeln!(out, "journal: {events} events recorded to {path}");
    }
    if let Some(path) = &opts.trace {
        let _ = writeln!(out, "{}", write_trace(path)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_help_and_errors() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&strs(&["help"])).unwrap(), Command::Help);
        assert!(parse(&strs(&["bogus", "x.s"])).is_err());
        assert!(parse(&strs(&["run"])).is_err());
        assert!(parse(&strs(&["run", "x.s", "--nope"])).is_err());
        assert!(parse(&strs(&["run", "x.s", "--arg"])).is_err());
    }

    #[test]
    fn parse_run_options() {
        let cmd = parse(&strs(&[
            "run",
            "prog.s",
            "--arg",
            "a1",
            "--env",
            "K=V",
            "--stdin",
            "hello",
            "--file",
            "/etc/x=data",
            "--host",
            "c2=10.0.0.1",
            "--peer",
            "10.0.0.1:80=resp",
            "--client",
            "99=cmd",
            "--trust",
            "libfoo.so",
            "--no-dataflow",
            "--hybrid",
            "--summary",
        ]))
        .unwrap();
        let Command::Run(opts) = cmd else { panic!() };
        assert_eq!(opts.args, vec!["a1"]);
        assert_eq!(opts.env, vec![("K".to_string(), "V".to_string())]);
        assert_eq!(opts.hosts, vec![("c2".to_string(), 0x0a00_0001)]);
        assert_eq!(opts.peers[0].0, Endpoint { ip: 0x0a00_0001, port: 80 });
        assert_eq!(opts.peers[0].1.as_deref(), Some("resp"));
        assert_eq!(opts.clients, vec![(99, Some("cmd".to_string()))]);
        assert!(opts.no_dataflow && opts.hybrid && opts.show_summary);
        assert!(!opts.no_bb);
    }

    #[test]
    fn parse_fleet_options() {
        assert_eq!(parse(&strs(&["fleet"])).unwrap(), Command::Fleet(FleetOptions::default()));
        let cmd = parse(&strs(&[
            "fleet",
            "--sessions",
            "12",
            "--shards",
            "2",
            "--workers",
            "3",
            "--queue",
            "64",
            "--batch-size",
            "16",
            "--drop-oldest",
            "--trust",
            "libfoo.so",
        ]))
        .unwrap();
        let Command::Fleet(opts) = cmd else { panic!() };
        assert_eq!(opts.sessions, 12);
        assert_eq!(opts.shards, 2);
        assert_eq!(opts.workers, 3);
        assert_eq!(opts.queue, 64);
        assert_eq!(opts.batch_size, 16);
        assert!(opts.drop_oldest);
        assert_eq!(opts.trust, vec!["libfoo.so"]);
        assert_eq!(FleetOptions::default().batch_size, 64);
        assert!(parse(&strs(&["fleet", "--shards", "0"])).is_err());
        assert!(parse(&strs(&["fleet", "--sessions"])).is_err());
        assert!(parse(&strs(&["fleet", "--batch-size", "0"])).is_err());
        assert!(parse(&strs(&["fleet", "--batch-size"])).is_err());
        assert!(parse(&strs(&["fleet", "--nope"])).is_err());
    }

    #[test]
    fn parse_fleet_correlate_options() {
        let cmd = parse(&strs(&["fleet", "--correlate", "--digests", "fleet.hthd"])).unwrap();
        let Command::Fleet(opts) = cmd else { panic!() };
        assert!(opts.correlate);
        assert_eq!(opts.digests.as_deref(), Some("fleet.hthd"));
        assert!(!FleetOptions::default().correlate);
        assert_eq!(FleetOptions::default().digests, None);
        assert!(parse(&strs(&["fleet", "--digests"])).is_err());
    }

    #[test]
    fn parse_fleet_gen2_option() {
        let cmd = parse(&strs(&["fleet", "--gen2", "--sessions", "5"])).unwrap();
        let Command::Fleet(opts) = cmd else { panic!() };
        assert!(opts.gen2);
        assert_eq!(opts.sessions, 5);
        assert!(!FleetOptions::default().gen2);
    }

    #[test]
    fn parse_replay_options() {
        assert_eq!(
            parse(&strs(&["replay", "events.hthj", "--trust", "make"])).unwrap(),
            Command::Replay {
                journal: "events.hthj".to_string(),
                trust: vec!["make".to_string()],
                repair: false,
                batch_size: 64,
            }
        );
        assert_eq!(
            parse(&strs(&["replay", "events.hthj", "--repair", "--batch-size", "7"])).unwrap(),
            Command::Replay {
                journal: "events.hthj".to_string(),
                trust: vec![],
                repair: true,
                batch_size: 7,
            }
        );
        assert!(parse(&strs(&["replay"])).is_err());
        assert!(parse(&strs(&["replay", "events.hthj", "--batch-size", "0"])).is_err());
        assert!(parse(&strs(&["replay", "events.hthj", "--batch-size"])).is_err());
        assert!(parse(&strs(&["replay", "events.hthj", "--nope"])).is_err());
    }

    #[test]
    fn parse_explain_options() {
        assert_eq!(
            parse(&strs(&["explain", "events.hthj", "2", "--trust", "make"])).unwrap(),
            Command::Explain {
                journal: "events.hthj".to_string(),
                index: 2,
                trust: vec!["make".to_string()],
            }
        );
        assert!(parse(&strs(&["explain"])).is_err());
        assert!(parse(&strs(&["explain", "events.hthj"])).is_err());
        assert!(parse(&strs(&["explain", "events.hthj", "x"])).is_err());
        assert!(parse(&strs(&["explain", "events.hthj", "0", "--nope"])).is_err());
    }

    #[test]
    fn parse_trace_and_metrics_flags() {
        let cmd = parse(&strs(&["fleet", "--trace", "t.json", "--metrics"])).unwrap();
        let Command::Fleet(opts) = cmd else { panic!() };
        assert_eq!(opts.trace.as_deref(), Some("t.json"));
        assert!(opts.metrics);
        let cmd = parse(&strs(&["run", "x.s", "--trace", "t.json", "--metrics"])).unwrap();
        let Command::Run(opts) = cmd else { panic!() };
        assert_eq!(opts.trace.as_deref(), Some("t.json"));
        assert!(opts.metrics);
        assert!(parse(&strs(&["fleet", "--trace"])).is_err());
        assert!(parse(&strs(&["run", "x.s", "--trace"])).is_err());
    }

    #[test]
    fn parse_serve_and_load_options() {
        assert_eq!(parse(&strs(&["serve"])).unwrap(), Command::Serve(ServeOptions::default()));
        let cmd = parse(&strs(&[
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--budget-mb",
            "8",
            "--idle-ms",
            "500",
            "--trust",
            "libfoo.so",
            "--metrics",
        ]))
        .unwrap();
        let Command::Serve(opts) = cmd else { panic!() };
        assert_eq!(opts.addr, "127.0.0.1:0");
        assert_eq!(opts.workers, 2);
        assert_eq!(opts.budget_mb, 8);
        assert_eq!(opts.idle_ms, Some(500));
        assert_eq!(opts.trust, vec!["libfoo.so"]);
        assert!(opts.metrics);
        assert!(parse(&strs(&["serve", "--workers", "0"])).is_err());
        assert!(parse(&strs(&["serve", "--budget-mb"])).is_err());
        assert!(parse(&strs(&["serve", "--nope"])).is_err());

        assert_eq!(parse(&strs(&["load"])).unwrap(), Command::Load(LoadOptions::default()));
        let cmd = parse(&strs(&[
            "load",
            "--addr",
            "127.0.0.1:9",
            "--sessions",
            "3",
            "--events",
            "7",
            "--shutdown",
        ]))
        .unwrap();
        let Command::Load(opts) = cmd else { panic!() };
        assert_eq!(opts.addr, "127.0.0.1:9");
        assert_eq!(opts.sessions, 3);
        assert_eq!(opts.events, 7);
        assert!(opts.shutdown);
        assert!(parse(&strs(&["load", "--sessions", "0"])).is_err());
        assert!(parse(&strs(&["load", "--nope"])).is_err());
    }

    #[test]
    fn serve_and_load_end_to_end() {
        // Bind the daemon on a free port directly (the CLI path would
        // hide the chosen port inside the blocking execute call), then
        // drive it with the real `hth load` executor.
        let server = hth_serve::Server::bind(hth_serve::ServeConfig {
            addr: "127.0.0.1:0".into(),
            ..hth_serve::ServeConfig::default()
        })
        .unwrap();
        let addr = server.local_addr().to_string();
        let join = std::thread::spawn(move || server.run().unwrap());

        let out =
            execute(Command::Load(LoadOptions { addr, sessions: 3, events: 10, shutdown: true }))
                .unwrap();
        assert!(out.contains("load: 30 events over 3 sessions"), "{out}");
        assert!(out.contains("ack latency: p50 <= "), "{out}");
        assert!(out.contains("server: 30 events total"), "{out}");
        assert!(out.contains("daemon drained"), "{out}");

        let summary = join.join().unwrap();
        assert_eq!(summary.stats.events_total, 30);
    }

    #[test]
    fn parse_chaos_seed() {
        let cmd = parse(&strs(&["fleet", "--chaos-seed", "7"])).unwrap();
        let Command::Fleet(opts) = cmd else { panic!() };
        assert_eq!(opts.chaos_seed, Some(7));
        assert!(parse(&strs(&["fleet", "--chaos-seed"])).is_err());
        assert!(parse(&strs(&["fleet", "--chaos-seed", "x"])).is_err());
        assert!(parse(&strs(&["fleet", "--chaos-seed", "-1"])).is_err());
    }

    #[test]
    fn parse_ip_validation() {
        assert_eq!(parse_ip("1.2.3.4").unwrap(), 0x0102_0304);
        assert!(parse_ip("1.2.3").is_err());
        assert!(parse_ip("1.2.3.999").is_err());
    }

    #[test]
    fn run_reports_warnings_end_to_end() {
        let dir = std::env::temp_dir().join("hth-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let src = dir.join("dropper.s");
        std::fs::write(
            &src,
            "_start:\n mov eax, 11\n mov ebx, prog\n int 0x80\n hlt\n.data\nprog: .asciz \"/bin/ls\"\n",
        )
        .unwrap();
        let out = execute(Command::Run(Box::new(RunOptions {
            source: src.to_string_lossy().into_owned(),
            show_summary: true,
            ..RunOptions::default()
        })))
        .unwrap();
        assert!(out.contains("Warning [LOW]"), "{out}");
        assert!(out.contains("--- summary ---"), "{out}");
    }

    #[test]
    fn audit_and_listing_end_to_end() {
        let dir = std::env::temp_dir().join("hth-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let src = dir.join("trojan.s");
        std::fs::write(&src, "_start:\n hlt\n.data\np: .asciz \"/bin/sh\"\n").unwrap();
        let path = src.to_string_lossy().into_owned();
        let audit_out = execute(Command::Audit { source: path.clone() }).unwrap();
        assert!(audit_out.contains("NOT secure"), "{audit_out}");
        assert!(audit_out.contains("/bin/sh"));
        let listing_out = execute(Command::Listing { source: path }).unwrap();
        assert!(listing_out.contains("hlt"), "{listing_out}");
    }

    #[test]
    fn journal_then_replay_end_to_end() {
        let dir = std::env::temp_dir().join("hth-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let src = dir.join("journaled.s");
        std::fs::write(
            &src,
            "_start:\n mov eax, 11\n mov ebx, prog\n int 0x80\n hlt\n.data\nprog: .asciz \"/bin/ls\"\n",
        )
        .unwrap();
        let journal = dir.join("journaled.hthj");
        let run_out = execute(Command::Run(Box::new(RunOptions {
            source: src.to_string_lossy().into_owned(),
            journal: Some(journal.to_string_lossy().into_owned()),
            ..RunOptions::default()
        })))
        .unwrap();
        assert!(run_out.contains("Warning [LOW]"), "{run_out}");
        assert!(run_out.contains("events recorded"), "{run_out}");

        let replay_out = execute(Command::Replay {
            journal: journal.to_string_lossy().into_owned(),
            trust: Vec::new(),
            repair: false,
            batch_size: 64,
        })
        .unwrap();
        assert!(replay_out.contains("[LOW]"), "{replay_out}");
        assert!(replay_out.contains("replay: 1 warnings"), "{replay_out}");

        // --repair on an intact journal is a no-op salvage: same
        // warnings, clean recovery report.
        let repair_out = execute(Command::Replay {
            journal: journal.to_string_lossy().into_owned(),
            trust: Vec::new(),
            repair: true,
            batch_size: 1,
        })
        .unwrap();
        assert!(repair_out.contains("replay: 1 warnings"), "{repair_out}");
        assert!(repair_out.contains("clean EOF"), "{repair_out}");
    }

    #[test]
    fn repair_salvages_a_truncated_journal() {
        let dir = std::env::temp_dir().join("hth-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let src = dir.join("torn.s");
        std::fs::write(
            &src,
            "_start:\n mov eax, 11\n mov ebx, prog\n int 0x80\n hlt\n.data\nprog: .asciz \"/bin/ls\"\n",
        )
        .unwrap();
        let journal = dir.join("torn.hthj");
        execute(Command::Run(Box::new(RunOptions {
            source: src.to_string_lossy().into_owned(),
            journal: Some(journal.to_string_lossy().into_owned()),
            ..RunOptions::default()
        })))
        .unwrap();
        // Tear the tail: chop the last 3 bytes off the recorded file.
        let bytes = std::fs::read(&journal).unwrap();
        std::fs::write(&journal, &bytes[..bytes.len() - 3]).unwrap();

        let path = journal.to_string_lossy().into_owned();
        let strict = execute(Command::Replay {
            journal: path.clone(),
            trust: vec![],
            repair: false,
            batch_size: 64,
        });
        assert!(strict.is_err(), "strict replay must fail on a torn journal");
        let repaired =
            execute(Command::Replay { journal: path, trust: vec![], repair: true, batch_size: 64 })
                .unwrap();
        assert!(repaired.contains("torn tail"), "{repaired}");
        assert!(repaired.contains("replay:"), "{repaired}");
    }

    #[test]
    fn small_fleet_end_to_end() {
        let out = execute(Command::Fleet(FleetOptions {
            sessions: 4,
            shards: 2,
            workers: 2,
            ..FleetOptions::default()
        }))
        .unwrap();
        assert!(out.contains("fleet: 4 sessions"), "{out}");
        assert!(out.contains("[HIGH]"), "{out}");
        assert!(out.contains("  match: "), "{out}");
    }

    /// `--gen2` swaps in the second-generation catalog: the report must
    /// count the laundered execve and the /proc introspection, and the
    /// trusted select server (session 5 of 5) must add nothing — in
    /// particular no backdoor-server warning.
    #[test]
    fn gen2_fleet_end_to_end() {
        let out = execute(Command::Fleet(FleetOptions {
            sessions: 5,
            shards: 2,
            workers: 2,
            gen2: true,
            ..FleetOptions::default()
        }))
        .unwrap();
        assert!(out.contains("fleet: 5 sessions"), "{out}");
        assert!(out.contains("[HIGH] check_execve"), "{out}");
        assert!(out.contains("check_proc_introspection"), "{out}");
        assert!(out.contains("check_process_kill"), "{out}");
        assert!(!out.contains("check_backdoor_server"), "{out}");
    }

    /// Batched and per-event analyst loops must report the same fleet:
    /// same rendered warning lines (the report sorts them), same
    /// per-severity counts.
    #[test]
    fn fleet_batch_sizes_agree_end_to_end() {
        let run = |batch_size: usize| {
            execute(Command::Fleet(FleetOptions {
                sessions: 4,
                shards: 2,
                workers: 2,
                batch_size,
                ..FleetOptions::default()
            }))
            .unwrap()
        };
        let batched = run(64);
        let serial = run(1);
        let warning_lines = |out: &str| {
            out.lines()
                .filter(|l| l.contains("[HIGH]") || l.contains("[MEDIUM]") || l.contains("[LOW]"))
                .map(str::to_string)
                .collect::<Vec<_>>()
        };
        assert_eq!(warning_lines(&batched), warning_lines(&serial), "{batched}\n---\n{serial}");
    }

    #[test]
    fn journal_then_explain_end_to_end() {
        let dir = std::env::temp_dir().join("hth-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let src = dir.join("explained.s");
        std::fs::write(
            &src,
            "_start:\n mov eax, 11\n mov ebx, prog\n int 0x80\n hlt\n.data\nprog: .asciz \"/bin/ls\"\n",
        )
        .unwrap();
        let journal = dir.join("explained.hthj");
        execute(Command::Run(Box::new(RunOptions {
            source: src.to_string_lossy().into_owned(),
            journal: Some(journal.to_string_lossy().into_owned()),
            ..RunOptions::default()
        })))
        .unwrap();

        let path = journal.to_string_lossy().into_owned();
        let tree =
            execute(Command::Explain { journal: path.clone(), index: 0, trust: vec![] }).unwrap();
        assert!(tree.contains("└─ firing #"), "{tree}");
        assert!(tree.contains("rule chain:"), "{tree}");
        assert!(tree.contains("/bin/ls"), "{tree}");
        let err = execute(Command::Explain { journal: path, index: 99, trust: vec![] });
        assert!(err.is_err());
        assert!(err.unwrap_err().contains("out of range"));
    }

    /// `hth fleet --correlate --digests` runs the coordinated campaign,
    /// prints the fleet warnings, and writes a digest stream that
    /// `hth explain` turns into a cross-session causal tree.
    #[test]
    fn fleet_correlate_then_explain_end_to_end() {
        let dir = std::env::temp_dir().join("hth-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let digests = dir.join("fleet.hthd");
        let out = execute(Command::Fleet(FleetOptions {
            sessions: 12,
            shards: 2,
            workers: 2,
            correlate: true,
            digests: Some(digests.to_string_lossy().into_owned()),
            ..FleetOptions::default()
        }))
        .unwrap();
        assert!(out.contains("fleet correlation: 12 sessions"), "{out}");
        assert!(out.contains("shared_c2"), "{out}");
        assert!(out.contains("recurring_dropper"), "{out}");
        assert!(out.contains("distributed_exfil"), "{out}");
        assert!(out.contains("digests: 12 sessions"), "{out}");

        let path = digests.to_string_lossy().into_owned();
        let tree =
            execute(Command::Explain { journal: path.clone(), index: 0, trust: vec![] }).unwrap();
        assert!(tree.contains("rule chain:"), "{tree}");
        assert!(tree.contains("digest-stream"), "{tree}");
        // The fleet tree names the sessions that conspired.
        assert!(tree.contains("session-"), "{tree}");
        let err = execute(Command::Explain { journal: path, index: 99, trust: vec![] });
        assert!(err.unwrap_err().contains("out of range"));
    }

    #[test]
    fn fleet_trace_and_metrics_end_to_end() {
        let dir = std::env::temp_dir().join("hth-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("fleet-trace.json");
        let out = execute(Command::Fleet(FleetOptions {
            sessions: 2,
            shards: 2,
            workers: 2,
            trace: Some(trace.to_string_lossy().into_owned()),
            metrics: true,
            ..FleetOptions::default()
        }))
        .unwrap();
        assert!(out.contains("--- metrics ---"), "{out}");
        assert!(out.contains("hth_pool_events"), "{out}");
        assert!(out.contains("hth_taint_interned_sets"), "{out}");
        assert!(out.contains("trace: "), "{out}");
        let json = std::fs::read_to_string(&trace).unwrap();
        assert!(json.starts_with("{\"displayTimeUnit\""), "{json}");
        assert!(json.contains("\"name\":\"pool.analyst\""), "{}", &json[..200.min(json.len())]);
    }

    #[test]
    fn clean_program_reports_clean() {
        let dir = std::env::temp_dir().join("hth-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let src = dir.join("clean.s");
        std::fs::write(&src, "_start:\n mov eax, 1\n mov ebx, 0\n int 0x80\n").unwrap();
        let out = execute(Command::Run(Box::new(RunOptions {
            source: src.to_string_lossy().into_owned(),
            ..RunOptions::default()
        })))
        .unwrap();
        assert!(out.contains("clean: no warnings"), "{out}");
    }
}
