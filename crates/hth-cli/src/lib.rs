//! # hth-cli — command-line front end for the HTH framework
//!
//! ```text
//! hth run <prog.s> [--arg V]… [--stdin TEXT]… [--file PATH=TEXT]…
//!                  [--host NAME=a.b.c.d]… [--peer IP:PORT[=REPLY]]…
//!                  [--client PORT[=SEND]]… [--lib NAME=FILE.s]…
//!                  [--trust NAME]… [--no-dataflow] [--no-bb] [--hybrid]
//!                  [--events] [--summary]
//! hth audit <prog.s>      # Appendix B Secure Binary audit
//! hth listing <prog.s>    # assemble and print the address listing
//! ```
//!
//! The argument parser and command execution live here so they are unit
//! testable; `main.rs` is a thin shell.

#![warn(missing_docs)]

use std::fmt::Write as _;

use emukernel::{Endpoint, FileNode, Peer, RemoteClient};
use harrier::audit;
use hth_core::{Session, SessionConfig};

/// A parsed command line.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Monitor a program.
    Run(Box<RunOptions>),
    /// Static Secure Binary audit.
    Audit {
        /// Path to the assembly source.
        source: String,
    },
    /// Print the assembled listing.
    Listing {
        /// Path to the assembly source.
        source: String,
    },
    /// Print usage.
    Help,
}

/// Options for `hth run`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunOptions {
    /// Path to the assembly source of the program to monitor.
    pub source: String,
    /// Extra argv entries (argv\[0\] is the program path).
    pub args: Vec<String>,
    /// Environment entries.
    pub env: Vec<(String, String)>,
    /// Console input chunks.
    pub stdin: Vec<String>,
    /// VFS files to install, `path=content`.
    pub files: Vec<(String, String)>,
    /// DNS entries, `name=a.b.c.d`.
    pub hosts: Vec<(String, u32)>,
    /// Scripted peers `(endpoint, optional reply)`.
    pub peers: Vec<(Endpoint, Option<String>)>,
    /// Scripted inbound clients `(port, optional send)`.
    pub clients: Vec<(u16, Option<String>)>,
    /// Shared objects to register, `name=path`.
    pub libs: Vec<(String, String)>,
    /// Extra trusted binaries.
    pub trust: Vec<String>,
    /// Disable dataflow tracking.
    pub no_dataflow: bool,
    /// Disable BB frequency tracking.
    pub no_bb: bool,
    /// Enable the hybrid static pre-pass.
    pub hybrid: bool,
    /// Print Harrier events.
    pub show_events: bool,
    /// Print the session summary.
    pub show_summary: bool,
}

/// Usage text.
pub const USAGE: &str = "\
hth — Hunting Trojan Horses

USAGE:
  hth run <prog.s> [options]   monitor a program, print warnings
  hth audit <prog.s>           Secure Binary audit (Appendix B)
  hth listing <prog.s>         assemble and print the listing
  hth help                     this text

RUN OPTIONS:
  --arg V            append an argv entry (repeatable)
  --env K=V          set an environment variable
  --stdin TEXT       queue one chunk of console input
  --file PATH=TEXT   install a file in the VFS
  --host NAME=IP     add a DNS entry (dotted quad)
  --peer IP:PORT[=REPLY]   script a remote server
  --client PORT[=SEND]     script an inbound client
  --lib NAME=FILE.s  register a shared object from a source file
  --trust NAME       add a trusted binary (substring match)
  --no-dataflow      disable taint tracking (fast, loses origins)
  --no-bb            disable basic-block frequency
  --hybrid           static pre-pass: skip dataflow for Secure Binaries
  --events           print every Harrier event
  --summary          print the session summary
";

fn parse_ip(text: &str) -> Result<u32, String> {
    let parts: Vec<&str> = text.split('.').collect();
    if parts.len() != 4 {
        return Err(format!("bad IP `{text}` (want a.b.c.d)"));
    }
    let mut ip = 0u32;
    for part in parts {
        let octet: u8 = part.parse().map_err(|_| format!("bad IP octet `{part}`"))?;
        ip = (ip << 8) | u32::from(octet);
    }
    Ok(ip)
}

fn parse_kv(text: &str, what: &str) -> Result<(String, String), String> {
    text.split_once('=')
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .ok_or_else(|| format!("bad {what} `{text}` (want K=V)"))
}

fn parse_endpoint(text: &str) -> Result<Endpoint, String> {
    let (ip, port) =
        text.split_once(':').ok_or_else(|| format!("bad endpoint `{text}` (want IP:PORT)"))?;
    Ok(Endpoint {
        ip: parse_ip(ip)?,
        port: port.parse().map_err(|_| format!("bad port `{port}`"))?,
    })
}

/// Parses a command line (without the leading program name).
///
/// # Errors
///
/// Returns a human-readable message for unknown flags, missing values
/// or malformed option payloads.
pub fn parse(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter();
    let command = match it.next().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => return Ok(Command::Help),
        Some(c) => c,
    };
    let source = it.next().ok_or_else(|| format!("`{command}` needs a source file"))?.clone();
    match command {
        "audit" => return Ok(Command::Audit { source }),
        "listing" => return Ok(Command::Listing { source }),
        "run" => {}
        other => return Err(format!("unknown command `{other}` (try `hth help`)")),
    }
    let mut opts = RunOptions { source, ..RunOptions::default() };
    while let Some(flag) = it.next() {
        let mut value = |what: &str| -> Result<String, String> {
            it.next().cloned().ok_or_else(|| format!("{what} needs a value"))
        };
        match flag.as_str() {
            "--arg" => opts.args.push(value("--arg")?),
            "--env" => opts.env.push(parse_kv(&value("--env")?, "--env")?),
            "--stdin" => opts.stdin.push(value("--stdin")?),
            "--file" => opts.files.push(parse_kv(&value("--file")?, "--file")?),
            "--host" => {
                let (name, ip) = parse_kv(&value("--host")?, "--host")?;
                opts.hosts.push((name, parse_ip(&ip)?));
            }
            "--peer" => {
                let text = value("--peer")?;
                let (ep, reply) = match text.split_once('=') {
                    Some((ep, reply)) => (ep.to_string(), Some(reply.to_string())),
                    None => (text, None),
                };
                opts.peers.push((parse_endpoint(&ep)?, reply));
            }
            "--client" => {
                let text = value("--client")?;
                let (port, send) = match text.split_once('=') {
                    Some((port, send)) => (port.to_string(), Some(send.to_string())),
                    None => (text, None),
                };
                opts.clients.push((port.parse().map_err(|_| format!("bad port `{port}`"))?, send));
            }
            "--lib" => opts.libs.push(parse_kv(&value("--lib")?, "--lib")?),
            "--trust" => opts.trust.push(value("--trust")?),
            "--no-dataflow" => opts.no_dataflow = true,
            "--no-bb" => opts.no_bb = true,
            "--hybrid" => opts.hybrid = true,
            "--events" => opts.show_events = true,
            "--summary" => opts.show_summary = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(Command::Run(Box::new(opts)))
}

/// Executes a parsed command; returns the text to print.
///
/// # Errors
///
/// Returns a message for unreadable files, assembly errors and session
/// failures.
pub fn execute(command: Command) -> Result<String, String> {
    match command {
        Command::Help => Ok(USAGE.to_string()),
        Command::Audit { source } => {
            let text = std::fs::read_to_string(&source)
                .map_err(|e| format!("cannot read `{source}`: {e}"))?;
            let image = hth_vm::asm::assemble(&source, &text, emukernel::APP_BASE)
                .map_err(|e| e.to_string())?;
            let report = audit::audit(&image);
            let mut out = String::new();
            if report.is_secure() {
                let _ = writeln!(out, "{source}: SECURE (no hardcoded resource names)");
            } else {
                let _ = writeln!(out, "{source}: NOT secure");
                for finding in &report.findings {
                    let _ = writeln!(
                        out,
                        "  {:#010x}  {:<24}  {}",
                        finding.addr, finding.text, finding.reason
                    );
                }
            }
            Ok(out)
        }
        Command::Listing { source } => {
            let text = std::fs::read_to_string(&source)
                .map_err(|e| format!("cannot read `{source}`: {e}"))?;
            let image = hth_vm::asm::assemble(&source, &text, emukernel::APP_BASE)
                .map_err(|e| e.to_string())?;
            Ok(hth_vm::disasm::listing(image.text_base(), image.text()))
        }
        Command::Run(opts) => run(*opts),
    }
}

/// Builds the session from options, runs it, renders the report.
fn run(opts: RunOptions) -> Result<String, String> {
    let program = std::fs::read_to_string(&opts.source)
        .map_err(|e| format!("cannot read `{}`: {e}", opts.source))?;
    let mut config = SessionConfig::default();
    config.harrier.track_dataflow = !opts.no_dataflow;
    config.harrier.track_bb_freq = !opts.no_bb;
    config.hybrid_static_analysis = opts.hybrid;
    config.policy.trusted_binaries.extend(opts.trust.iter().cloned());
    let mut session = Session::new(config).map_err(|e| e.to_string())?;

    for chunk in &opts.stdin {
        session.kernel.push_stdin(chunk.as_bytes().to_vec());
    }
    for (path, content) in &opts.files {
        session.kernel.vfs.install(path.clone(), FileNode::regular(content.as_bytes().to_vec()));
    }
    for (name, ip) in &opts.hosts {
        session.kernel.net.add_host(name, *ip);
    }
    for (endpoint, reply) in &opts.peers {
        let peer = match reply {
            Some(text) => Peer { on_connect: vec![text.as_bytes().to_vec()], ..Peer::default() },
            None => Peer::default(),
        };
        session.kernel.net.add_peer(*endpoint, peer);
    }
    for (port, send) in &opts.clients {
        let sends = send.iter().map(|s| s.as_bytes().to_vec()).collect();
        session.kernel.net.queue_client(
            *port,
            RemoteClient {
                from: Endpoint { ip: 0xc0a8_0101, port: 40000 },
                sends,
                received: Vec::new(),
            },
        );
    }
    let mut lib_names = Vec::new();
    for (name, path) in &opts.libs {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read library `{path}`: {e}"))?;
        session.kernel.register_lib(name, &text);
        lib_names.push(name.clone());
    }
    let libs: Vec<&str> = lib_names.iter().map(String::as_str).collect();
    session.kernel.register_binary(&opts.source, &program, &libs);

    let mut argv: Vec<&str> = vec![&opts.source];
    argv.extend(opts.args.iter().map(String::as_str));
    let env: Vec<(&str, &str)> = opts.env.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
    session.start(&opts.source, &argv, &env).map_err(|e| e.to_string())?;
    let report = session.run().map_err(|e| e.to_string())?;

    let mut out = String::new();
    if opts.show_events {
        let _ = writeln!(out, "--- events ---");
        for event in session.events() {
            let _ = writeln!(out, "{event:?}");
        }
    }
    let transcript = session.take_transcript();
    if transcript.is_empty() {
        let _ = writeln!(out, "clean: no warnings");
    } else {
        let _ = write!(out, "{transcript}");
    }
    if opts.show_summary {
        let _ = writeln!(out, "--- summary ---");
        let _ = write!(out, "{}", session.summary());
    }
    if report.truncated {
        let _ = writeln!(out, "(run truncated at the instruction budget)");
    }
    for (pid, fault) in &report.faults {
        let _ = writeln!(out, "(pid {pid} crashed: {fault})");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_help_and_errors() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&strs(&["help"])).unwrap(), Command::Help);
        assert!(parse(&strs(&["bogus", "x.s"])).is_err());
        assert!(parse(&strs(&["run"])).is_err());
        assert!(parse(&strs(&["run", "x.s", "--nope"])).is_err());
        assert!(parse(&strs(&["run", "x.s", "--arg"])).is_err());
    }

    #[test]
    fn parse_run_options() {
        let cmd = parse(&strs(&[
            "run",
            "prog.s",
            "--arg",
            "a1",
            "--env",
            "K=V",
            "--stdin",
            "hello",
            "--file",
            "/etc/x=data",
            "--host",
            "c2=10.0.0.1",
            "--peer",
            "10.0.0.1:80=resp",
            "--client",
            "99=cmd",
            "--trust",
            "libfoo.so",
            "--no-dataflow",
            "--hybrid",
            "--summary",
        ]))
        .unwrap();
        let Command::Run(opts) = cmd else { panic!() };
        assert_eq!(opts.args, vec!["a1"]);
        assert_eq!(opts.env, vec![("K".to_string(), "V".to_string())]);
        assert_eq!(opts.hosts, vec![("c2".to_string(), 0x0a00_0001)]);
        assert_eq!(opts.peers[0].0, Endpoint { ip: 0x0a00_0001, port: 80 });
        assert_eq!(opts.peers[0].1.as_deref(), Some("resp"));
        assert_eq!(opts.clients, vec![(99, Some("cmd".to_string()))]);
        assert!(opts.no_dataflow && opts.hybrid && opts.show_summary);
        assert!(!opts.no_bb);
    }

    #[test]
    fn parse_ip_validation() {
        assert_eq!(parse_ip("1.2.3.4").unwrap(), 0x0102_0304);
        assert!(parse_ip("1.2.3").is_err());
        assert!(parse_ip("1.2.3.999").is_err());
    }

    #[test]
    fn run_reports_warnings_end_to_end() {
        let dir = std::env::temp_dir().join("hth-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let src = dir.join("dropper.s");
        std::fs::write(
            &src,
            "_start:\n mov eax, 11\n mov ebx, prog\n int 0x80\n hlt\n.data\nprog: .asciz \"/bin/ls\"\n",
        )
        .unwrap();
        let out = execute(Command::Run(Box::new(RunOptions {
            source: src.to_string_lossy().into_owned(),
            show_summary: true,
            ..RunOptions::default()
        })))
        .unwrap();
        assert!(out.contains("Warning [LOW]"), "{out}");
        assert!(out.contains("--- summary ---"), "{out}");
    }

    #[test]
    fn audit_and_listing_end_to_end() {
        let dir = std::env::temp_dir().join("hth-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let src = dir.join("trojan.s");
        std::fs::write(&src, "_start:\n hlt\n.data\np: .asciz \"/bin/sh\"\n").unwrap();
        let path = src.to_string_lossy().into_owned();
        let audit_out = execute(Command::Audit { source: path.clone() }).unwrap();
        assert!(audit_out.contains("NOT secure"), "{audit_out}");
        assert!(audit_out.contains("/bin/sh"));
        let listing_out = execute(Command::Listing { source: path }).unwrap();
        assert!(listing_out.contains("hlt"), "{listing_out}");
    }

    #[test]
    fn clean_program_reports_clean() {
        let dir = std::env::temp_dir().join("hth-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let src = dir.join("clean.s");
        std::fs::write(&src, "_start:\n mov eax, 1\n mov ebx, 0\n int 0x80\n").unwrap();
        let out = execute(Command::Run(Box::new(RunOptions {
            source: src.to_string_lossy().into_owned(),
            ..RunOptions::default()
        })))
        .unwrap();
        assert!(out.contains("clean: no warnings"), "{out}");
    }
}
