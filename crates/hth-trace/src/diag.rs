//! Structured, rate-limited diagnostics log.
//!
//! The fleet's failure paths — shard quarantine/respawn, torn-snapshot
//! full-replay fallback, protocol-error connection drops — used to be
//! silent: they incremented a counter and moved on, which is the right
//! hot-path behavior but leaves an operator staring at a number with no
//! story. This module gives those paths one cheap, *bounded* voice:
//! `level + component + message` lines through a token-bucket rate
//! limit, so a fault storm (a chaos seed that kills a shard every few
//! thousand events, a client spraying torn frames) cannot turn the
//! daemon's stderr into the bottleneck.
//!
//! Suppressed lines are counted and acknowledged on the next emitted
//! line (`(N suppressed)`), so the log never silently lies about
//! completeness.

use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// Severity of a diagnostic line.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum DiagLevel {
    /// Developer chatter.
    Debug,
    /// Lifecycle events worth a line.
    Info,
    /// Degraded but recovering (fallback replay, respawn).
    Warn,
    /// Lost something (quarantined shard out of respawns, dropped
    /// connection).
    Error,
}

impl std::fmt::Display for DiagLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DiagLevel::Debug => "DEBUG",
            DiagLevel::Info => "INFO",
            DiagLevel::Warn => "WARN",
            DiagLevel::Error => "ERROR",
        })
    }
}

/// Milli-tokens per line, so refill arithmetic stays integral.
const LINE_COST: u64 = 1000;

#[derive(Debug)]
struct DiagState {
    /// Available budget in milli-tokens, capped at `burst * LINE_COST`.
    tokens: u64,
    last_refill: Instant,
    suppressed: u64,
    emitted: u64,
    /// `Some` = capture lines for tests; `None` = write to stderr.
    buffer: Option<Vec<String>>,
}

/// A token-bucket rate-limited log: `burst` lines may be emitted
/// back-to-back, refilling at `per_sec` lines per second.
#[derive(Debug)]
pub struct DiagLog {
    burst: u64,
    per_sec: u64,
    state: Mutex<DiagState>,
}

impl DiagLog {
    /// A stderr-backed log allowing `burst` immediate lines, refilling
    /// at `per_sec` lines per second (both min 1).
    pub fn new(burst: u64, per_sec: u64) -> DiagLog {
        DiagLog::build(burst, per_sec, None)
    }

    /// A capturing log for tests: lines accumulate in memory and are
    /// read back with [`DiagLog::drain`].
    pub fn buffered(burst: u64, per_sec: u64) -> DiagLog {
        DiagLog::build(burst, per_sec, Some(Vec::new()))
    }

    fn build(burst: u64, per_sec: u64, buffer: Option<Vec<String>>) -> DiagLog {
        let burst = burst.max(1);
        DiagLog {
            burst,
            per_sec: per_sec.max(1),
            state: Mutex::new(DiagState {
                tokens: burst * LINE_COST,
                last_refill: Instant::now(),
                suppressed: 0,
                emitted: 0,
                buffer,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, DiagState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Emits one line, or suppresses it when the bucket is empty.
    /// Returns `true` when the line was emitted.
    pub fn log(&self, level: DiagLevel, component: &str, message: &str) -> bool {
        let mut state = self.lock();
        // Refill: per_sec lines/sec = per_sec milli-tokens per ms.
        let now = Instant::now();
        let elapsed_ms = now.duration_since(state.last_refill).as_millis() as u64;
        if elapsed_ms > 0 {
            state.tokens = (state.tokens + elapsed_ms * self.per_sec).min(self.burst * LINE_COST);
            state.last_refill = now;
        }
        if state.tokens < LINE_COST {
            state.suppressed += 1;
            return false;
        }
        state.tokens -= LINE_COST;
        state.emitted += 1;
        let backlog = if state.suppressed > 0 {
            let note = format!(" ({} suppressed)", state.suppressed);
            state.suppressed = 0;
            note
        } else {
            String::new()
        };
        let line = format!("[{level}] {component}: {message}{backlog}");
        match &mut state.buffer {
            Some(lines) => lines.push(line),
            None => eprintln!("hth: {line}"),
        }
        true
    }

    /// Lines emitted so far.
    pub fn emitted(&self) -> u64 {
        self.lock().emitted
    }

    /// Lines currently suppressed and not yet acknowledged.
    pub fn suppressed(&self) -> u64 {
        self.lock().suppressed
    }

    /// Takes the captured lines (buffered logs only; empty otherwise).
    pub fn drain(&self) -> Vec<String> {
        self.lock().buffer.as_mut().map(std::mem::take).unwrap_or_default()
    }
}

/// The process-wide diagnostics log every failure path shares: 32-line
/// burst, 8 lines/second sustained, to stderr.
pub fn global() -> &'static DiagLog {
    static GLOBAL: std::sync::OnceLock<DiagLog> = std::sync::OnceLock::new();
    GLOBAL.get_or_init(|| DiagLog::new(32, 8))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_suppression_then_acknowledgement() {
        let log = DiagLog::buffered(2, 1);
        assert!(log.log(DiagLevel::Warn, "pool.shard0", "first"));
        assert!(log.log(DiagLevel::Error, "pool.shard0", "second"));
        // Bucket empty: these are suppressed (refill is 1/s; the test
        // finishes in microseconds).
        assert!(!log.log(DiagLevel::Warn, "pool.shard0", "third"));
        assert!(!log.log(DiagLevel::Warn, "pool.shard0", "fourth"));
        assert_eq!(log.suppressed(), 2);
        assert_eq!(log.emitted(), 2);
        let lines = log.drain();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], "[WARN] pool.shard0: first");
        assert_eq!(lines[1], "[ERROR] pool.shard0: second");
        // Hand the bucket a token and the next line acknowledges the
        // backlog.
        log.lock().tokens = LINE_COST;
        assert!(log.log(DiagLevel::Warn, "serve.table", "fifth"));
        assert_eq!(log.suppressed(), 0);
        let lines = log.drain();
        assert_eq!(lines, vec!["[WARN] serve.table: fifth (2 suppressed)".to_string()]);
    }

    #[test]
    fn refill_is_capped_at_burst() {
        let log = DiagLog::buffered(3, 1000);
        for _ in 0..3 {
            assert!(log.log(DiagLevel::Info, "c", "m"));
        }
        // Simulate a long idle period: refill must cap at burst, not
        // accumulate unboundedly.
        {
            let mut state = log.lock();
            state.last_refill = Instant::now() - std::time::Duration::from_secs(60);
        }
        for _ in 0..3 {
            assert!(log.log(DiagLevel::Info, "c", "m"));
        }
        assert!(!log.log(DiagLevel::Info, "c", "m"), "only burst-many tokens refilled");
    }

    #[test]
    fn level_rendering() {
        let log = DiagLog::buffered(8, 8);
        log.log(DiagLevel::Debug, "x", "d");
        log.log(DiagLevel::Info, "x", "i");
        log.log(DiagLevel::Warn, "x", "w");
        log.log(DiagLevel::Error, "x", "e");
        let lines = log.drain();
        assert_eq!(lines[0], "[DEBUG] x: d");
        assert_eq!(lines[1], "[INFO] x: i");
        assert_eq!(lines[2], "[WARN] x: w");
        assert_eq!(lines[3], "[ERROR] x: e");
    }
}
