//! Span/instant tracing into per-thread ring buffers.
//!
//! Design constraints, in order:
//!
//! 1. **Disabled means free.** Every emit site first does one relaxed
//!    atomic load; when tracing is off nothing else happens. The flag is
//!    process-global, flipped by [`set_enabled`].
//! 2. **Bounded memory.** Each thread owns a fixed-capacity
//!    [`RingBuffer`]; at capacity the *oldest* event is overwritten, so
//!    a drain always yields the most recent window per thread (the
//!    interesting tail of a long run), with an exact overwrite count.
//! 3. **No cross-thread contention on the hot path.** A thread only
//!    ever locks its own buffer; the collector takes the same lock per
//!    buffer only while draining.
//!
//! [`drain`] collects every thread's events into a [`TraceLog`] whose
//! [`TraceLog::to_chrome_json`] output loads directly in
//! `chrome://tracing` / Perfetto (Chrome `trace_event` array format,
//! microsecond timestamps).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// Default per-thread buffer capacity, in events.
pub const DEFAULT_CAPACITY: usize = 16 * 1024;

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static REGISTRY: Mutex<Vec<Arc<Mutex<RingBuffer>>>> = Mutex::new(Vec::new());
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Turns event collection on or off, process-wide.
pub fn set_enabled(on: bool) {
    // Pin the epoch before the first event can be recorded so
    // timestamps are monotonic from the moment tracing starts.
    let _ = EPOCH.get_or_init(Instant::now);
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether tracing is currently collecting events. This is the entire
/// disabled-path cost of an instrumentation site.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn now_micros() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// Chrome `trace_event` phase of one event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Span start (`"B"`).
    Begin,
    /// Span end (`"E"`).
    End,
    /// Point-in-time marker (`"i"`).
    Instant,
}

impl Phase {
    fn code(self) -> &'static str {
        match self {
            Phase::Begin => "B",
            Phase::End => "E",
            Phase::Instant => "i",
        }
    }
}

/// One recorded event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Static site name (e.g. `"secpert.process_event"`).
    pub name: &'static str,
    /// Span begin/end or instant.
    pub phase: Phase,
    /// Microseconds since the tracing epoch.
    pub ts: u64,
    /// Recording thread (small dense ids, assigned on first emit).
    pub tid: u64,
}

/// Fixed-capacity event buffer: at capacity, pushes overwrite the
/// oldest event and bump the overwrite counter. Draining yields the
/// surviving events oldest-first — always the *last* `capacity` pushes.
#[derive(Debug)]
pub struct RingBuffer {
    deque: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
    tid: u64,
}

impl RingBuffer {
    /// Creates an empty buffer holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> RingBuffer {
        assert!(capacity > 0, "a ring buffer needs room for at least one event");
        RingBuffer { deque: VecDeque::with_capacity(capacity), capacity, dropped: 0, tid: 0 }
    }

    /// Appends one event, evicting the oldest at capacity.
    pub fn push(&mut self, event: TraceEvent) {
        if self.deque.len() == self.capacity {
            self.deque.pop_front();
            self.dropped += 1;
        }
        self.deque.push_back(event);
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.deque.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.deque.is_empty()
    }

    /// Takes all buffered events (oldest first) and the count of events
    /// overwritten since the last drain.
    pub fn drain(&mut self) -> (Vec<TraceEvent>, u64) {
        let events = self.deque.drain(..).collect();
        let dropped = std::mem::take(&mut self.dropped);
        (events, dropped)
    }
}

thread_local! {
    static LOCAL: Arc<Mutex<RingBuffer>> = {
        let mut buffer = RingBuffer::new(DEFAULT_CAPACITY);
        buffer.tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        let shared = Arc::new(Mutex::new(buffer));
        REGISTRY.lock().unwrap_or_else(PoisonError::into_inner).push(Arc::clone(&shared));
        shared
    };
}

fn emit(name: &'static str, phase: Phase) {
    let ts = now_micros();
    LOCAL.with(|local| {
        let mut buffer = local.lock().unwrap_or_else(PoisonError::into_inner);
        let tid = buffer.tid;
        buffer.push(TraceEvent { name, phase, ts, tid });
    });
}

/// Records an instant event (when tracing is enabled).
#[inline]
pub fn instant(name: &'static str) {
    if enabled() {
        emit(name, Phase::Instant);
    }
}

/// Starts a span: records a begin event now and an end event when the
/// returned guard drops. When tracing is disabled this is one relaxed
/// load and the guard is inert.
#[inline]
pub fn span(name: &'static str) -> Span {
    let armed = enabled();
    if armed {
        emit(name, Phase::Begin);
    }
    Span { name, armed }
}

/// Guard returned by [`span`]; records the span end on drop.
#[must_use = "a span measures until the guard drops"]
pub struct Span {
    name: &'static str,
    armed: bool,
}

impl Drop for Span {
    fn drop(&mut self) {
        // Balance the begin even if tracing was disabled mid-span —
        // unmatched "B" events confuse trace viewers.
        if self.armed {
            emit(self.name, Phase::End);
        }
    }
}

/// Everything the collector drained: all threads' events merged in
/// timestamp order, plus the total overwrite count.
#[derive(Clone, Debug, Default)]
pub struct TraceLog {
    /// Events from every thread, sorted by timestamp (per-thread order
    /// preserved among equal timestamps).
    pub events: Vec<TraceEvent>,
    /// Events lost to ring-buffer overwrites since the previous drain.
    pub dropped: u64,
}

impl TraceLog {
    /// Renders the Chrome `trace_event` JSON object format. The output
    /// loads as-is in `chrome://tracing` and Perfetto.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 64);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (i, event) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":\"");
            escape_into(event.name, &mut out);
            out.push_str("\",\"cat\":\"hth\",\"ph\":\"");
            out.push_str(event.phase.code());
            out.push('"');
            if event.phase == Phase::Instant {
                out.push_str(",\"s\":\"t\"");
            }
            out.push_str(&format!(",\"ts\":{},\"pid\":1,\"tid\":{}}}", event.ts, event.tid));
        }
        out.push_str("]}");
        out
    }
}

fn escape_into(text: &str, out: &mut String) {
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Drains every thread's ring buffer into one merged [`TraceLog`].
/// Buffers of exited threads are included (the registry keeps them
/// alive), so draining after worker joins loses nothing.
pub fn drain() -> TraceLog {
    let buffers: Vec<Arc<Mutex<RingBuffer>>> =
        REGISTRY.lock().unwrap_or_else(PoisonError::into_inner).clone();
    let mut log = TraceLog::default();
    for shared in buffers {
        let (events, dropped) = shared.lock().unwrap_or_else(PoisonError::into_inner).drain();
        log.events.extend(events);
        log.dropped += dropped;
    }
    log.events.sort_by_key(|e| e.ts);
    log
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(n: u64) -> TraceEvent {
        TraceEvent { name: "t", phase: Phase::Instant, ts: n, tid: 0 }
    }

    /// The enabled flag and the registry are process-global; tests that
    /// toggle or drain them must not interleave.
    fn exclusive() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        GUARD.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn ring_keeps_the_last_capacity_events() {
        let mut ring = RingBuffer::new(3);
        for i in 0..10 {
            ring.push(ev(i));
        }
        let (events, dropped) = ring.drain();
        assert_eq!(events.iter().map(|e| e.ts).collect::<Vec<_>>(), vec![7, 8, 9]);
        assert_eq!(dropped, 7);
        let (events, dropped) = ring.drain();
        assert!(events.is_empty());
        assert_eq!(dropped, 0);
    }

    #[test]
    fn disabled_tracing_records_nothing() {
        let _x = exclusive();
        set_enabled(false);
        instant("test.noop");
        let _span = span("test.noop-span");
        // Cannot assert global buffer emptiness (other tests share the
        // process); assert via the guard state instead.
        assert!(!_span.armed);
    }

    #[test]
    fn spans_balance_and_export_as_chrome_json() {
        let _x = exclusive();
        set_enabled(true);
        {
            let _s = span("test.outer");
            instant("test.mark");
        }
        set_enabled(false);
        let log = drain();
        let begins = log.events.iter().filter(|e| e.name == "test.outer").count();
        assert_eq!(begins, 2, "begin + end: {:?}", log.events);
        assert!(log.events.iter().any(|e| e.name == "test.mark" && e.phase == Phase::Instant));
        let json = log.to_chrome_json();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"B\"") && json.contains("\"ph\":\"E\""), "{json}");
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn span_end_survives_mid_span_disable() {
        let _x = exclusive();
        set_enabled(true);
        let s = span("test.cut");
        set_enabled(false);
        drop(s);
        let log = drain();
        let phases: Vec<Phase> =
            log.events.iter().filter(|e| e.name == "test.cut").map(|e| e.phase).collect();
        assert!(phases.contains(&Phase::End), "{phases:?}");
    }

    #[test]
    fn json_escapes_quotes_and_controls() {
        let mut out = String::new();
        escape_into("a\"b\\c\nd", &mut out);
        assert_eq!(out, "a\\\"b\\\\c\\u000ad");
    }
}
