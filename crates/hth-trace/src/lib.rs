//! # hth-trace — observability plumbing for the HTH pipeline
//!
//! Three small, dependency-free pillars shared by every other crate:
//!
//! * **Tracing** ([`trace`]): span/instant events pushed into per-thread
//!   fixed-capacity ring buffers behind a single atomic enabled flag.
//!   The disabled path is one relaxed load; a collector drains every
//!   thread's buffer and exports Chrome `trace_event` JSON that loads in
//!   `chrome://tracing` and Perfetto.
//! * **Metrics** ([`metrics`]): named counters, gauges and log-bucketed
//!   histograms with point-in-time snapshots, snapshot deltas, and a
//!   Prometheus-style text exposition. The per-subsystem stat structs
//!   (`TaintStats`, `MatchStats`, shard/pool/fleet counters) all fold
//!   into one [`MetricsSnapshot`] describing a whole run.
//!
//! The third pillar — warning provenance — lives in `hth-core`, where
//! the `Warning` type is defined; this crate stays at the bottom of the
//! dependency DAG so every layer can emit spans and metrics.

#![warn(missing_docs)]

pub mod metrics;
pub mod trace;

pub use metrics::{global as global_metrics, Histogram, MetricsSnapshot, Registry};
pub use trace::{
    drain, enabled, instant, set_enabled, span, Phase, RingBuffer, Span, TraceEvent, TraceLog,
};
