//! # hth-trace — observability plumbing for the HTH pipeline
//!
//! Three small, dependency-free pillars shared by every other crate:
//!
//! * **Tracing** ([`trace`]): span/instant events pushed into per-thread
//!   fixed-capacity ring buffers behind a single atomic enabled flag.
//!   The disabled path is one relaxed load; a collector drains every
//!   thread's buffer and exports Chrome `trace_event` JSON that loads in
//!   `chrome://tracing` and Perfetto.
//! * **Metrics** ([`metrics`]): named counters, gauges and log-bucketed
//!   histograms with point-in-time snapshots, snapshot deltas, and a
//!   Prometheus-style text exposition. The per-subsystem stat structs
//!   (`TaintStats`, `MatchStats`, shard/pool/fleet counters) all fold
//!   into one [`MetricsSnapshot`] describing a whole run.
//! * **Flight recorder** ([`flight`]): an *always-on* bounded ring of
//!   recent events and coarse stage timings — independent of the
//!   tracer's enabled gate — snapshotted into serializable
//!   [`DiagnosticBundle`]s when a trigger fires (warning, quarantine,
//!   restore fallback, protocol drop, watchdog).
//! * **Diagnostics log** ([`diag`]): structured `level + component +
//!   message` lines through a token-bucket rate limit, giving the
//!   previously-silent failure paths a bounded voice.
//!
//! The remaining pillar — warning provenance — lives in `hth-core`,
//! where the `Warning` type is defined; this crate stays at the bottom
//! of the dependency DAG so every layer can emit spans and metrics.

#![warn(missing_docs)]

pub mod diag;
pub mod flight;
pub mod metrics;
pub mod trace;

pub use diag::{global as global_diag, DiagLevel, DiagLog};
pub use flight::{
    BundleRing, DiagnosticBundle, FlightEntry, FlightEntryArgs, FlightRecorder, SmallStr, Trigger,
    DEFAULT_BUNDLE_RETENTION, DEFAULT_FLIGHT_CAPACITY,
};
pub use metrics::{global as global_metrics, Histogram, MetricsSnapshot, Registry};
pub use trace::{
    drain, enabled, instant, set_enabled, span, Phase, RingBuffer, Span, TraceEvent, TraceLog,
};
