//! Always-on flight recorder and diagnostic bundles.
//!
//! The opt-in tracer ([`crate::trace`]) answers "how fast was it?" when
//! someone thought to turn it on. This module answers "what was the
//! system doing?" at the moment something went wrong — and it is always
//! on, independent of the tracer's `ENABLED` gate, so the evidence
//! exists *before* anyone knew they would need it.
//!
//! A [`FlightRecorder`] is a bounded ring of compact [`FlightEntry`]
//! records (recent decoded events, faults, requests) plus coarse
//! per-stage timing accumulators. Recording is allocation-free: entries
//! hold fixed-capacity inline strings ([`SmallStr`]), so the hot path
//! pays one uncontended mutex and a memcpy. Each shard of an analyst
//! pool and each serve-daemon table owns its own recorder, so there is
//! no cross-thread contention.
//!
//! When a trigger fires — a high-severity warning, a shard quarantine,
//! a torn-snapshot fallback, a protocol drop, or a watchdog deadline
//! ([`Trigger`]) — the owner snapshots the ring together with its
//! current stats into a [`DiagnosticBundle`]: the event tail, stage
//! timings, a metrics snapshot plus the delta since the previous
//! capture, and the triggering warning's rendered provenance. Bundles
//! are retained in a bounded [`BundleRing`] (fetchable over the serve
//! daemon's `/bundles/<n>` endpoint, dumpable to disk as JSON).
//!
//! [`DiagnosticBundle::render`] is deliberately restricted to the
//! deterministic fields (trigger, event tail, provenance) so that a
//! seeded chaos run renders byte-identically across runs; the JSON form
//! ([`DiagnosticBundle::to_json`]) carries everything, timings
//! included.

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, PoisonError};

use crate::metrics::MetricsSnapshot;

/// A fixed-capacity inline string: the flight recorder's hot path must
/// not allocate, so labels and details are truncated into these.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SmallStr {
    len: u8,
    bytes: [u8; SmallStr::CAP],
}

impl SmallStr {
    /// Inline capacity in bytes; longer strings are truncated at a
    /// character boundary.
    pub const CAP: usize = 46;

    /// Copies (at most [`SmallStr::CAP`] bytes of) `s` inline.
    pub fn new(s: &str) -> SmallStr {
        let mut end = s.len().min(SmallStr::CAP);
        while !s.is_char_boundary(end) {
            end -= 1;
        }
        let mut bytes = [0u8; SmallStr::CAP];
        bytes[..end].copy_from_slice(&s.as_bytes()[..end]);
        SmallStr { len: end as u8, bytes }
    }

    /// The stored prefix.
    pub fn as_str(&self) -> &str {
        // Construction only ever stores a UTF-8 prefix cut at a char
        // boundary, so this cannot fail.
        std::str::from_utf8(&self.bytes[..self.len as usize]).unwrap_or("")
    }
}

impl std::fmt::Display for SmallStr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::fmt::Debug for SmallStr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

/// One recorded moment: an event analyzed, a request served, a fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlightEntry {
    /// Recorder-local ordinal, 1-based; the nth thing this recorder saw.
    pub seq: u64,
    /// Session the entry belongs to (0 when not applicable).
    pub session: u64,
    /// Virtual time of the event (0 when not applicable).
    pub time: u64,
    /// Entry class: `"event"`, `"warning"`, `"fault"`, `"request"`, …
    pub kind: &'static str,
    /// Short label — typically the syscall or request name.
    pub label: SmallStr,
    /// Short detail — typically the resource or message.
    pub detail: SmallStr,
}

impl FlightEntry {
    fn render_line(&self) -> String {
        format!(
            "seq {} session {} time {} {} {} {}",
            self.seq, self.session, self.time, self.kind, self.label, self.detail
        )
    }
}

/// What fired a bundle capture. The taxonomy is pinned in DESIGN.md
/// §8.1; every variant names enough context to find the culprit without
/// the bundle (the bundle adds the surrounding evidence).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Trigger {
    /// A high-severity warning fired.
    Warning {
        /// Rule that fired.
        rule: String,
        /// Rendered severity (`HIGH`, …).
        severity: String,
    },
    /// A pool shard died and was quarantined.
    Quarantine {
        /// Faulted shard index.
        shard: usize,
        /// 1-based ordinal of the event that killed it.
        event_nth: u64,
        /// Panic / failure message.
        message: String,
    },
    /// A torn snapshot forced a full journal replay on session revival.
    RestoreFallback {
        /// Session whose snapshot was unusable.
        session: u64,
    },
    /// A protocol error dropped a connection.
    ProtocolDrop {
        /// The decode / framing error.
        error: String,
    },
    /// A batch or request exceeded the configured latency deadline.
    Watchdog {
        /// Observed service time in microseconds.
        elapsed_us: u64,
        /// The configured deadline in microseconds.
        deadline_us: u64,
    },
}

impl Trigger {
    /// Stable lowercase kind tag (used in JSON and the bundle index).
    pub fn kind(&self) -> &'static str {
        match self {
            Trigger::Warning { .. } => "warning",
            Trigger::Quarantine { .. } => "quarantine",
            Trigger::RestoreFallback { .. } => "restore_fallback",
            Trigger::ProtocolDrop { .. } => "protocol_drop",
            Trigger::Watchdog { .. } => "watchdog",
        }
    }

    /// One-line human description.
    pub fn detail(&self) -> String {
        match self {
            Trigger::Warning { rule, severity } => format!("[{severity}] {rule}"),
            Trigger::Quarantine { shard, event_nth, message } => {
                format!("shard {shard} event {event_nth}: {message}")
            }
            Trigger::RestoreFallback { session } => {
                format!("session {session}: torn snapshot, full replay")
            }
            Trigger::ProtocolDrop { error } => format!("connection dropped: {error}"),
            Trigger::Watchdog { elapsed_us, deadline_us } => {
                format!("{elapsed_us}us service time exceeded {deadline_us}us deadline")
            }
        }
    }

    fn json_fields(&self, out: &mut String) {
        match self {
            Trigger::Warning { rule, severity } => {
                let _ = write!(out, ",\"rule\":{},\"severity\":{}", quote(rule), quote(severity));
            }
            Trigger::Quarantine { shard, event_nth, message } => {
                let _ = write!(
                    out,
                    ",\"shard\":{shard},\"event_nth\":{event_nth},\"message\":{}",
                    quote(message)
                );
            }
            Trigger::RestoreFallback { session } => {
                let _ = write!(out, ",\"session\":{session}");
            }
            Trigger::ProtocolDrop { error } => {
                let _ = write!(out, ",\"error\":{}", quote(error));
            }
            Trigger::Watchdog { elapsed_us, deadline_us } => {
                let _ = write!(out, ",\"elapsed_us\":{elapsed_us},\"deadline_us\":{deadline_us}");
            }
        }
    }
}

/// Cumulative coarse timing for one pipeline stage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct StageTiming {
    batches: u64,
    nanos: u64,
}

#[derive(Debug)]
struct FlightState {
    ring: VecDeque<FlightEntry>,
    seq: u64,
    overwritten: u64,
    stages: BTreeMap<&'static str, StageTiming>,
    last_stats: MetricsSnapshot,
    captures: u64,
}

/// A bounded, always-on ring of recent [`FlightEntry`] records plus
/// coarse stage timings. One per shard / per table; see the module
/// docs for the overhead budget.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    state: Mutex<FlightState>,
}

/// Default ring capacity: enough tail to see what led up to a fault,
/// small enough that a ring costs ~30 KiB.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder::new(DEFAULT_FLIGHT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder retaining the last `capacity` entries (min 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            capacity,
            state: Mutex::new(FlightState {
                ring: VecDeque::with_capacity(capacity),
                seq: 0,
                overwritten: 0,
                stages: BTreeMap::new(),
                last_stats: MetricsSnapshot::new(),
                captures: 0,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FlightState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn push_locked(state: &mut FlightState, capacity: usize, entry: FlightEntryArgs<'_>) {
        state.seq += 1;
        if state.ring.len() == capacity {
            state.ring.pop_front();
            state.overwritten += 1;
        }
        state.ring.push_back(FlightEntry {
            seq: state.seq,
            session: entry.session,
            time: entry.time,
            kind: entry.kind,
            label: SmallStr::new(entry.label),
            detail: SmallStr::new(entry.detail),
        });
    }

    /// Records one entry. Allocation-free; one uncontended mutex.
    pub fn record(&self, session: u64, time: u64, kind: &'static str, label: &str, detail: &str) {
        let mut state = self.lock();
        FlightRecorder::push_locked(
            &mut state,
            self.capacity,
            FlightEntryArgs { session, time, kind, label, detail },
        );
    }

    /// Records a run of entries under one lock (the batched hot path).
    pub fn record_batch<'a>(&self, entries: impl Iterator<Item = FlightEntryArgs<'a>>) {
        let mut state = self.lock();
        for entry in entries {
            FlightRecorder::push_locked(&mut state, self.capacity, entry);
        }
    }

    /// Accumulates coarse timing for a named stage (call per batch, not
    /// per event — the point is attribution, not precision).
    pub fn stage(&self, stage: &'static str, nanos: u64) {
        let mut state = self.lock();
        let timing = state.stages.entry(stage).or_default();
        timing.batches += 1;
        timing.nanos += nanos;
    }

    /// Total entries ever recorded (the seq of the newest entry).
    pub fn recorded(&self) -> u64 {
        self.lock().seq
    }

    /// The retained tail, oldest first.
    pub fn tail(&self) -> Vec<FlightEntry> {
        self.lock().ring.iter().copied().collect()
    }

    /// Snapshots the ring and stats into a [`DiagnosticBundle`]. The
    /// bundle's `delta` is `stats` minus the `stats` of this recorder's
    /// previous capture (or empty at the first capture).
    pub fn capture(
        &self,
        component: &str,
        trigger: Trigger,
        stats: MetricsSnapshot,
        provenance: Vec<String>,
    ) -> DiagnosticBundle {
        let mut state = self.lock();
        let delta = stats.delta(&state.last_stats);
        state.last_stats = stats.clone();
        state.captures += 1;
        DiagnosticBundle {
            id: state.captures - 1,
            component: component.to_string(),
            trigger,
            events: state.ring.iter().copied().collect(),
            events_overwritten: state.overwritten,
            stages: state
                .stages
                .iter()
                .map(|(name, t)| (name.to_string(), t.batches, t.nanos))
                .collect(),
            stats,
            delta,
            provenance,
        }
    }
}

/// Arguments for one recorded entry (what [`FlightRecorder::record`]
/// takes, named so batched callers can build them inline).
#[derive(Clone, Copy, Debug)]
pub struct FlightEntryArgs<'a> {
    /// Session the entry belongs to (0 when not applicable).
    pub session: u64,
    /// Virtual time of the event (0 when not applicable).
    pub time: u64,
    /// Entry class: `"event"`, `"warning"`, `"fault"`, `"request"`, …
    pub kind: &'static str,
    /// Short label — typically the syscall or request name.
    pub label: &'a str,
    /// Short detail — typically the resource or message.
    pub detail: &'a str,
}

/// Everything known at the moment a trigger fired, serializable and
/// ring-retained. See the module docs for the render/JSON determinism
/// split.
#[derive(Clone, Debug, PartialEq)]
pub struct DiagnosticBundle {
    /// Ordinal. Assigned per recorder at capture; re-assigned to the
    /// retention-ring ordinal when pushed into a [`BundleRing`].
    pub id: u64,
    /// Who captured it (`pool.shard3`, `serve.table`, …).
    pub component: String,
    /// What fired the capture.
    pub trigger: Trigger,
    /// The ring tail at capture time, oldest first.
    pub events: Vec<FlightEntry>,
    /// Entries lost to ring overwrite before the capture.
    pub events_overwritten: u64,
    /// Coarse stage timings: `(stage, batches, cumulative nanos)`.
    pub stages: Vec<(String, u64, u64)>,
    /// Full metrics snapshot at capture time.
    pub stats: MetricsSnapshot,
    /// `stats` minus the previous capture's snapshot.
    pub delta: MetricsSnapshot,
    /// Rendered provenance of the triggering warning (empty when the
    /// trigger carries no warning).
    pub provenance: Vec<String>,
}

impl DiagnosticBundle {
    /// One index line: `#id kind (component): detail`.
    pub fn summary(&self) -> String {
        format!(
            "#{} {} ({}): {}",
            self.id,
            self.trigger.kind(),
            self.component,
            self.trigger.detail()
        )
    }

    /// Deterministic rendering: trigger, event tail, provenance — no
    /// timings, no stats, so a seeded run renders byte-identically.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "diagnostic bundle: {} ({})", self.trigger.kind(), self.component);
        let _ = writeln!(out, "  trigger: {}", self.trigger.detail());
        let _ = writeln!(
            out,
            "  events: {} retained, {} overwritten",
            self.events.len(),
            self.events_overwritten
        );
        for entry in &self.events {
            let _ = writeln!(out, "    {}", entry.render_line());
        }
        if !self.provenance.is_empty() {
            let _ = writeln!(out, "  provenance:");
            for line in &self.provenance {
                let _ = writeln!(out, "    {line}");
            }
        }
        out
    }

    /// The full bundle as JSON (hand-rolled; the workspace is
    /// dependency-free). Includes the nondeterministic timings.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push('{');
        let _ = write!(out, "\"id\":{},\"component\":{},", self.id, quote(&self.component));
        let _ = write!(out, "\"trigger\":{{\"kind\":{}", quote(self.trigger.kind()));
        self.trigger.json_fields(&mut out);
        let _ = write!(out, ",\"detail\":{}}},", quote(&self.trigger.detail()));
        out.push_str("\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"seq\":{},\"session\":{},\"time\":{},\"kind\":{},\"label\":{},\"detail\":{}}}",
                e.seq,
                e.session,
                e.time,
                quote(e.kind),
                quote(e.label.as_str()),
                quote(e.detail.as_str())
            );
        }
        let _ = write!(out, "],\"events_overwritten\":{},", self.events_overwritten);
        out.push_str("\"stages\":{");
        for (i, (name, batches, nanos)) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{{\"batches\":{batches},\"nanos\":{nanos}}}", quote(name));
        }
        out.push_str("},");
        write_metrics_json(&mut out, "stats", &self.stats);
        out.push(',');
        write_metrics_json(&mut out, "delta", &self.delta);
        out.push_str(",\"provenance\":[");
        for (i, line) in self.provenance.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&quote(line));
        }
        out.push_str("]}");
        out
    }
}

fn write_metrics_json(out: &mut String, key: &str, metrics: &MetricsSnapshot) {
    let _ = write!(out, "{}:{{\"counters\":{{", quote(key));
    for (i, (name, value)) in metrics.counters().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{value}", quote(name));
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, value)) in metrics.gauges().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{value}", quote(name));
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, histogram)) in metrics.histograms().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{}:{{\"count\":{},\"sum\":{},\"p50\":{},\"p99\":{}}}",
            quote(name),
            histogram.count(),
            histogram.sum(),
            histogram.quantile(0.50),
            histogram.quantile(0.99)
        );
    }
    out.push_str("}}");
}

/// JSON string escaping for the hand-rolled serializers.
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Bounded retention of captured bundles, oldest evicted first. Shared
/// (`Arc`) between the capturing components and whoever serves or dumps
/// them.
#[derive(Debug)]
pub struct BundleRing {
    capacity: usize,
    state: Mutex<BundleRingState>,
}

#[derive(Debug)]
struct BundleRingState {
    ring: VecDeque<Arc<DiagnosticBundle>>,
    total: u64,
}

/// Default bundle retention.
pub const DEFAULT_BUNDLE_RETENTION: usize = 16;

impl Default for BundleRing {
    fn default() -> BundleRing {
        BundleRing::new(DEFAULT_BUNDLE_RETENTION)
    }
}

impl BundleRing {
    /// A ring retaining the last `capacity` bundles (min 1).
    pub fn new(capacity: usize) -> BundleRing {
        BundleRing {
            capacity: capacity.max(1),
            state: Mutex::new(BundleRingState { ring: VecDeque::new(), total: 0 }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BundleRingState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Retains `bundle`, re-assigning its `id` to the ring-wide capture
    /// ordinal (what `/bundles/<n>` indexes). Returns the retained
    /// bundle.
    pub fn push(&self, mut bundle: DiagnosticBundle) -> Arc<DiagnosticBundle> {
        let mut state = self.lock();
        bundle.id = state.total;
        state.total += 1;
        let bundle = Arc::new(bundle);
        if state.ring.len() == self.capacity {
            state.ring.pop_front();
        }
        state.ring.push_back(Arc::clone(&bundle));
        bundle
    }

    /// Bundles ever captured (retained or not).
    pub fn total(&self) -> u64 {
        self.lock().total
    }

    /// The bundle with ring-wide id `id`, if still retained.
    pub fn get(&self, id: u64) -> Option<Arc<DiagnosticBundle>> {
        self.lock().ring.iter().find(|b| b.id == id).cloned()
    }

    /// All retained bundles, oldest first.
    pub fn list(&self) -> Vec<Arc<DiagnosticBundle>> {
        self.lock().ring.iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_str_truncates_at_char_boundary() {
        assert_eq!(SmallStr::new("abc").as_str(), "abc");
        let long = "x".repeat(SmallStr::CAP + 10);
        assert_eq!(SmallStr::new(&long).as_str().len(), SmallStr::CAP);
        // A multi-byte char straddling the cap is dropped, not split.
        let tricky = format!("{}é", "a".repeat(SmallStr::CAP - 1));
        let stored = SmallStr::new(&tricky);
        assert_eq!(stored.as_str(), &tricky[..SmallStr::CAP - 1]);
    }

    #[test]
    fn ring_retains_tail_and_counts_overwrites() {
        let recorder = FlightRecorder::new(4);
        for i in 0..10u64 {
            recorder.record(1, i, "event", "SYS_open", &format!("/tmp/{i}"));
        }
        assert_eq!(recorder.recorded(), 10);
        let tail = recorder.tail();
        assert_eq!(tail.len(), 4);
        assert_eq!(tail.first().unwrap().seq, 7);
        assert_eq!(tail.last().unwrap().seq, 10);
        assert_eq!(tail.last().unwrap().detail.as_str(), "/tmp/9");
        let bundle = recorder.capture(
            "test",
            Trigger::ProtocolDrop { error: "torn frame".into() },
            MetricsSnapshot::new(),
            Vec::new(),
        );
        assert_eq!(bundle.events_overwritten, 6);
        assert_eq!(bundle.events.len(), 4);
    }

    #[test]
    fn capture_delta_is_since_previous_capture() {
        let recorder = FlightRecorder::new(4);
        let mut stats = MetricsSnapshot::new();
        stats.add_counter("hth_x", 5);
        let first = recorder.capture(
            "c",
            Trigger::RestoreFallback { session: 1 },
            stats.clone(),
            Vec::new(),
        );
        assert_eq!(first.delta.counter("hth_x"), 5);
        stats.add_counter("hth_x", 3);
        let second = recorder.capture(
            "c",
            Trigger::RestoreFallback { session: 1 },
            stats.clone(),
            Vec::new(),
        );
        assert_eq!(second.delta.counter("hth_x"), 3);
        assert_eq!(second.stats.counter("hth_x"), 8);
    }

    #[test]
    fn bundle_json_is_parseable_shape() {
        let recorder = FlightRecorder::new(4);
        recorder.record(3, 40, "event", "SYS_open", "/etc/\"passwd\"");
        recorder.stage("pool.batch", 1234);
        let mut stats = MetricsSnapshot::new();
        stats.add_counter("hth_events", 1);
        stats.observe("hth_lat", 7);
        let bundle = recorder.capture(
            "pool.shard0",
            Trigger::Quarantine { shard: 0, event_nth: 5, message: "panic: boom".into() },
            stats,
            vec!["warning line".into()],
        );
        let json = bundle.to_json();
        assert!(json.contains("\"kind\":\"quarantine\""), "{json}");
        assert!(json.contains("\"shard\":0"), "{json}");
        assert!(json.contains("\\\"passwd\\\""), "{json}");
        assert!(json.contains("\"hth_events\":1"), "{json}");
        assert!(json.contains("\"pool.batch\""), "{json}");
        // Balanced braces/brackets outside strings — a cheap
        // well-formedness check (CI runs a real JSON parser).
        let mut depth = 0i64;
        let mut in_str = false;
        let mut esc = false;
        for c in json.chars() {
            match (in_str, esc, c) {
                (true, true, _) => esc = false,
                (true, false, '\\') => esc = true,
                (true, false, '"') => in_str = false,
                (false, _, '"') => in_str = true,
                (false, _, '{' | '[') => depth += 1,
                (false, _, '}' | ']') => depth -= 1,
                _ => {}
            }
        }
        assert_eq!(depth, 0, "unbalanced JSON: {json}");
    }

    #[test]
    fn bundle_ring_retains_and_indexes() {
        let ring = BundleRing::new(2);
        let recorder = FlightRecorder::new(4);
        for i in 0..3u64 {
            let bundle = recorder.capture(
                "c",
                Trigger::RestoreFallback { session: i },
                MetricsSnapshot::new(),
                Vec::new(),
            );
            ring.push(bundle);
        }
        assert_eq!(ring.total(), 3);
        assert!(ring.get(0).is_none(), "oldest evicted");
        assert_eq!(ring.get(1).unwrap().trigger, Trigger::RestoreFallback { session: 1 });
        assert_eq!(ring.get(2).unwrap().trigger, Trigger::RestoreFallback { session: 2 });
        let ids: Vec<u64> = ring.list().iter().map(|b| b.id).collect();
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    fn render_is_deterministic_for_same_inputs() {
        let make = || {
            let recorder = FlightRecorder::new(8);
            recorder.record(1, 10, "event", "SYS_socket", "1.2.3.4:6667");
            recorder.record(1, 11, "fault", "panic", "boom");
            recorder.stage("pool.batch", 999); // timings must not leak into render()
            recorder
                .capture(
                    "pool.shard1",
                    Trigger::Quarantine { shard: 1, event_nth: 2, message: "boom".into() },
                    MetricsSnapshot::new(),
                    vec!["prov".into()],
                )
                .render()
        };
        let a = make();
        let b = make();
        assert_eq!(a, b);
        assert!(a.contains("shard 1 event 2: boom"), "{a}");
        assert!(!a.contains("999"), "timings leaked into render: {a}");
    }
}
