//! Named counters, gauges and log-bucketed histograms.
//!
//! The pipeline's subsystems each keep cheap local counters
//! (`TaintStats`, `MatchStats`, shard counters); this module gives them
//! one vocabulary to fold into. A [`MetricsSnapshot`] is a plain value:
//! mergeable across shards, subtractable for deltas, and printable in
//! the Prometheus text exposition format. A [`Registry`] wraps a
//! snapshot behind a lock for live accumulation with point-in-time
//! [`Registry::snapshot`]s.
//!
//! Naming scheme (see DESIGN.md §8): `hth_<subsystem>_<quantity>`, e.g.
//! `hth_taint_memo_hits`, `hth_match_tokens_live`, `hth_pool_dropped`.
//! Monotonic totals are counters; point-in-time levels (live tokens,
//! queue high-water) are gauges; per-item size/latency distributions
//! are histograms.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Mutex, PoisonError};

/// Number of log2 buckets: bucket `k` holds values `v` with
/// `bit_length(v) == k`, i.e. `2^(k-1) <= v < 2^k` (bucket 0 holds 0).
const BUCKETS: usize = 65;

/// A histogram over `u64` observations with power-of-two buckets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram { buckets: [0; BUCKETS], count: 0, sum: 0 }
    }
}

impl Histogram {
    fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        self.buckets[Histogram::bucket_of(value)] += 1;
        self.count += 1;
        self.sum += value;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Adds another histogram's observations into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// An upper bound on the `q`-quantile observation (`0.0..=1.0`):
    /// the inclusive top of the power-of-two bucket the quantile lands
    /// in. Coarse (a factor of two) but monotone and allocation-free —
    /// what latency reports (`p50`, `p99`) want from a log histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (k, count) in self.buckets.iter().enumerate() {
            cumulative += count;
            if cumulative >= rank {
                return if k == 0 { 0 } else { ((1u128 << k) - 1).min(u64::MAX as u128) as u64 };
            }
        }
        u64::MAX
    }

    /// Observations recorded since `earlier` (saturating per bucket, so
    /// a reset between snapshots degrades to the later value instead of
    /// underflowing).
    pub fn delta(&self, earlier: &Histogram) -> Histogram {
        let mut out = Histogram::default();
        for (i, (now, was)) in self.buckets.iter().zip(&earlier.buckets).enumerate() {
            out.buckets[i] = now.saturating_sub(*was);
        }
        out.count = self.count.saturating_sub(earlier.count);
        out.sum = self.sum.saturating_sub(earlier.sum);
        out
    }

    /// Renders the Prometheus histogram series for `name` into `out`.
    fn render(&self, name: &str, out: &mut String) {
        let _ = writeln!(out, "# TYPE {name} histogram");
        let top = self.buckets.iter().rposition(|&c| c > 0).unwrap_or(0);
        let mut cumulative = 0u64;
        for (k, count) in self.buckets.iter().take(top + 1).enumerate() {
            cumulative += count;
            // Bucket k's inclusive upper bound: 2^k - 1 (bucket 0 is 0).
            let le = if k == 0 { 0 } else { (1u128 << k) - 1 };
            let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", self.count);
        let _ = writeln!(out, "{name}_sum {}", self.sum);
        let _ = writeln!(out, "{name}_count {}", self.count);
    }
}

/// A point-in-time bundle of named metrics. Plain data: build it from
/// subsystem stats, [`MetricsSnapshot::merge`] across shards, diff two
/// snapshots with [`MetricsSnapshot::delta`], print it with
/// [`MetricsSnapshot::render_prometheus`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// Creates an empty snapshot.
    pub fn new() -> MetricsSnapshot {
        MetricsSnapshot::default()
    }

    /// Adds `value` to the named counter (created at zero).
    pub fn add_counter(&mut self, name: &str, value: u64) {
        *self.counters.entry(name.to_string()).or_default() += value;
    }

    /// Sets the named gauge.
    pub fn set_gauge(&mut self, name: &str, value: i64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Raises the named gauge to `value` if it is higher (high-water
    /// aggregation).
    pub fn max_gauge(&mut self, name: &str, value: i64) {
        let entry = self.gauges.entry(name.to_string()).or_insert(value);
        *entry = (*entry).max(value);
    }

    /// Records one observation in the named histogram.
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms.entry(name.to_string()).or_default().observe(value);
    }

    /// Folds a whole pre-aggregated histogram into the named histogram
    /// (created empty if absent) — for components that maintain their
    /// own [`Histogram`] and export it at snapshot time.
    pub fn merge_histogram(&mut self, name: &str, histogram: &Histogram) {
        self.histograms.entry(name.to_string()).or_default().merge(histogram);
    }

    /// Reads a counter (zero when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Reads a gauge (`None` when absent).
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// Reads a histogram (`None` when absent).
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterates all counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(name, value)| (name.as_str(), *value))
    }

    /// Iterates all gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, i64)> {
        self.gauges.iter().map(|(name, value)| (name.as_str(), *value))
    }

    /// Iterates all histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(name, histogram)| (name.as_str(), histogram))
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Folds another snapshot in: counters and histograms add, gauges
    /// add too (cross-shard gauges like `tokens_live` are population
    /// sums; use [`MetricsSnapshot::max_gauge`] at record time for
    /// high-water semantics).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_default() += value;
        }
        for (name, value) in &other.gauges {
            *self.gauges.entry(name.clone()).or_default() += value;
        }
        for (name, histogram) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(histogram);
        }
    }

    /// What happened between `earlier` and `self`: counters and
    /// histograms subtract (saturating), gauges keep their current
    /// value (a gauge *is* its point-in-time reading).
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::new();
        for (name, now) in &self.counters {
            out.counters.insert(name.clone(), now.saturating_sub(earlier.counter(name)));
        }
        for (name, now) in &self.gauges {
            out.gauges.insert(name.clone(), *now);
        }
        for (name, now) in &self.histograms {
            let diff = match earlier.histograms.get(name) {
                Some(was) => now.delta(was),
                None => now.clone(),
            };
            out.histograms.insert(name.clone(), diff);
        }
        out
    }

    /// Prometheus text exposition: `# TYPE` headers, one sample per
    /// line, names in sorted order.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, histogram) in &self.histograms {
            histogram.render(name, &mut out);
        }
        out
    }
}

/// A thread-safe live accumulator over a [`MetricsSnapshot`].
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<MetricsSnapshot>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Adds to a counter.
    pub fn add_counter(&self, name: &str, value: u64) {
        self.lock().add_counter(name, value);
    }

    /// Sets a gauge.
    pub fn set_gauge(&self, name: &str, value: i64) {
        self.lock().set_gauge(name, value);
    }

    /// Raises a gauge to `value` if higher (high-water aggregation).
    pub fn max_gauge(&self, name: &str, value: i64) {
        self.lock().max_gauge(name, value);
    }

    /// Records a histogram observation.
    pub fn observe(&self, name: &str, value: u64) {
        self.lock().observe(name, value);
    }

    /// Folds a prepared snapshot in (e.g. one shard's contribution).
    pub fn merge(&self, snapshot: &MetricsSnapshot) {
        self.lock().merge(snapshot);
    }

    /// Point-in-time copy of everything recorded so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.lock().clone()
    }

    /// Replaces the accumulated contents wholesale. For periodically
    /// re-derived snapshots (a server recomputing session metrics each
    /// scrape): merging such a snapshot would double-count its counters,
    /// so the producer swaps the whole reading in instead.
    pub fn replace(&self, snapshot: MetricsSnapshot) {
        *self.lock() = snapshot;
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MetricsSnapshot> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The process-wide metrics registry: the single source both exit-time
/// reporting (`--metrics`) and live exposition (`hth serve`'s
/// `/metrics` endpoint) read, so batch mode and serve mode cannot
/// drift. Subsystems fold their local stats in; readers render a
/// [`Registry::snapshot`].
pub fn global() -> &'static Registry {
    static GLOBAL: std::sync::OnceLock<Registry> = std::sync::OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_bit_length() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 7, 8, 1024] {
            h.observe(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 1049);
        assert_eq!(h.buckets[0], 1, "only zero");
        assert_eq!(h.buckets[1], 1, "only one");
        assert_eq!(h.buckets[2], 2, "2 and 3");
        assert_eq!(h.buckets[3], 2, "4 and 7");
        assert_eq!(h.buckets[4], 1, "8");
        assert_eq!(h.buckets[11], 1, "1024");
    }

    #[test]
    fn quantile_of_empty_histogram_is_zero() {
        let h = Histogram::default();
        for q in [0.0, 0.5, 1.0, -1.0, 2.0] {
            assert_eq!(h.quantile(q), 0);
        }
    }

    #[test]
    fn quantile_extremes_clamp_to_first_and_last_observation() {
        let mut h = Histogram::default();
        h.observe(3); // bucket 2: bound 3
        h.observe(100); // bucket 7: bound 127
        assert_eq!(h.quantile(0.0), 3, "q=0 is the lowest bucket's bound");
        assert_eq!(h.quantile(-5.0), 3, "below-range q clamps to 0");
        assert_eq!(h.quantile(1.0), 127, "q=1 is the highest bucket's bound");
        assert_eq!(h.quantile(5.0), 127, "above-range q clamps to 1");
    }

    #[test]
    fn quantile_of_single_observation_is_its_bucket_bound() {
        for (value, bound) in [(0u64, 0u64), (1, 1), (5, 7), (64, 127), (u64::MAX, u64::MAX)] {
            let mut h = Histogram::default();
            h.observe(value);
            for q in [0.0, 0.5, 1.0] {
                assert_eq!(h.quantile(q), bound, "value {value} q {q}");
            }
        }
    }

    #[test]
    fn quantile_at_power_of_two_bucket_boundaries() {
        let mut h = Histogram::default();
        // 2^k is the *first* value of bucket k+1: its reported bound is
        // 2^(k+1)-1, while 2^k - 1 tops bucket k.
        for k in [1u32, 4, 16, 63] {
            let mut h2 = Histogram::default();
            h2.observe(1u64 << k);
            assert_eq!(h2.quantile(1.0), ((1u128 << (k + 1)) - 1).min(u64::MAX as u128) as u64);
            h2 = Histogram::default();
            h2.observe((1u64 << k) - 1);
            assert_eq!(h2.quantile(1.0), (1u64 << k) - 1);
        }
        // Median walks the cumulative counts across boundary buckets.
        h.observe(1);
        h.observe(2);
        h.observe(4);
        h.observe(8);
        assert_eq!(h.quantile(0.5), 3, "rank 2 of 4 lands in bucket of 2..=3");
        assert_eq!(h.quantile(0.75), 7, "rank 3 of 4 lands in bucket of 4..=7");
        assert_eq!(h.quantile(1.0), 15, "rank 4 of 4 lands in bucket of 8..=15");
    }

    #[test]
    fn snapshot_merge_and_delta() {
        let mut a = MetricsSnapshot::new();
        a.add_counter("hth_x_total", 5);
        a.set_gauge("hth_x_live", 3);
        a.observe("hth_x_size", 9);

        let mut b = a.clone();
        b.add_counter("hth_x_total", 2);
        b.set_gauge("hth_x_live", 1);
        b.observe("hth_x_size", 100);

        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.counter("hth_x_total"), 12);
        assert_eq!(merged.gauge("hth_x_live"), Some(4));
        assert_eq!(merged.histogram("hth_x_size").unwrap().count(), 3);

        let diff = b.delta(&a);
        assert_eq!(diff.counter("hth_x_total"), 2);
        assert_eq!(diff.gauge("hth_x_live"), Some(1), "gauges report current level");
        assert_eq!(diff.histogram("hth_x_size").unwrap().count(), 1);
        assert_eq!(diff.histogram("hth_x_size").unwrap().sum(), 100);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let mut m = MetricsSnapshot::new();
        m.add_counter("hth_events_total", 7);
        m.set_gauge("hth_tokens_live", 2);
        m.observe("hth_latency_micros", 5);
        let text = m.render_prometheus();
        assert!(text.contains("# TYPE hth_events_total counter\nhth_events_total 7\n"), "{text}");
        assert!(text.contains("# TYPE hth_tokens_live gauge\nhth_tokens_live 2\n"), "{text}");
        assert!(text.contains("# TYPE hth_latency_micros histogram"), "{text}");
        assert!(text.contains("hth_latency_micros_bucket{le=\"7\"} 1"), "{text}");
        assert!(text.contains("hth_latency_micros_bucket{le=\"+Inf\"} 1"), "{text}");
        assert!(text.contains("hth_latency_micros_sum 5"), "{text}");
        assert!(text.contains("hth_latency_micros_count 1"), "{text}");
    }

    #[test]
    fn registry_accumulates_live() {
        let registry = Registry::new();
        registry.add_counter("hth_n", 1);
        let before = registry.snapshot();
        registry.add_counter("hth_n", 4);
        registry.observe("hth_h", 3);
        let after = registry.snapshot();
        assert_eq!(after.delta(&before).counter("hth_n"), 4);
        assert_eq!(after.histogram("hth_h").unwrap().count(), 1);
    }
}
