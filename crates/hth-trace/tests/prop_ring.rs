//! Ring-buffer properties: a drain yields exactly the *last*
//! `min(pushes, capacity)` events, in push order, with an exact
//! overwrite count — across arbitrary interleavings of pushes and
//! drains.

use proptest::prelude::*;

use hth_trace::{Phase, RingBuffer, TraceEvent};

fn ev(seq: u64) -> TraceEvent {
    TraceEvent { name: "p", phase: Phase::Instant, ts: seq, tid: 0 }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// At capacity the buffer never loses the tail: after N pushes a
    /// drain returns the last `min(N, capacity)` events in order, and
    /// `drained + dropped == pushed`.
    #[test]
    fn drain_keeps_the_newest_window(
        capacity in 1usize..32,
        pushes in 0usize..200,
    ) {
        let mut ring = RingBuffer::new(capacity);
        for seq in 0..pushes as u64 {
            ring.push(ev(seq));
        }
        let (events, dropped) = ring.drain();
        let expect = pushes.min(capacity);
        prop_assert_eq!(events.len(), expect);
        prop_assert_eq!(dropped as usize + events.len(), pushes);
        let first = pushes - expect;
        for (i, event) in events.iter().enumerate() {
            prop_assert_eq!(event.ts, (first + i) as u64, "tail window, in push order");
        }
    }

    /// Interleaved pushes and drains: every event is either drained
    /// exactly once (in global push order) or counted as dropped.
    #[test]
    fn interleaved_drains_account_for_every_push(
        capacity in 1usize..16,
        bursts in prop::collection::vec(0usize..40, 1..8),
    ) {
        let mut ring = RingBuffer::new(capacity);
        let mut next = 0u64;
        let mut seen: Vec<u64> = Vec::new();
        let mut dropped_total = 0u64;
        for burst in bursts {
            for _ in 0..burst {
                ring.push(ev(next));
                next += 1;
            }
            let (events, dropped) = ring.drain();
            dropped_total += dropped;
            seen.extend(events.iter().map(|e| e.ts));
        }
        prop_assert_eq!(seen.len() as u64 + dropped_total, next);
        prop_assert!(seen.windows(2).all(|w| w[0] < w[1]), "drained in push order: {:?}", seen);
    }
}
