//! `Histogram::merge` conservation properties: merging two histograms
//! conserves `count` and `sum` exactly, and no quantile of the merged
//! histogram can fall below the lower input's quantile floor (merging
//! can only interleave observations, never invent smaller ones).

use proptest::prelude::*;

use hth_trace::Histogram;

fn fill(values: &[u64]) -> Histogram {
    let mut h = Histogram::default();
    for &v in values {
        h.observe(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `merge` is addition: counts and sums add exactly, and the result
    /// equals observing the concatenated value streams.
    #[test]
    fn merge_conserves_count_and_sum(
        a in prop::collection::vec(0u64..1 << 48, 0..64),
        b in prop::collection::vec(0u64..1 << 48, 0..64),
    ) {
        let ha = fill(&a);
        let hb = fill(&b);
        let mut merged = ha.clone();
        merged.merge(&hb);
        prop_assert_eq!(merged.count(), ha.count() + hb.count());
        prop_assert_eq!(merged.sum(), ha.sum() + hb.sum());
        let mut both: Vec<u64> = a.clone();
        both.extend_from_slice(&b);
        prop_assert_eq!(&merged, &fill(&both), "merge == observing the union");
    }

    /// Every quantile of the merged histogram is at least the smaller
    /// of the two inputs' quantiles: mixing in another population can
    /// shift a quantile between the inputs' values but never below
    /// both.
    #[test]
    fn merge_never_lowers_a_quantile_below_either_floor(
        a in prop::collection::vec(0u64..1 << 48, 1..64),
        b in prop::collection::vec(0u64..1 << 48, 1..64),
        qs in prop::collection::vec(0u64..=1000, 1..8),
    ) {
        let ha = fill(&a);
        let hb = fill(&b);
        let mut merged = ha.clone();
        merged.merge(&hb);
        for q in qs.into_iter().map(|milli| milli as f64 / 1000.0) {
            let floor = ha.quantile(q).min(hb.quantile(q));
            prop_assert!(
                merged.quantile(q) >= floor,
                "q={} merged={} < floor={}",
                q,
                merged.quantile(q),
                floor
            );
        }
    }
}
