//! A minimal Fx-style hasher for the engine's internal maps.
//!
//! The match network and working memory hash small fixed keys (fact ids,
//! token ids, short tuples) millions of times per second; SipHash's
//! DoS resistance buys nothing there because every key is
//! engine-generated, never attacker-chosen. This is the well-known
//! multiply-rotate-xor mix used by rustc ("FxHash"), reimplemented here
//! because the container is offline and the dependency would be heavier
//! than the fifteen lines it replaces.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The rustc FxHash multiplier (a 64-bit golden-ratio-derived odd
/// constant).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate-xor streaming hasher; not DoS-resistant by design.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            self.add(u64::from_le_bytes(bytes[..8].try_into().expect("8-byte chunk")));
            bytes = &bytes[8..];
        }
        if !bytes.is_empty() {
            let mut tail = [0u8; 8];
            tail[..bytes.len()].copy_from_slice(bytes);
            self.add(u64::from_le_bytes(tail) ^ bytes.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distributes_and_is_deterministic() {
        let hash_one = |v: u64| {
            let mut h = FxHasher::default();
            h.write_u64(v);
            h.finish()
        };
        assert_eq!(hash_one(42), hash_one(42));
        let mut seen = FxHashSet::default();
        for i in 0..10_000u64 {
            seen.insert(hash_one(i));
        }
        assert_eq!(seen.len(), 10_000, "no collisions on small sequential keys");
    }

    #[test]
    fn byte_stream_tail_lengths_differ() {
        let hash_bytes = |b: &[u8]| {
            let mut h = FxHasher::default();
            h.write(b);
            h.finish()
        };
        assert_ne!(hash_bytes(b"a"), hash_bytes(b"a\0"));
        assert_ne!(hash_bytes(b"abcdefgh"), hash_bytes(b"abcdefg"));
    }
}
