//! The inference engine: match–resolve–act over working memory.
//!
//! Matching is delegated to one of two interchangeable matchers (see
//! [`Matcher`]): the default incremental Rete-style network
//! ([`crate::rete`]), which propagates working-memory deltas through
//! per-rule token chains, or the original naive matcher — an `assert`
//! seed-joins the new fact into every rule pattern of the same template,
//! a `retract` removes the activations that used the fact, and rules
//! with `not` condition elements touching a changed template are
//! recomputed in full. The naive matcher is kept as a differential
//! oracle (`--features naive-match` flips the default) and both produce
//! byte-identical agenda order, transcripts and firing records.
//!
//! Conflict resolution follows CLIPS's depth strategy: highest salience
//! first, most recent activation first among equals. Refraction prevents
//! an activation (rule + fact tuple) from firing twice.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::builtins;
use crate::error::{EngineError, Result};
use crate::explain::{FactSupportRecord, FiringRecord};
use crate::expr::{eval, Bindings, Host};
use crate::fact::{Fact, FactBuilder, FactId, WorkingMemory};
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::pattern::CondElem;
use crate::prefilter::AlphaPrefilter;
use crate::rete::{MatchStats, ReteNetwork, UpdateOutcome};
use crate::rule::Rule;
use crate::snapshot::{EngineSnapshot, FactRecord};
use crate::template::Template;
use crate::value::Value;

/// Signature of host-registered native functions.
pub type NativeFn = Arc<dyn Fn(&[Value]) -> Result<Value> + Send + Sync>;

/// One rule match: the fact tuple plus the variable bindings it produced.
type Match = (Vec<Option<FactId>>, Bindings);

/// Identity of an activation: the rule index plus its fact tuple (`None`
/// entries stand for `not`/`test` positions). Also the refraction key.
pub(crate) type ActKey = (usize, Vec<Option<FactId>>);

/// A user-defined function (`deffunction`): named parameters, an
/// optional `$?rest` wildcard collecting extra arguments, and a body of
/// expressions evaluated left to right (last value returned).
#[derive(Clone, Debug, PartialEq)]
pub struct UserFn {
    /// Function name.
    pub name: Arc<str>,
    /// Positional parameter names.
    pub params: Vec<Arc<str>>,
    /// Optional trailing `$?rest` parameter bound to a multifield of the
    /// remaining arguments.
    pub wildcard: Option<Arc<str>>,
    /// Body expressions.
    pub body: Vec<crate::expr::Expr>,
}

/// Which match algorithm keeps the agenda up to date.
///
/// Both matchers produce byte-identical observable behavior (agenda
/// order, firing records, transcripts); they differ only in cost. The
/// default is [`Matcher::Rete`] unless the crate is built with the
/// `naive-match` feature, which restores the original full-join matcher
/// as the default (useful as a differential oracle).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Matcher {
    /// Per-assert seed joins and full recomputes; O(join) per change.
    Naive,
    /// Incremental match network; O(affected tokens) per change.
    Rete,
}

impl Default for Matcher {
    fn default() -> Matcher {
        if cfg!(feature = "naive-match") {
            Matcher::Naive
        } else {
            Matcher::Rete
        }
    }
}

/// Conflict-resolution strategy (CLIPS `set-strategy` subset).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Strategy {
    /// Newest activation first among equal saliences (CLIPS default).
    #[default]
    Depth,
    /// Oldest activation first among equal saliences.
    Breadth,
}

/// One entry on the agenda: a rule together with a consistent fact tuple.
#[derive(Clone, Debug)]
struct Activation {
    rule: usize,
    facts: Vec<Option<FactId>>,
    bindings: Bindings,
    salience: i32,
    seq: u64,
}

/// Read-only evaluation host used while matching patterns. Mutating
/// actions are rejected: patterns must be pure.
struct MatchHost<'a> {
    globals: &'a FxHashMap<Arc<str>, Value>,
    natives: &'a FxHashMap<Arc<str>, NativeFn>,
    userfns: &'a FxHashMap<Arc<str>, Arc<UserFn>>,
}

impl Host for MatchHost<'_> {
    fn global(&self, name: &str) -> Result<Value> {
        self.globals.get(name).cloned().ok_or_else(|| EngineError::UnknownGlobal(name.to_string()))
    }

    fn call(&mut self, name: &str, args: &[Value]) -> Result<Value> {
        match builtins::call(name, args) {
            Err(EngineError::UnknownFunction(_)) => match self.natives.get(name) {
                Some(f) => f(args),
                None => match self.userfns.get(name).cloned() {
                    Some(f) => {
                        let mut bindings = bind_userfn_args(&f, args)?;
                        let mut last = Value::falsity();
                        for expr in &f.body {
                            last = eval(expr, &mut bindings, self)?;
                        }
                        Ok(last)
                    }
                    None => Err(EngineError::UnknownFunction(name.to_string())),
                },
            },
            other => other,
        }
    }

    fn assert(&mut self, _: &str, _: &[(Arc<str>, Value)]) -> Result<Value> {
        Err(EngineError::Type { expected: "pure expression in pattern", found: "assert".into() })
    }

    fn retract(&mut self, _: FactId) -> Result<()> {
        Err(EngineError::Type { expected: "pure expression in pattern", found: "retract".into() })
    }

    fn print(&mut self, _: &str) -> Result<()> {
        Err(EngineError::Type { expected: "pure expression in pattern", found: "printout".into() })
    }
}

/// The expert-system engine.
///
/// ```
/// use secpert_engine::Engine;
/// # fn main() -> Result<(), secpert_engine::EngineError> {
/// let mut engine = Engine::new();
/// engine.load_str(r#"
///   (deftemplate greeting (slot to))
///   (defrule hello
///     (greeting (to ?who))
///     =>
///     (printout t "hello " ?who crlf))
/// "#)?;
/// engine.assert_str("(greeting (to world))")?;
/// engine.run(None)?;
/// assert_eq!(engine.take_output(), "hello world\n");
/// # Ok(())
/// # }
/// ```
pub struct Engine {
    templates: FxHashMap<Arc<str>, Arc<Template>>,
    rules: Vec<Arc<Rule>>,
    rule_names: FxHashMap<Arc<str>, usize>,
    wm: WorkingMemory,
    globals: FxHashMap<Arc<str>, Value>,
    natives: FxHashMap<Arc<str>, NativeFn>,
    userfns: FxHashMap<Arc<str>, Arc<UserFn>>,
    strategy: Strategy,
    watch: bool,
    trace: Vec<String>,
    deffacts: Vec<Fact>,
    /// Salience-bucketed, seq-ordered agenda: keys are `(salience, seq)`,
    /// so the Depth pick is the last entry and the Breadth pick is the
    /// first entry within the top salience — no linear scans.
    agenda: BTreeMap<(i32, u64), Activation>,
    /// Activation identity -> its agenda key, for O(1) targeted removal.
    agenda_keys: FxHashMap<ActKey, (i32, u64)>,
    refraction: FxHashSet<ActKey>,
    transcript: String,
    pending_output: String,
    firings: Vec<FiringRecord>,
    activation_seq: u64,
    fired_total: usize,
    matcher: Matcher,
    rete: ReteNetwork,
    /// When set, [`Engine::fire`] snapshots per-fact co-rule support
    /// from the match network before the RHS runs (see
    /// [`Engine::support_for`]). Off by default.
    capture_support: bool,
    /// Firing seq -> support captured at fire time. Lives and dies with
    /// the firing records; kept out of [`FiringRecord`] so the naive
    /// and Rete matchers stay byte-comparable.
    support_log: FxHashMap<usize, Vec<FactSupportRecord>>,
    /// Bumped on every successful [`Engine::add_rule`], so callers
    /// caching an [`AlphaPrefilter`] snapshot know when to rebuild.
    rules_revision: u64,
}

impl Default for Engine {
    fn default() -> Engine {
        Engine::new()
    }
}

impl Engine {
    /// Creates an empty engine with the implicit `initial-fact` template,
    /// using the default [`Matcher`].
    pub fn new() -> Engine {
        Engine::with_matcher(Matcher::default())
    }

    /// Creates an empty engine using the given match algorithm. The
    /// matcher is fixed for the engine's lifetime.
    pub fn with_matcher(matcher: Matcher) -> Engine {
        let mut engine = Engine {
            templates: FxHashMap::default(),
            rules: Vec::new(),
            rule_names: FxHashMap::default(),
            wm: WorkingMemory::new(),
            globals: FxHashMap::default(),
            natives: FxHashMap::default(),
            userfns: FxHashMap::default(),
            strategy: Strategy::Depth,
            watch: false,
            trace: Vec::new(),
            deffacts: Vec::new(),
            agenda: BTreeMap::new(),
            agenda_keys: FxHashMap::default(),
            refraction: FxHashSet::default(),
            transcript: String::new(),
            pending_output: String::new(),
            firings: Vec::new(),
            activation_seq: 0,
            fired_total: 0,
            matcher,
            rete: ReteNetwork::new(),
            capture_support: false,
            support_log: FxHashMap::default(),
            rules_revision: 0,
        };
        // The engine's match paths only ever probe the slot-value index
        // on slots named by compiled rule nodes (registered per rule in
        // `add_rule`); restricting the index to those slots keeps
        // assert/retract from maintaining buckets nothing reads.
        engine.wm.restrict_index();
        engine
            .add_template(Template::new("initial-fact", []))
            .expect("initial-fact is the first template");
        engine
    }

    /// The match algorithm this engine was constructed with.
    pub fn matcher(&self) -> Matcher {
        self.matcher
    }

    /// Counters describing the match network's work so far. All-zero
    /// when the naive matcher is active.
    pub fn match_stats(&self) -> MatchStats {
        self.rete.stats
    }

    /// Monotonic counter bumped on every rule addition. Callers caching
    /// an [`AlphaPrefilter`] compare revisions to know when to rebuild.
    pub fn rules_revision(&self) -> u64 {
        self.rules_revision
    }

    /// Builds an [`AlphaPrefilter`] snapshot of the current rule base's
    /// constant discriminators (see that type for the soundness
    /// contract). Stale once [`Engine::rules_revision`] moves.
    pub fn alpha_prefilter(&self) -> AlphaPrefilter {
        AlphaPrefilter::build(&self.rules, &self.templates)
    }

    // ----- construct registration -------------------------------------

    /// Registers a template.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Redefinition`] when the name is taken.
    pub fn add_template(&mut self, template: Template) -> Result<Arc<Template>> {
        let name: Arc<str> = Arc::from(template.name());
        if self.templates.contains_key(&name) {
            return Err(EngineError::Redefinition(name.to_string()));
        }
        let arc = Arc::new(template);
        self.templates.insert(name, arc.clone());
        Ok(arc)
    }

    /// Looks up a registered template.
    pub fn template(&self, name: &str) -> Option<&Arc<Template>> {
        self.templates.get(name)
    }

    /// Registers a rule, validating its patterns against known templates.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Redefinition`], [`EngineError::UnknownTemplate`]
    /// or [`EngineError::UnknownSlot`] on malformed rules.
    pub fn add_rule(&mut self, rule: Rule) -> Result<()> {
        let name: Arc<str> = Arc::from(rule.name());
        if self.rule_names.contains_key(&name) {
            return Err(EngineError::Redefinition(name.to_string()));
        }
        for ce in rule.lhs() {
            if let CondElem::Pattern(p) | CondElem::Not(p) = ce {
                let template = self
                    .templates
                    .get(p.template.as_ref())
                    .ok_or_else(|| EngineError::UnknownTemplate(p.template.to_string()))?;
                for (slot, _) in &p.slots {
                    template.slot(slot)?;
                }
            }
        }
        // Rules without a positive pattern are seeded by `initial-fact`.
        let rule = if rule.needs_initial_fact() {
            let mut lhs = vec![CondElem::Pattern(crate::pattern::PatternCE::new("initial-fact"))];
            lhs.extend(rule.lhs().iter().cloned());
            let rebuilt = Rule::new(rule.name(), rule.salience(), lhs, rule.rhs().to_vec());
            match rule.doc() {
                Some(doc) => rebuilt.with_doc(doc),
                None => rebuilt,
            }
        } else {
            rule
        };
        let idx = self.rules.len();
        self.rules.push(Arc::new(rule));
        self.rule_names.insert(name, idx);
        self.rules_revision += 1;
        // Register the slots this rule's compiled nodes will probe on the
        // working-memory index: the beta join key and the first constant
        // of each condition element (the two lookups `candidates` makes).
        {
            let nodes = crate::rete::compile::compile(&self.rules[idx], &self.templates);
            for (ce, node) in self.rules[idx].lhs().iter().zip(&nodes) {
                let (CondElem::Pattern(p) | CondElem::Not(p)) = ce else { continue };
                if let Some((slot, _)) = &node.join {
                    self.wm.index_slot(&p.template, *slot);
                }
                if let Some((slot, _)) = node.consts.first() {
                    self.wm.index_slot(&p.template, *slot);
                }
            }
        }
        match self.matcher {
            Matcher::Naive => self.recompute_rule(idx)?,
            Matcher::Rete => {
                let emissions = {
                    let mut host = MatchHost {
                        globals: &self.globals,
                        natives: &self.natives,
                        userfns: &self.userfns,
                    };
                    self.rete.add_production(
                        self.rules[idx].clone(),
                        &self.templates,
                        &self.wm,
                        &mut host,
                    )?
                };
                for em in emissions {
                    self.push_activation(em.rule, em.tuple, em.bindings);
                }
            }
        }
        Ok(())
    }

    /// Names of all registered rules, in definition order.
    pub fn rule_names(&self) -> impl Iterator<Item = &str> {
        self.rules.iter().map(|r| r.name())
    }

    /// Registers a user-defined function (`deffunction`).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Redefinition`] when the name is taken.
    pub fn add_function(&mut self, f: UserFn) -> Result<()> {
        if self.userfns.contains_key(&f.name) {
            return Err(EngineError::Redefinition(f.name.to_string()));
        }
        self.userfns.insert(f.name.clone(), Arc::new(f));
        Ok(())
    }

    /// Sets the conflict-resolution strategy (CLIPS `set-strategy`).
    pub fn set_strategy(&mut self, strategy: Strategy) {
        self.strategy = strategy;
    }

    /// Enables/disables CLIPS-style watch tracing of asserts, retracts
    /// and firings.
    pub fn set_watch(&mut self, on: bool) {
        self.watch = on;
    }

    /// Takes and clears the watch trace (one line per event, CLIPS
    /// shapes: `==> f-3 (…)`, `<== f-3 (…)`, `FIRE 1 rule: f-3`).
    pub fn take_trace(&mut self) -> Vec<String> {
        std::mem::take(&mut self.trace)
    }

    /// Registers a native function callable from rules.
    pub fn register_fn(
        &mut self,
        name: impl AsRef<str>,
        f: impl Fn(&[Value]) -> Result<Value> + Send + Sync + 'static,
    ) {
        self.natives.insert(Arc::from(name.as_ref()), Arc::new(f));
    }

    /// Defines or updates a global (`?*name*`).
    pub fn set_global(&mut self, name: impl AsRef<str>, value: impl Into<Value>) {
        self.globals.insert(Arc::from(name.as_ref()), value.into());
    }

    /// Reads a global.
    pub fn get_global(&self, name: &str) -> Option<&Value> {
        self.globals.get(name)
    }

    /// Adds a fact asserted automatically by [`Engine::reset`].
    pub fn add_deffact(&mut self, fact: Fact) {
        self.deffacts.push(fact);
    }

    // ----- working memory ----------------------------------------------

    /// Starts building a fact of a registered template.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::UnknownTemplate`] for unknown names.
    pub fn fact(&self, template: &str) -> Result<FactBuilder> {
        let t = self
            .templates
            .get(template)
            .ok_or_else(|| EngineError::UnknownTemplate(template.to_string()))?;
        Ok(FactBuilder::new(t.clone()))
    }

    /// Asserts a fact; returns its id, or `None` for suppressed duplicates.
    ///
    /// # Errors
    ///
    /// Propagates pattern-evaluation errors raised while updating the
    /// agenda.
    pub fn assert_fact(&mut self, fact: Fact) -> Result<Option<FactId>> {
        let Some(id) = self.wm.assert(fact) else {
            return Ok(None);
        };
        if self.watch {
            let rendered = self.wm.get(id).map(|f| f.to_string()).unwrap_or_default();
            self.trace.push(format!("==> {id} {rendered}"));
        }
        self.on_assert(id)?;
        Ok(Some(id))
    }

    /// Retracts a fact by id.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::NoSuchFact`] for dead ids.
    pub fn retract_fact(&mut self, id: FactId) -> Result<()> {
        let fact = self.wm.retract(id)?;
        if self.watch {
            self.trace.push(format!("<== {id} {fact}"));
        }
        self.on_retract(id, fact.template().name())?;
        Ok(())
    }

    /// Live facts of a template, in assertion order.
    pub fn facts_of(&self, template: &str) -> Vec<(FactId, Arc<Fact>)> {
        self.wm
            .ids_of(template)
            .iter()
            .map(|id| (*id, self.wm.get(*id).expect("indexed fact is live").clone()))
            .collect()
    }

    /// Looks up a live fact.
    pub fn get_fact(&self, id: FactId) -> Option<Arc<Fact>> {
        self.wm.get(id).cloned()
    }

    /// Number of live facts.
    pub fn fact_count(&self) -> usize {
        self.wm.len()
    }

    /// Clears facts, agenda, refraction and transcript, then asserts
    /// `(initial-fact)` and all `deffacts`.
    ///
    /// # Errors
    ///
    /// Propagates errors from re-asserting `deffacts`.
    pub fn reset(&mut self) -> Result<()> {
        self.wm.clear();
        self.agenda.clear();
        self.agenda_keys.clear();
        self.refraction.clear();
        self.transcript.clear();
        self.firings.clear();
        self.support_log.clear();
        if self.matcher == Matcher::Rete {
            let mut host = MatchHost {
                globals: &self.globals,
                natives: &self.natives,
                userfns: &self.userfns,
            };
            self.rete.reset(&self.wm, &mut host)?;
        }
        self.assert_fact(Fact::with_defaults(self.templates["initial-fact"].clone()))?;
        for fact in self.deffacts.clone() {
            self.assert_fact(fact)?;
        }
        Ok(())
    }

    // ----- agenda maintenance -------------------------------------------

    fn push_activation(&mut self, rule: usize, facts: Vec<Option<FactId>>, bindings: Bindings) {
        let key = (rule, facts.clone());
        if self.refraction.contains(&key) || self.agenda_keys.contains_key(&key) {
            return;
        }
        self.activation_seq += 1;
        let salience = self.rules[rule].salience();
        let order = (salience, self.activation_seq);
        self.agenda_keys.insert(key, order);
        self.agenda.insert(
            order,
            Activation { rule, facts, bindings, salience, seq: self.activation_seq },
        );
    }

    /// Removes one activation by identity. Returns false if it was not
    /// on the agenda (already fired, or suppressed by refraction).
    fn remove_activation(&mut self, key: &ActKey) -> bool {
        match self.agenda_keys.remove(key) {
            Some(order) => {
                self.agenda.remove(&order);
                true
            }
            None => false,
        }
    }

    fn remove_rule_activations(&mut self, rule: usize) {
        let doomed: Vec<ActKey> =
            self.agenda_keys.keys().filter(|(r, _)| *r == rule).cloned().collect();
        for key in doomed {
            self.remove_activation(&key);
        }
    }

    /// Recomputes all activations of one rule from scratch.
    fn recompute_rule(&mut self, rule_idx: usize) -> Result<()> {
        self.remove_rule_activations(rule_idx);
        let matches = {
            let mut host = MatchHost {
                globals: &self.globals,
                natives: &self.natives,
                userfns: &self.userfns,
            };
            compute_matches(&self.wm, &self.rules[rule_idx], None, &mut host)?
        };
        for (facts, bindings) in matches {
            self.push_activation(rule_idx, facts, bindings);
        }
        Ok(())
    }

    /// Applies a network update to the agenda: targeted removals first,
    /// then new matches in the network's (naive-equivalent) order, then
    /// full resequences of negated rules with fresh sequence numbers.
    fn apply_outcome(&mut self, outcome: UpdateOutcome) {
        for key in &outcome.removals {
            self.remove_activation(key);
        }
        for em in outcome.pushes {
            self.push_activation(em.rule, em.tuple, em.bindings);
        }
        for (rule, matches) in outcome.resequences {
            self.remove_rule_activations(rule);
            for em in matches {
                self.push_activation(em.rule, em.tuple, em.bindings);
            }
        }
    }

    fn on_assert(&mut self, id: FactId) -> Result<()> {
        if self.matcher == Matcher::Rete {
            let outcome = {
                let mut host = MatchHost {
                    globals: &self.globals,
                    natives: &self.natives,
                    userfns: &self.userfns,
                };
                self.rete.on_assert(id, &self.wm, &mut host)?
            };
            self.apply_outcome(outcome);
            return Ok(());
        }
        let fact = self.wm.get(id).expect("just asserted").clone();
        let template = fact.template().name().to_string();
        let mut seeded: Vec<(usize, Vec<Match>)> = Vec::new();
        let mut recompute: Vec<usize> = Vec::new();
        {
            let mut host = MatchHost {
                globals: &self.globals,
                natives: &self.natives,
                userfns: &self.userfns,
            };
            for (ri, rule) in self.rules.iter().enumerate() {
                let negated_on_template = rule
                    .lhs()
                    .iter()
                    .any(|ce| matches!(ce, CondElem::Not(p) if p.template.as_ref() == template));
                if negated_on_template {
                    // Negation may invalidate existing activations and the
                    // seed-join below cannot see that; recompute fully.
                    recompute.push(ri);
                    continue;
                }
                let mut rule_matches = Vec::new();
                for (pos, p) in rule.positive_positions() {
                    if p.template.as_ref() == template {
                        rule_matches.extend(compute_matches(
                            &self.wm,
                            rule,
                            Some((pos, id)),
                            &mut host,
                        )?);
                    }
                }
                if !rule_matches.is_empty() {
                    seeded.push((ri, rule_matches));
                }
            }
        }
        for (ri, matches) in seeded {
            for (facts, bindings) in matches {
                self.push_activation(ri, facts, bindings);
            }
        }
        for ri in recompute {
            self.recompute_rule(ri)?;
        }
        Ok(())
    }

    fn on_retract(&mut self, id: FactId, template: &str) -> Result<()> {
        if self.matcher == Matcher::Rete {
            let outcome = {
                let mut host = MatchHost {
                    globals: &self.globals,
                    natives: &self.natives,
                    userfns: &self.userfns,
                };
                self.rete.on_retract(id, template, &self.wm, &mut host)?
            };
            self.apply_outcome(outcome);
            return Ok(());
        }
        let doomed: Vec<ActKey> = self
            .agenda_keys
            .keys()
            .filter(|(_, facts)| facts.contains(&Some(id)))
            .cloned()
            .collect();
        for key in doomed {
            self.remove_activation(&key);
        }
        let recompute: Vec<usize> = self
            .rules
            .iter()
            .enumerate()
            .filter(|(_, rule)| {
                rule.lhs()
                    .iter()
                    .any(|ce| matches!(ce, CondElem::Not(p) if p.template.as_ref() == template))
            })
            .map(|(ri, _)| ri)
            .collect();
        for ri in recompute {
            self.recompute_rule(ri)?;
        }
        Ok(())
    }

    // ----- execution ------------------------------------------------------

    /// Number of activations currently eligible to fire.
    pub fn agenda_len(&self) -> usize {
        self.agenda.len()
    }

    /// Snapshot of the agenda in firing order: `(rule name, fact ids)`
    /// pairs, the next activation to fire first (CLIPS `agenda`).
    pub fn agenda(&self) -> Vec<(String, Vec<FactId>)> {
        let mut entries: Vec<&Activation> = self.agenda.values().collect();
        match self.strategy {
            Strategy::Depth => {
                entries.sort_by_key(|a| (std::cmp::Reverse(a.salience), std::cmp::Reverse(a.seq)));
            }
            Strategy::Breadth => {
                entries.sort_by(|a, b| b.salience.cmp(&a.salience).then(a.seq.cmp(&b.seq)));
            }
        }
        entries
            .into_iter()
            .map(|a| {
                (self.rules[a.rule].name().to_string(), a.facts.iter().flatten().copied().collect())
            })
            .collect()
    }

    /// Runs the match–resolve–act loop until the agenda empties or `limit`
    /// firings occurred. Returns the number of rules fired.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors from rule right-hand sides.
    pub fn run(&mut self, limit: Option<usize>) -> Result<usize> {
        let _span = hth_trace::span("engine.run");
        let mut fired = 0;
        while limit.is_none_or(|l| fired < l) {
            let best = self.pick_activation();
            let Some(best) = best else {
                break;
            };
            self.fire(best)?;
            fired += 1;
        }
        Ok(fired)
    }

    fn pick_activation(&mut self) -> Option<Activation> {
        let order = match self.strategy {
            // Highest salience, then highest seq: the greatest key.
            Strategy::Depth => *self.agenda.last_key_value()?.0,
            // Highest salience, then lowest seq: the first key within the
            // top salience bucket.
            Strategy::Breadth => {
                let top_salience = self.agenda.last_key_value()?.0 .0;
                *self.agenda.range((top_salience, 0)..).next()?.0
            }
        };
        let act = self.agenda.remove(&order).expect("picked key is on the agenda");
        self.agenda_keys.remove(&(act.rule, act.facts.clone()));
        Some(act)
    }

    fn fire(&mut self, act: Activation) -> Result<()> {
        self.refraction.insert((act.rule, act.facts.clone()));
        let rule = self.rules[act.rule].clone();
        if self.watch {
            let ids: Vec<String> = act.facts.iter().flatten().map(|id| id.to_string()).collect();
            self.trace.push(format!(
                "FIRE {} {}: {}",
                self.fired_total + 1,
                rule.name(),
                ids.join(",")
            ));
        }
        let fact_snapshots: Vec<Arc<Fact>> =
            act.facts.iter().flatten().filter_map(|id| self.wm.get(*id).cloned()).collect();
        // Support is a picture of the match network *at fire time*: the
        // RHS below may retract these very facts, so snapshot first.
        if self.capture_support && self.matcher == Matcher::Rete {
            let support: Vec<FactSupportRecord> = act
                .facts
                .iter()
                .flatten()
                .map(|id| FactSupportRecord {
                    fact: id.raw(),
                    co_rules: self
                        .rete
                        .rules_using(*id)
                        .into_iter()
                        .map(|prod| self.rules[prod].name_arc().clone())
                        .filter(|name| name.as_ref() != rule.name())
                        .collect(),
                })
                .collect();
            self.support_log.insert(self.fired_total + 1, support);
        }
        self.pending_output.clear();
        let mut bindings = act.bindings.clone();
        for action in rule.rhs() {
            eval(action, &mut bindings, self)?;
        }
        self.fired_total += 1;
        let output = std::mem::take(&mut self.pending_output);
        self.transcript.push_str(&output);
        self.firings.push(FiringRecord {
            seq: self.fired_total,
            rule: rule.name_arc().clone(),
            fact_ids: act.facts,
            facts: fact_snapshots,
            output,
        });
        Ok(())
    }

    // ----- results --------------------------------------------------------

    /// Firing records accumulated since the last [`Engine::reset`] (or
    /// [`Engine::clear_firings`]).
    pub fn firings(&self) -> &[FiringRecord] {
        &self.firings
    }

    /// Drops accumulated firing records (the transcript is kept).
    pub fn clear_firings(&mut self) {
        self.firings.clear();
        self.support_log.clear();
    }

    /// Enables or disables per-firing support capture. While on, every
    /// firing records which *other* rules' live matches were consuming
    /// its supporting facts (see [`Engine::support_for`]). Off by
    /// default; only the Rete matcher has the match memory to answer.
    pub fn set_support_capture(&mut self, on: bool) {
        self.capture_support = on;
    }

    /// Match-network support captured for firing `seq` (the value in
    /// [`FiringRecord::seq`]). `None` when capture was off, the seq is
    /// unknown, or the naive matcher is active.
    pub fn support_for(&self, seq: usize) -> Option<&[FactSupportRecord]> {
        self.support_log.get(&seq).map(Vec::as_slice)
    }

    /// Names of rules whose live (partial or complete) matches currently
    /// consume fact `id`, straight from the match network's fact -> token
    /// back-references. Empty under the naive matcher.
    pub fn rules_using_fact(&self, id: FactId) -> Vec<&str> {
        self.rete.rules_using(id).into_iter().map(|prod| self.rules[prod].name()).collect()
    }

    /// Total rules fired over the engine's lifetime.
    pub fn fired_total(&self) -> usize {
        self.fired_total
    }

    // ----- snapshot / restore ---------------------------------------------

    /// Captures the engine's mutable state as an [`EngineSnapshot`].
    ///
    /// Snapshots are only taken at quiescence (empty agenda), which
    /// [`Engine::run`] always drains to: at that point every complete,
    /// unblocked match has fired and sits in the refraction set, so the
    /// agenda itself need not be carried — restoring the facts re-derives
    /// it (empty). Refraction keys naming retracted facts are pruned: ids
    /// are never reused, so those matches can never recur. Firing records
    /// and the transcript are diagnostics of the *past*, not inputs to
    /// future matching, and are not carried.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Type`] when the agenda is non-empty.
    pub fn snapshot(&self) -> Result<EngineSnapshot> {
        if !self.agenda.is_empty() {
            return Err(EngineError::Type {
                expected: "quiescent engine (empty agenda)",
                found: format!("{} pending activations", self.agenda.len()),
            });
        }
        let mut facts: Vec<FactRecord> = self
            .wm
            .iter()
            .map(|(id, fact)| FactRecord {
                id: id.raw(),
                template: fact.template().name_arc().clone(),
                slots: fact.slots().to_vec(),
            })
            .collect();
        facts.sort_by_key(|rec| rec.id);
        let mut refraction: Vec<(Arc<str>, Vec<Option<u64>>)> = self
            .refraction
            .iter()
            .filter(|(_, tuple)| tuple.iter().flatten().all(|id| self.wm.get(*id).is_some()))
            .map(|(rule, tuple)| {
                (
                    self.rules[*rule].name_arc().clone(),
                    tuple.iter().map(|slot| slot.map(FactId::raw)).collect(),
                )
            })
            .collect();
        refraction.sort();
        Ok(EngineSnapshot {
            facts,
            next_fact_id: self.wm.next_id(),
            refraction,
            activation_seq: self.activation_seq,
            fired_total: self.fired_total as u64,
            match_stats: self.rete.stats,
        })
    }

    /// Rebuilds the engine's mutable state from a snapshot taken against
    /// the *same policy* (templates and rules must already be loaded).
    ///
    /// The refraction set is installed first, then every fact is
    /// re-asserted in ascending id order with its original id through the
    /// normal assert path — the match network re-derives all matches, and
    /// refraction suppresses exactly the ones that had already fired,
    /// leaving the agenda empty. The match counters are then restored
    /// wholesale, since the rebuild perturbs them relative to the
    /// uninterrupted run.
    ///
    /// # Errors
    ///
    /// Returns an error when the snapshot names templates or rules this
    /// policy lacks, a fact fails to re-assert with its recorded id, or
    /// the agenda is unexpectedly non-empty afterwards. Validation
    /// failures are detected before any state is touched; later failures
    /// leave the engine in need of another restore (or [`Engine::reset`]).
    pub fn restore(&mut self, snap: &EngineSnapshot) -> Result<()> {
        for (rule, _) in &snap.refraction {
            if !self.rule_names.contains_key(rule) {
                return Err(EngineError::Type {
                    expected: "rule known to this policy",
                    found: rule.to_string(),
                });
            }
        }
        let mut prev_id = 0u64;
        for rec in &snap.facts {
            if !self.templates.contains_key(&rec.template) {
                return Err(EngineError::UnknownTemplate(rec.template.to_string()));
            }
            if rec.id <= prev_id {
                return Err(EngineError::Type {
                    expected: "ascending positive fact ids",
                    found: format!("f-{} after f-{prev_id}", rec.id),
                });
            }
            prev_id = rec.id;
        }
        self.wm.clear();
        self.agenda.clear();
        self.agenda_keys.clear();
        self.refraction.clear();
        self.transcript.clear();
        self.pending_output.clear();
        self.firings.clear();
        self.support_log.clear();
        self.trace.clear();
        if self.matcher == Matcher::Rete {
            let mut host = MatchHost {
                globals: &self.globals,
                natives: &self.natives,
                userfns: &self.userfns,
            };
            self.rete.reset(&self.wm, &mut host)?;
        }
        // Refraction before facts: each re-assert below re-derives the
        // matches the fact completes, and the already-fired ones must be
        // suppressed as they land.
        for (rule, tuple) in &snap.refraction {
            let idx = self.rule_names[rule];
            self.refraction.insert((idx, tuple.iter().map(|s| s.map(FactId::from_raw)).collect()));
        }
        // Watch tracing off for the replay: these asserts are
        // reconstruction, not new activity.
        let watch = std::mem::replace(&mut self.watch, false);
        let replayed = self.restore_facts(snap);
        self.watch = watch;
        replayed?;
        if !self.agenda.is_empty() {
            return Err(EngineError::Type {
                expected: "empty agenda after restore",
                found: format!("{} activations", self.agenda.len()),
            });
        }
        self.activation_seq = snap.activation_seq;
        self.fired_total = snap.fired_total as usize;
        self.rete.stats = snap.match_stats;
        Ok(())
    }

    fn restore_facts(&mut self, snap: &EngineSnapshot) -> Result<()> {
        for rec in &snap.facts {
            let template = self.templates[&rec.template].clone();
            let fact = Fact::from_parts(template, rec.slots.clone())?;
            self.wm.set_next_id(rec.id - 1);
            if self.assert_fact(fact)? != Some(FactId::from_raw(rec.id)) {
                return Err(EngineError::Type {
                    expected: "snapshot fact to re-assert under its recorded id",
                    found: format!("f-{} collapsed as a duplicate", rec.id),
                });
            }
        }
        self.wm.set_next_id(snap.next_fact_id);
        Ok(())
    }

    /// Approximate resident bytes attributable to this engine's event
    /// stream: working memory, match-network tokens and memories,
    /// refraction keys, transcript, trace, and firing records. The rule
    /// base and templates are excluded — they are fixed per policy and
    /// shared across sessions, not a per-session growth surface.
    pub fn approx_bytes(&self) -> usize {
        let mut bytes = self.wm.approx_bytes() + self.rete.approx_bytes();
        bytes += self.refraction.iter().map(|(_, tuple)| 32 + tuple.len() * 16).sum::<usize>();
        bytes += self.agenda_keys.len() * 64;
        bytes += self.transcript.len() + self.pending_output.len();
        bytes += self.trace.iter().map(|line| line.len() + 24).sum::<usize>();
        for firing in &self.firings {
            bytes += std::mem::size_of::<FiringRecord>()
                + firing.output.len()
                + firing.fact_ids.len() * 16
                + firing.facts.len() * 8;
        }
        bytes
    }

    /// Takes and clears the printout transcript.
    pub fn take_output(&mut self) -> String {
        std::mem::take(&mut self.transcript)
    }
}

impl Host for Engine {
    fn global(&self, name: &str) -> Result<Value> {
        self.globals.get(name).cloned().ok_or_else(|| EngineError::UnknownGlobal(name.to_string()))
    }

    fn call(&mut self, name: &str, args: &[Value]) -> Result<Value> {
        match builtins::call(name, args) {
            Err(EngineError::UnknownFunction(_)) => match self.natives.get(name).cloned() {
                Some(f) => f(args),
                None => match self.userfns.get(name).cloned() {
                    Some(f) => {
                        let mut bindings = bind_userfn_args(&f, args)?;
                        let mut last = Value::falsity();
                        for expr in &f.body {
                            last = eval(expr, &mut bindings, self)?;
                        }
                        Ok(last)
                    }
                    None => Err(EngineError::UnknownFunction(name.to_string())),
                },
            },
            other => other,
        }
    }

    fn assert(&mut self, template: &str, slots: &[(Arc<str>, Value)]) -> Result<Value> {
        let t = self
            .templates
            .get(template)
            .ok_or_else(|| EngineError::UnknownTemplate(template.to_string()))?
            .clone();
        let mut fact = Fact::with_defaults(t);
        for (slot, value) in slots {
            fact.set(slot, value.clone())?;
        }
        Ok(match self.assert_fact(fact)? {
            Some(id) => Value::Fact(id),
            None => Value::falsity(),
        })
    }

    fn retract(&mut self, id: FactId) -> Result<()> {
        self.retract_fact(id)
    }

    fn print(&mut self, text: &str) -> Result<()> {
        self.pending_output.push_str(text);
        Ok(())
    }

    fn modify(&mut self, id: FactId, slots: &[(Arc<str>, Value)]) -> Result<Value> {
        let old = self.wm.get(id).ok_or(EngineError::NoSuchFact(id.raw()))?;
        let mut fact = (**old).clone();
        for (slot, value) in slots {
            fact.set(slot, value.clone())?;
        }
        self.retract_fact(id)?;
        Ok(match self.assert_fact(fact)? {
            Some(new_id) => Value::Fact(new_id),
            None => Value::falsity(),
        })
    }
}

/// Binds deffunction arguments to its parameters.
fn bind_userfn_args(f: &UserFn, args: &[Value]) -> Result<Bindings> {
    if args.len() < f.params.len() || (f.wildcard.is_none() && args.len() != f.params.len()) {
        return Err(EngineError::Type {
            expected: "matching deffunction arity",
            found: format!(
                "{} called with {} arguments, expects {}",
                f.name,
                args.len(),
                f.params.len()
            ),
        });
    }
    let mut bindings = Bindings::new();
    for (param, value) in f.params.iter().zip(args) {
        bindings.insert(param.clone(), value.clone());
    }
    if let Some(rest) = &f.wildcard {
        bindings.insert(rest.clone(), Value::multi(args[f.params.len()..].iter().cloned()));
    }
    Ok(bindings)
}

/// Enumerates all consistent matches of `rule` against working memory.
/// With `seed = Some((pos, id))`, only matches using fact `id` at LHS
/// position `pos` are produced (incremental assert path).
fn compute_matches(
    wm: &WorkingMemory,
    rule: &Rule,
    seed: Option<(usize, FactId)>,
    host: &mut dyn Host,
) -> Result<Vec<Match>> {
    let mut out = Vec::new();
    let mut facts = Vec::with_capacity(rule.lhs().len());
    dfs(wm, rule.lhs(), 0, seed, &Bindings::new(), &mut facts, &mut out, host)?;
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    wm: &WorkingMemory,
    lhs: &[CondElem],
    idx: usize,
    seed: Option<(usize, FactId)>,
    bindings: &Bindings,
    facts: &mut Vec<Option<FactId>>,
    out: &mut Vec<Match>,
    host: &mut dyn Host,
) -> Result<()> {
    if idx == lhs.len() {
        out.push((facts.clone(), bindings.clone()));
        return Ok(());
    }
    match &lhs[idx] {
        CondElem::Pattern(p) => {
            let seeded_here = matches!(seed, Some((pos, _)) if pos == idx);
            let candidates: Vec<FactId> = if seeded_here {
                vec![seed.expect("checked").1]
            } else {
                wm.ids_of(&p.template).to_vec()
            };
            for cid in candidates {
                let Some(fact) = wm.get(cid) else { continue };
                let mut extended = bindings.clone();
                if p.matches(fact, &mut extended, host)? {
                    if let Some(var) = &p.binding {
                        // `?f <-` rebinding to a different fact must fail.
                        match extended.get(var.as_ref()) {
                            Some(existing) if existing != &Value::Fact(cid) => continue,
                            _ => {
                                extended.insert(var.clone(), Value::Fact(cid));
                            }
                        }
                    }
                    facts.push(Some(cid));
                    dfs(wm, lhs, idx + 1, seed, &extended, facts, out, host)?;
                    facts.pop();
                }
            }
        }
        CondElem::Not(p) => {
            let mut any = false;
            for cid in wm.ids_of(&p.template) {
                let fact = wm.get(*cid).expect("indexed fact is live");
                let mut scratch = bindings.clone();
                if p.matches(fact, &mut scratch, host)? {
                    any = true;
                    break;
                }
            }
            if !any {
                facts.push(None);
                dfs(wm, lhs, idx + 1, seed, bindings, facts, out, host)?;
                facts.pop();
            }
        }
        CondElem::Test(expr) => {
            let mut scratch = bindings.clone();
            if eval(expr, &mut scratch, host)?.is_truthy() {
                facts.push(None);
                dfs(wm, lhs, idx + 1, seed, &scratch, facts, out, host)?;
                facts.pop();
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::pattern::{FieldConstraint, PatternCE, SlotPattern};
    use crate::rule::RuleBuilder;
    use crate::template::SlotDef;

    fn engine_with_event() -> Engine {
        let mut e = Engine::new();
        e.add_template(Template::new("event", [SlotDef::single("kind"), SlotDef::single("n")]))
            .unwrap();
        e
    }

    fn event(e: &Engine, kind: &str, n: i64) -> Fact {
        e.fact("event").unwrap().slot("kind", Value::sym(kind)).slot("n", n).build().unwrap()
    }

    #[test]
    fn simple_rule_fires_once_per_fact() {
        let mut e = engine_with_event();
        e.add_rule(
            RuleBuilder::new("r")
                .pattern(PatternCE::new("event").slot(
                    "kind",
                    SlotPattern::Single(FieldConstraint::literal(Value::sym("open"))),
                ))
                .action(Expr::Printout(vec![Expr::lit("hit"), Expr::lit(Value::sym("crlf"))]))
                .build(),
        )
        .unwrap();
        e.assert_fact(event(&e, "open", 1)).unwrap();
        e.assert_fact(event(&e, "close", 2)).unwrap();
        assert_eq!(e.run(None).unwrap(), 1);
        assert_eq!(e.take_output(), "hit\n");
        // Refraction: running again fires nothing.
        assert_eq!(e.run(None).unwrap(), 0);
        // A new identical-but-distinct fact fires again.
        e.assert_fact(event(&e, "open", 3)).unwrap();
        assert_eq!(e.run(None).unwrap(), 1);
    }

    #[test]
    fn duplicate_facts_are_suppressed() {
        let mut e = engine_with_event();
        let id = e.assert_fact(event(&e, "open", 1)).unwrap();
        assert!(id.is_some());
        assert!(e.assert_fact(event(&e, "open", 1)).unwrap().is_none());
        assert_eq!(e.fact_count(), 1);
    }

    #[test]
    fn salience_orders_firing() {
        let mut e = engine_with_event();
        for (name, salience, tag) in [("low", 0, "L"), ("high", 10, "H")] {
            e.add_rule(
                RuleBuilder::new(name)
                    .salience(salience)
                    .pattern(PatternCE::new("event"))
                    .action(Expr::Printout(vec![Expr::lit(tag)]))
                    .build(),
            )
            .unwrap();
        }
        e.assert_fact(event(&e, "open", 1)).unwrap();
        e.run(None).unwrap();
        assert_eq!(e.take_output(), "HL");
    }

    #[test]
    fn retract_removes_pending_activation() {
        let mut e = engine_with_event();
        e.add_rule(
            RuleBuilder::new("r").pattern(PatternCE::new("event")).action(Expr::lit(1)).build(),
        )
        .unwrap();
        let id = e.assert_fact(event(&e, "open", 1)).unwrap().unwrap();
        assert_eq!(e.agenda_len(), 1);
        e.retract_fact(id).unwrap();
        assert_eq!(e.agenda_len(), 0);
        assert_eq!(e.run(None).unwrap(), 0);
    }

    #[test]
    fn rhs_can_retract_matched_fact() {
        let mut e = engine_with_event();
        e.add_rule(
            RuleBuilder::new("consume")
                .pattern(PatternCE::new("event").bind("f"))
                .action(Expr::Retract(vec![Expr::var("f")]))
                .build(),
        )
        .unwrap();
        e.assert_fact(event(&e, "open", 1)).unwrap();
        e.assert_fact(event(&e, "open", 2)).unwrap();
        assert_eq!(e.run(None).unwrap(), 2);
        assert_eq!(e.fact_count(), 0, "both events consumed");
    }

    #[test]
    fn rhs_assert_triggers_further_rules() {
        let mut e = engine_with_event();
        e.add_template(Template::new("alarm", [SlotDef::single("level")])).unwrap();
        e.add_rule(
            RuleBuilder::new("escalate")
                .pattern(
                    PatternCE::new("event").slot(
                        "kind",
                        SlotPattern::Single(FieldConstraint::literal(Value::sym("bad"))),
                    ),
                )
                .action(Expr::Assert {
                    template: Arc::from("alarm"),
                    slots: vec![(Arc::from("level"), vec![Expr::lit(Value::sym("HIGH"))])],
                })
                .build(),
        )
        .unwrap();
        e.add_rule(
            RuleBuilder::new("report")
                .pattern(PatternCE::new("alarm"))
                .action(Expr::Printout(vec![Expr::lit("ALARM")]))
                .build(),
        )
        .unwrap();
        e.assert_fact(event(&e, "bad", 1)).unwrap();
        assert_eq!(e.run(None).unwrap(), 2);
        assert_eq!(e.take_output(), "ALARM");
    }

    #[test]
    fn not_ce_blocks_and_unblocks() {
        let mut e = engine_with_event();
        e.add_template(Template::new("mute", [])).unwrap();
        e.add_rule(
            RuleBuilder::new("warn")
                .pattern(PatternCE::new("event"))
                .not(PatternCE::new("mute"))
                .action(Expr::Printout(vec![Expr::lit("W")]))
                .build(),
        )
        .unwrap();
        let mute = Fact::with_defaults(e.template("mute").unwrap().clone());
        let mute_id = e.assert_fact(mute).unwrap().unwrap();
        e.assert_fact(event(&e, "open", 1)).unwrap();
        assert_eq!(e.agenda_len(), 0, "mute blocks the rule");
        e.retract_fact(mute_id).unwrap();
        assert_eq!(e.agenda_len(), 1, "retraction re-enables it");
        assert_eq!(e.run(None).unwrap(), 1);
    }

    #[test]
    fn test_ce_filters_on_bindings() {
        let mut e = engine_with_event();
        e.add_rule(
            RuleBuilder::new("big")
                .pattern(
                    PatternCE::new("event")
                        .slot("n", SlotPattern::Single(FieldConstraint::var("n"))),
                )
                .test(Expr::call(">", [Expr::var("n"), Expr::lit(5)]))
                .action(Expr::Printout(vec![Expr::var("n")]))
                .build(),
        )
        .unwrap();
        e.assert_fact(event(&e, "a", 3)).unwrap();
        e.assert_fact(event(&e, "b", 9)).unwrap();
        assert_eq!(e.run(None).unwrap(), 1);
        assert_eq!(e.take_output(), "9");
    }

    #[test]
    fn join_two_patterns_with_shared_variable() {
        let mut e = Engine::new();
        e.add_template(Template::new("open", [SlotDef::single("path")])).unwrap();
        e.add_template(Template::new("write", [SlotDef::single("path")])).unwrap();
        e.add_rule(
            RuleBuilder::new("open-then-write")
                .pattern(
                    PatternCE::new("open")
                        .slot("path", SlotPattern::Single(FieldConstraint::var("p"))),
                )
                .pattern(
                    PatternCE::new("write")
                        .slot("path", SlotPattern::Single(FieldConstraint::var("p"))),
                )
                .action(Expr::Printout(vec![Expr::var("p")]))
                .build(),
        )
        .unwrap();
        let open = e.fact("open").unwrap().slot("path", "/a").build().unwrap();
        let write_other = e.fact("write").unwrap().slot("path", "/b").build().unwrap();
        let write_same = e.fact("write").unwrap().slot("path", "/a").build().unwrap();
        e.assert_fact(open).unwrap();
        e.assert_fact(write_other).unwrap();
        e.assert_fact(write_same).unwrap();
        assert_eq!(e.run(None).unwrap(), 1);
        assert_eq!(e.take_output(), "/a");
    }

    #[test]
    fn reset_restores_deffacts_and_allows_refiring() {
        let mut e = engine_with_event();
        e.add_rule(
            RuleBuilder::new("r")
                .pattern(PatternCE::new("event"))
                .action(Expr::Printout(vec![Expr::lit("x")]))
                .build(),
        )
        .unwrap();
        e.add_deffact(event(&e, "open", 1));
        e.reset().unwrap();
        assert_eq!(e.run(None).unwrap(), 1);
        e.reset().unwrap();
        assert_eq!(e.run(None).unwrap(), 1, "refraction cleared by reset");
    }

    #[test]
    fn rule_without_positive_pattern_fires_after_reset() {
        let mut e = Engine::new();
        e.add_rule(
            RuleBuilder::new("startup")
                .test(Expr::lit(true))
                .action(Expr::Printout(vec![Expr::lit("boot")]))
                .build(),
        )
        .unwrap();
        e.reset().unwrap();
        assert_eq!(e.run(None).unwrap(), 1);
        assert_eq!(e.take_output(), "boot");
    }

    #[test]
    fn firing_records_capture_explanation() {
        let mut e = engine_with_event();
        e.add_rule(
            RuleBuilder::new("r")
                .pattern(PatternCE::new("event").bind("f"))
                .action(Expr::Printout(vec![Expr::lit("saw it")]))
                .build(),
        )
        .unwrap();
        e.assert_fact(event(&e, "open", 7)).unwrap();
        e.run(None).unwrap();
        let rec = &e.firings()[0];
        assert_eq!(rec.rule.as_ref(), "r");
        assert_eq!(rec.output, "saw it");
        assert!(rec.facts[0].to_string().contains("(kind open)"));
    }

    #[test]
    fn native_functions_are_callable() {
        let mut e = engine_with_event();
        e.register_fn("double", |args| Ok(Value::Int(args[0].as_int()? * 2)));
        e.add_rule(
            RuleBuilder::new("r")
                .pattern(
                    PatternCE::new("event")
                        .slot("n", SlotPattern::Single(FieldConstraint::var("n"))),
                )
                .test(Expr::call("=", [Expr::call("double", [Expr::var("n")]), Expr::lit(8)]))
                .action(Expr::Printout(vec![Expr::lit("four")]))
                .build(),
        )
        .unwrap();
        e.assert_fact(event(&e, "a", 4)).unwrap();
        e.assert_fact(event(&e, "b", 5)).unwrap();
        assert_eq!(e.run(None).unwrap(), 1);
    }

    #[test]
    fn run_limit_is_respected() {
        let mut e = engine_with_event();
        e.add_rule(
            RuleBuilder::new("r").pattern(PatternCE::new("event")).action(Expr::lit(0)).build(),
        )
        .unwrap();
        for i in 0..5 {
            e.assert_fact(event(&e, "k", i)).unwrap();
        }
        assert_eq!(e.run(Some(2)).unwrap(), 2);
        assert_eq!(e.agenda_len(), 3);
    }

    /// A policy with a plain rule, a negated rule (exercising the
    /// transient-activation path during restore), and a consuming rule
    /// (so refraction keys over retracted facts get pruned).
    fn snapshot_policy() -> Engine {
        let mut e = engine_with_event();
        e.add_template(Template::new("alarm", [SlotDef::single("level")])).unwrap();
        e.add_rule(
            RuleBuilder::new("on-bad")
                .pattern(
                    PatternCE::new("event").slot(
                        "kind",
                        SlotPattern::Single(FieldConstraint::literal(Value::sym("bad"))),
                    ),
                )
                .action(Expr::Assert {
                    template: Arc::from("alarm"),
                    slots: vec![(Arc::from("level"), vec![Expr::lit(Value::sym("HIGH"))])],
                })
                .action(Expr::Printout(vec![Expr::lit("bad!")]))
                .build(),
        )
        .unwrap();
        e.add_rule(
            RuleBuilder::new("quiet")
                .pattern(PatternCE::new("event").slot(
                    "kind",
                    SlotPattern::Single(FieldConstraint::literal(Value::sym("open"))),
                ))
                .not(PatternCE::new("alarm"))
                .action(Expr::Printout(vec![Expr::lit("calm")]))
                .build(),
        )
        .unwrap();
        e.add_rule(
            RuleBuilder::new("consume-close")
                .pattern(PatternCE::new("event").bind("f").slot(
                    "kind",
                    SlotPattern::Single(FieldConstraint::literal(Value::sym("close"))),
                ))
                .action(Expr::Retract(vec![Expr::var("f")]))
                .build(),
        )
        .unwrap();
        e
    }

    #[test]
    fn snapshot_restore_is_indistinguishable_from_uninterrupted_run() {
        let stream =
            [("open", 1), ("close", 2), ("bad", 3), ("open", 4), ("close", 5), ("open", 6)];
        for cut in 0..=stream.len() {
            let mut uncut = snapshot_policy();
            let mut first = snapshot_policy();
            for (kind, n) in &stream[..cut] {
                first.assert_fact(event(&first, kind, *n)).unwrap();
                first.run(None).unwrap();
            }
            let snap = first.snapshot().unwrap();
            let decoded = EngineSnapshot::decode(&snap.encode()).unwrap();
            assert_eq!(decoded, snap, "codec round-trip at cut {cut}");
            let mut resumed = snapshot_policy();
            resumed.restore(&decoded).unwrap();
            for (kind, n) in &stream {
                uncut.assert_fact(event(&uncut, kind, *n)).unwrap();
                uncut.run(None).unwrap();
            }
            first.take_output();
            for (kind, n) in &stream[cut..] {
                for e in [&mut first, &mut resumed] {
                    e.assert_fact(event(e, kind, *n)).unwrap();
                    e.run(None).unwrap();
                }
            }
            assert_eq!(resumed.take_output(), first.take_output(), "tail output at cut {cut}");
            for e in [&first, &resumed] {
                assert_eq!(e.fired_total(), uncut.fired_total(), "firing count at cut {cut}");
                assert_eq!(e.match_stats(), uncut.match_stats(), "match stats at cut {cut}");
                assert_eq!(e.fact_count(), uncut.fact_count(), "fact count at cut {cut}");
                assert_eq!(
                    e.snapshot().unwrap(),
                    uncut.snapshot().unwrap(),
                    "final snapshot at cut {cut}"
                );
            }
        }
    }

    #[test]
    fn snapshot_requires_quiescence() {
        let mut e = snapshot_policy();
        e.assert_fact(event(&e, "bad", 1)).unwrap();
        assert!(e.snapshot().is_err(), "pending activation must block snapshot");
        e.run(None).unwrap();
        assert!(e.snapshot().is_ok());
    }

    #[test]
    fn restore_rejects_foreign_policy_without_touching_state() {
        let mut donor = snapshot_policy();
        donor.assert_fact(event(&donor, "bad", 1)).unwrap();
        donor.run(None).unwrap();
        let snap = donor.snapshot().unwrap();
        let mut other = engine_with_event(); // no alarm template, no rules
        other.assert_fact(event(&other, "open", 9)).unwrap();
        let before = other.fact_count();
        assert!(other.restore(&snap).is_err());
        assert_eq!(other.fact_count(), before, "failed validation must not wipe");
    }
}
