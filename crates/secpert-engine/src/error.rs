//! Error types for the expert-system engine.

use std::fmt;

/// Error raised by any fallible engine operation.
///
/// Parse errors carry a source location; semantic errors carry the names
/// of the offending construct so the message is actionable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The source text could not be tokenized or parsed.
    Parse {
        /// 1-based line of the offending token.
        line: usize,
        /// 1-based column of the offending token.
        col: usize,
        /// What went wrong.
        message: String,
    },
    /// A fact or pattern referenced a template that was never defined.
    UnknownTemplate(String),
    /// A fact or pattern referenced a slot not present in its template.
    UnknownSlot {
        /// Template name.
        template: String,
        /// Offending slot name.
        slot: String,
    },
    /// A single-valued slot received a multifield value (or vice versa).
    SlotArity {
        /// Template name.
        template: String,
        /// Offending slot name.
        slot: String,
        /// Human-readable description of the mismatch.
        message: String,
    },
    /// A function call in an expression referenced an unregistered function.
    UnknownFunction(String),
    /// A variable was used before any pattern or `bind` gave it a value.
    UnboundVariable(String),
    /// A global (`?*name*`) was referenced but never defined.
    UnknownGlobal(String),
    /// An expression evaluated to a value of the wrong type.
    Type {
        /// What the evaluator expected.
        expected: &'static str,
        /// What it found (rendered value or type name).
        found: String,
    },
    /// `retract` was given a fact id that is not in working memory.
    NoSuchFact(u64),
    /// A construct (template, rule, global) was defined twice.
    Redefinition(String),
    /// Division by zero or a similar arithmetic fault.
    Arithmetic(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse { line, col, message } => {
                write!(f, "parse error at {line}:{col}: {message}")
            }
            EngineError::UnknownTemplate(name) => write!(f, "unknown template `{name}`"),
            EngineError::UnknownSlot { template, slot } => {
                write!(f, "template `{template}` has no slot `{slot}`")
            }
            EngineError::SlotArity { template, slot, message } => {
                write!(f, "slot `{slot}` of template `{template}`: {message}")
            }
            EngineError::UnknownFunction(name) => write!(f, "unknown function `{name}`"),
            EngineError::UnboundVariable(name) => write!(f, "unbound variable `?{name}`"),
            EngineError::UnknownGlobal(name) => write!(f, "unknown global `?*{name}*`"),
            EngineError::Type { expected, found } => {
                write!(f, "type error: expected {expected}, found {found}")
            }
            EngineError::NoSuchFact(id) => write!(f, "no fact with id f-{id}"),
            EngineError::Redefinition(name) => write!(f, "`{name}` is already defined"),
            EngineError::Arithmetic(message) => write!(f, "arithmetic error: {message}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Convenience alias used throughout the engine.
pub type Result<T> = std::result::Result<T, EngineError>;
