//! Rule definitions (`defrule`).

use std::sync::Arc;

use crate::expr::Expr;
use crate::pattern::{CondElem, PatternCE};

/// A production rule: named left-hand side (condition elements) plus a
/// right-hand side (actions evaluated when the rule fires).
#[derive(Clone, Debug, PartialEq)]
pub struct Rule {
    name: Arc<str>,
    doc: Option<String>,
    salience: i32,
    lhs: Vec<CondElem>,
    rhs: Vec<Expr>,
}

impl Rule {
    /// Creates a rule from its parts. Prefer [`RuleBuilder`] in host code.
    pub fn new(name: impl AsRef<str>, salience: i32, lhs: Vec<CondElem>, rhs: Vec<Expr>) -> Rule {
        Rule { name: Arc::from(name.as_ref()), doc: None, salience, lhs, rhs }
    }

    /// Attaches a documentation string.
    #[must_use]
    pub fn with_doc(mut self, doc: impl Into<String>) -> Rule {
        self.doc = Some(doc.into());
        self
    }

    /// Rule name as the shared `Arc<str>` (for records that outlive the
    /// engine borrow).
    pub(crate) fn name_arc(&self) -> &Arc<str> {
        &self.name
    }

    /// Rule name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Documentation string, if any.
    pub fn doc(&self) -> Option<&str> {
        self.doc.as_deref()
    }

    /// Conflict-resolution priority; higher fires first.
    pub fn salience(&self) -> i32 {
        self.salience
    }

    /// Left-hand side condition elements in order.
    pub fn lhs(&self) -> &[CondElem] {
        &self.lhs
    }

    /// Right-hand side actions in order.
    pub fn rhs(&self) -> &[Expr] {
        &self.rhs
    }

    /// Indexes (into `lhs`) of the positive pattern CEs.
    pub fn positive_positions(&self) -> impl Iterator<Item = (usize, &PatternCE)> {
        self.lhs.iter().enumerate().filter_map(|(i, ce)| match ce {
            CondElem::Pattern(p) => Some((i, p)),
            _ => None,
        })
    }

    /// True when the LHS has no positive pattern (needs the implicit
    /// `initial-fact` seed).
    pub fn needs_initial_fact(&self) -> bool {
        self.positive_positions().next().is_none()
    }

    /// Indexes (into `lhs`) of the `not` CEs.
    pub fn negative_positions(&self) -> impl Iterator<Item = (usize, &PatternCE)> {
        self.lhs.iter().enumerate().filter_map(|(i, ce)| match ce {
            CondElem::Not(p) => Some((i, p)),
            _ => None,
        })
    }

    /// True when the LHS has a `not` CE over `template`; changes to that
    /// template's facts then require re-evaluating the rule's negation.
    pub fn has_not_on(&self, template: &str) -> bool {
        self.negative_positions().any(|(_, p)| p.template.as_ref() == template)
    }
}

/// Fluent builder for rules constructed from Rust (rather than parsed).
///
/// ```
/// use secpert_engine::{RuleBuilder, PatternCE, Expr, Value};
/// let rule = RuleBuilder::new("notice-open")
///     .pattern(PatternCE::new("syscall").bind("f"))
///     .action(Expr::Printout(vec![Expr::lit("seen"), Expr::lit(Value::sym("crlf"))]))
///     .build();
/// assert_eq!(rule.name(), "notice-open");
/// ```
#[derive(Debug, Default)]
pub struct RuleBuilder {
    name: String,
    doc: Option<String>,
    salience: i32,
    lhs: Vec<CondElem>,
    rhs: Vec<Expr>,
}

impl RuleBuilder {
    /// Starts a rule with the given name.
    pub fn new(name: impl Into<String>) -> RuleBuilder {
        RuleBuilder { name: name.into(), ..RuleBuilder::default() }
    }

    /// Sets the doc-string.
    #[must_use]
    pub fn doc(mut self, doc: impl Into<String>) -> RuleBuilder {
        self.doc = Some(doc.into());
        self
    }

    /// Sets the salience.
    #[must_use]
    pub fn salience(mut self, salience: i32) -> RuleBuilder {
        self.salience = salience;
        self
    }

    /// Appends a positive pattern CE.
    #[must_use]
    pub fn pattern(mut self, pattern: PatternCE) -> RuleBuilder {
        self.lhs.push(CondElem::Pattern(pattern));
        self
    }

    /// Appends a `(not (pattern))` CE.
    #[must_use]
    pub fn not(mut self, pattern: PatternCE) -> RuleBuilder {
        self.lhs.push(CondElem::Not(pattern));
        self
    }

    /// Appends a `(test (expr))` CE.
    #[must_use]
    pub fn test(mut self, expr: Expr) -> RuleBuilder {
        self.lhs.push(CondElem::Test(expr));
        self
    }

    /// Appends an RHS action.
    #[must_use]
    pub fn action(mut self, expr: Expr) -> RuleBuilder {
        self.rhs.push(expr);
        self
    }

    /// Finishes the rule.
    pub fn build(self) -> Rule {
        let mut rule = Rule::new(self.name, self.salience, self.lhs, self.rhs);
        if let Some(doc) = self.doc {
            rule = rule.with_doc(doc);
        }
        rule
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_expected_rule() {
        let r = RuleBuilder::new("r")
            .doc("docs")
            .salience(10)
            .pattern(PatternCE::new("a"))
            .not(PatternCE::new("b"))
            .test(Expr::lit(true))
            .action(Expr::lit(1))
            .build();
        assert_eq!(r.name(), "r");
        assert_eq!(r.doc(), Some("docs"));
        assert_eq!(r.salience(), 10);
        assert_eq!(r.lhs().len(), 3);
        assert_eq!(r.rhs().len(), 1);
        assert_eq!(r.positive_positions().count(), 1);
        assert!(!r.needs_initial_fact());
    }

    #[test]
    fn rule_without_positive_pattern_needs_seed() {
        let r = RuleBuilder::new("seedless").test(Expr::lit(true)).build();
        assert!(r.needs_initial_fact());
    }
}
