//! Firing records: the expert system's ability to explain itself.
//!
//! The paper argues (§6.2.1) that the main advantage of an expert system
//! over, e.g., a neural network is that it "can give the user all of the
//! information that was used to reach its conclusion". Every rule firing
//! is recorded here with the matched facts and the output it produced.

use std::fmt;
use std::sync::Arc;

use crate::fact::{Fact, FactId};

/// One rule firing: which rule, on which facts, with what output.
#[derive(Clone, Debug, PartialEq)]
pub struct FiringRecord {
    /// Sequence number of the firing within the current run (1-based).
    pub seq: usize,
    /// Name of the rule that fired.
    pub rule: Arc<str>,
    /// Ids of the facts matched by the positive patterns, in LHS order.
    /// `None` marks non-pattern CEs (`not`, `test`).
    pub fact_ids: Vec<Option<FactId>>,
    /// Snapshots of the matched facts (taken before the RHS ran, since
    /// the RHS may retract them). Working-memory facts are immutable —
    /// `modify` is retract-plus-assert — so holding the `Arc` *is* the
    /// snapshot; render with `to_string` when text is needed.
    pub facts: Vec<Arc<Fact>>,
    /// Text the rule printed while firing.
    pub output: String,
}

/// Match-network context for one fact supporting a firing, captured at
/// fire time (before the RHS ran): which *other* rules' live partial
/// matches were also consuming the fact. Kept beside, not inside,
/// [`FiringRecord`] — the naive matcher has no match memory, and firing
/// records must compare equal across matchers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FactSupportRecord {
    /// Raw working-memory id of the supporting fact.
    pub fact: u64,
    /// Other rules with a live token on this fact, in production order.
    pub co_rules: Vec<Arc<str>>,
}

impl fmt::Display for FiringRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FIRE {:5} {}:", self.seq, self.rule)?;
        let mut first = true;
        for id in self.fact_ids.iter().flatten() {
            if !first {
                write!(f, ",")?;
            } else {
                write!(f, " ")?;
            }
            write!(f, "{id}")?;
            first = false;
        }
        if !self.output.is_empty() {
            write!(f, "\n{}", self.output.trim_end())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_clips_trace_shape() {
        use crate::fact::FactBuilder;
        use crate::template::Template;
        let t = Arc::new(Template::new("t", []));
        let fact = || Arc::new(FactBuilder::new(t.clone()).build().unwrap());
        let rec = FiringRecord {
            seq: 1,
            rule: "check_execve".into(),
            fact_ids: vec![Some(fake(43)), Some(fake(42)), None],
            facts: vec![fact(), fact()],
            output: "Warning [LOW]\n".into(),
        };
        let s = rec.to_string();
        assert!(s.starts_with("FIRE     1 check_execve: f-43,f-42"));
        assert!(s.contains("Warning [LOW]"));
    }

    fn fake(n: u64) -> FactId {
        // FactId construction is private to the crate; go through working
        // memory to mint ids.
        use crate::fact::{FactBuilder, WorkingMemory};
        use crate::template::Template;
        use std::sync::Arc;
        let mut wm = WorkingMemory::new();
        let t = Arc::new(Template::new("t", []));
        let mut id = wm.assert(FactBuilder::new(t.clone()).build().unwrap()).unwrap();
        while id.raw() < n {
            wm.retract(id).unwrap();
            id = wm.assert(FactBuilder::new(t.clone()).build().unwrap()).unwrap();
        }
        id
    }
}
