//! Fact templates (`deftemplate`): named, typed slot layouts.

use std::fmt;
use std::sync::Arc;

use crate::error::{EngineError, Result};
use crate::fxhash::FxHashMap;
use crate::value::Value;

/// Whether a slot holds exactly one value or a sequence.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SlotKind {
    /// `(slot name)` — holds a single non-multifield value.
    Single,
    /// `(multislot name)` — holds zero or more values.
    Multi,
}

/// Definition of one slot inside a template.
#[derive(Clone, Debug, PartialEq)]
pub struct SlotDef {
    name: Arc<str>,
    kind: SlotKind,
    default: Option<Value>,
}

impl SlotDef {
    /// Creates a single-valued slot definition.
    pub fn single(name: impl AsRef<str>) -> SlotDef {
        SlotDef { name: Arc::from(name.as_ref()), kind: SlotKind::Single, default: None }
    }

    /// Creates a multifield slot definition.
    pub fn multi(name: impl AsRef<str>) -> SlotDef {
        SlotDef { name: Arc::from(name.as_ref()), kind: SlotKind::Multi, default: None }
    }

    /// Attaches a default value used when `assert` omits the slot.
    #[must_use]
    pub fn with_default(mut self, default: Value) -> SlotDef {
        self.default = Some(default);
        self
    }

    /// Slot name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Single or multi.
    pub fn kind(&self) -> SlotKind {
        self.kind
    }

    /// Declared default, if any.
    pub fn default(&self) -> Option<&Value> {
        self.default.as_ref()
    }

    /// The value stored when a slot has no explicit value and no default:
    /// `nil` for single slots, the empty multifield for multislots.
    pub fn implicit_default(&self) -> Value {
        match self.kind {
            SlotKind::Single => Value::sym("nil"),
            SlotKind::Multi => Value::empty_multi(),
        }
    }
}

/// A fact template: an ordered collection of named slots.
///
/// ```
/// use secpert_engine::{Template, SlotDef};
/// let t = Template::new(
///     "system_call_access",
///     [SlotDef::single("system_call_name"), SlotDef::multi("resource_name")],
/// );
/// assert_eq!(t.name(), "system_call_access");
/// assert!(t.slot_index("resource_name").is_some());
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Template {
    name: Arc<str>,
    doc: Option<String>,
    slots: Vec<SlotDef>,
    index: FxHashMap<Arc<str>, usize>,
}

impl Template {
    /// Creates a template from its name and slot definitions.
    ///
    /// # Panics
    ///
    /// Panics if two slots share a name — template definitions are static
    /// program structure, so this is a programming error, not input error.
    pub fn new(name: impl AsRef<str>, slots: impl IntoIterator<Item = SlotDef>) -> Template {
        let slots: Vec<SlotDef> = slots.into_iter().collect();
        let mut index = FxHashMap::with_capacity_and_hasher(slots.len(), Default::default());
        for (i, slot) in slots.iter().enumerate() {
            let previous = index.insert(slot.name.clone(), i);
            assert!(previous.is_none(), "duplicate slot `{}` in template", slot.name());
        }
        Template { name: Arc::from(name.as_ref()), doc: None, slots, index }
    }

    /// Template name as the shared `Arc<str>`, for callers keying maps
    /// by name without re-allocating it.
    pub(crate) fn name_arc(&self) -> &Arc<str> {
        &self.name
    }

    /// Attaches a documentation comment (the CLIPS doc-string).
    #[must_use]
    pub fn with_doc(mut self, doc: impl Into<String>) -> Template {
        self.doc = Some(doc.into());
        self
    }

    /// Template name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Documentation string, if any.
    pub fn doc(&self) -> Option<&str> {
        self.doc.as_deref()
    }

    /// Slot definitions in declaration order.
    pub fn slots(&self) -> &[SlotDef] {
        &self.slots
    }

    /// Index of `slot` in declaration order, if it exists.
    pub fn slot_index(&self, slot: &str) -> Option<usize> {
        self.index.get(slot).copied()
    }

    /// Looks up a slot definition by name.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::UnknownSlot`] when the slot does not exist.
    pub fn slot(&self, slot: &str) -> Result<&SlotDef> {
        self.slot_index(slot).map(|i| &self.slots[i]).ok_or_else(|| EngineError::UnknownSlot {
            template: self.name.to_string(),
            slot: slot.to_string(),
        })
    }

    /// Validates a value against a slot's arity, normalising multislot
    /// scalars into one-element multifields (CLIPS does the same).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::SlotArity`] when a single slot receives a
    /// multifield.
    pub fn coerce(&self, slot: &SlotDef, value: Value) -> Result<Value> {
        match (slot.kind(), value) {
            (SlotKind::Single, Value::Multi(m)) => Err(EngineError::SlotArity {
                template: self.name.to_string(),
                slot: slot.name().to_string(),
                message: format!("single-valued slot given multifield of length {}", m.len()),
            }),
            (SlotKind::Single, v) => Ok(v),
            (SlotKind::Multi, Value::Multi(m)) => Ok(Value::Multi(m)),
            (SlotKind::Multi, v) => Ok(Value::multi([v])),
        }
    }
}

impl fmt::Display for Template {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(deftemplate {}", self.name)?;
        for slot in &self.slots {
            let kw = match slot.kind() {
                SlotKind::Single => "slot",
                SlotKind::Multi => "multislot",
            };
            write!(f, " ({kw} {})", slot.name())?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_lookup() {
        let t = Template::new("ev", [SlotDef::single("a"), SlotDef::multi("b")]);
        assert_eq!(t.slot_index("a"), Some(0));
        assert_eq!(t.slot_index("b"), Some(1));
        assert_eq!(t.slot_index("c"), None);
        assert!(matches!(t.slot("c"), Err(EngineError::UnknownSlot { .. })));
    }

    #[test]
    fn coerce_normalises_multislot_scalars() {
        let t = Template::new("ev", [SlotDef::single("a"), SlotDef::multi("b")]);
        let a = t.slots()[0].clone();
        let b = t.slots()[1].clone();
        assert_eq!(t.coerce(&b, Value::Int(1)).unwrap(), Value::multi([Value::Int(1)]));
        assert!(t.coerce(&a, Value::multi([Value::Int(1)])).is_err());
        assert_eq!(t.coerce(&a, Value::Int(1)).unwrap(), Value::Int(1));
    }

    #[test]
    #[should_panic(expected = "duplicate slot")]
    fn duplicate_slots_panic() {
        let _ = Template::new("ev", [SlotDef::single("a"), SlotDef::single("a")]);
    }

    #[test]
    fn implicit_defaults() {
        assert_eq!(SlotDef::single("x").implicit_default(), Value::sym("nil"));
        assert_eq!(SlotDef::multi("x").implicit_default(), Value::empty_multi());
    }

    #[test]
    fn display_shape() {
        let t = Template::new("ev", [SlotDef::single("a"), SlotDef::multi("b")]);
        assert_eq!(t.to_string(), "(deftemplate ev (slot a) (multislot b))");
    }
}
