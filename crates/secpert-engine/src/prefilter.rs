//! Alpha pre-filter: a per-template summary of the constant-slot
//! discriminators every rule's condition elements were compiled to.
//!
//! The batched event pipeline asks, *before* building a fact, whether an
//! event could possibly begin a match anywhere in the rule base. The
//! answer is computed from the same [`compile`]d constant indexes the
//! Rete network uses for its alpha gate ([`MatchStats::alpha_tests`]),
//! so the filter is exact with respect to constant discrimination and
//! conservative with respect to everything else:
//!
//! * a fact **passes** when at least one condition element over its
//!   template accepts it constant-wise — including negated CEs (a fact
//!   that only *blocks* other rules still changes observable state) and
//!   CEs with no constant constraints at all (variables, predicates and
//!   multislot patterns discriminate nothing, so they accept everything);
//! * a fact is **skippable** only when *every* CE over its template
//!   rejects it on a constant slot, or no rule mentions the template at
//!   all. Such a fact can never enter a token, never block a negation
//!   (blocker checks run the same constant gate first), and never fire a
//!   rule — asserting it is observationally inert except for the fact-id
//!   counter, which is exactly why callers skip the assertion entirely
//!   and do so identically at every batch size.
//!
//! Soundness is pinned by `tests/prefilter_soundness.rs`: for random
//! rule sets and facts, anything the filter skips produces zero
//! activations through the unfiltered path under both matchers.
//!
//! [`MatchStats::alpha_tests`]: crate::MatchStats

use std::collections::HashMap;
use std::sync::Arc;

use crate::fact::Fact;
use crate::fxhash::FxHashMap;
use crate::pattern::CondElem;
use crate::rule::Rule;
use crate::template::Template;
use crate::value::Value;

/// One condition element's constant discriminators over a template.
#[derive(Clone, Debug)]
struct AlphaPosition {
    /// `(slot index, literal)` pairs the fact must carry verbatim.
    consts: Arc<[(usize, Value)]>,
}

/// Per-template alpha summary.
#[derive(Clone, Debug, Default)]
struct TemplateAlpha {
    /// Some CE over this template has no constant discriminators, so
    /// every fact of the template passes — the common case for catch-all
    /// cleanup rules. Short-circuits without touching `positions`.
    always: bool,
    /// Constant sets of the remaining CEs; a fact passes when it
    /// satisfies any one of them in full.
    positions: Vec<AlphaPosition>,
}

/// A snapshot of the rule base's alpha constants, built by
/// [`Engine::alpha_prefilter`](crate::Engine::alpha_prefilter).
///
/// The snapshot does not track later rule additions; rebuild it when
/// [`Engine::rules_revision`](crate::Engine::rules_revision) moves.
#[derive(Clone, Debug, Default)]
pub struct AlphaPrefilter {
    templates: HashMap<Arc<str>, TemplateAlpha>,
}

impl AlphaPrefilter {
    /// Builds the filter from a rule base. `consts_of` must yield, for
    /// each rule, the compiled per-CE constant sets in LHS order (the
    /// engine passes the output of its rule compiler).
    pub(crate) fn build<'a>(
        rules: impl IntoIterator<Item = &'a Arc<Rule>>,
        templates: &FxHashMap<Arc<str>, Arc<Template>>,
    ) -> AlphaPrefilter {
        let mut filter = AlphaPrefilter::default();
        for rule in rules {
            let nodes = crate::rete::compile::compile(rule, templates);
            for (ce, node) in rule.lhs().iter().zip(&nodes) {
                let (CondElem::Pattern(p) | CondElem::Not(p)) = ce else { continue };
                let entry = filter.templates.entry(p.template.clone()).or_default();
                if node.consts.is_empty() {
                    entry.always = true;
                } else if !entry.always {
                    entry.positions.push(AlphaPosition { consts: node.consts.clone().into() });
                }
            }
        }
        // Positions are only consulted when `always` is unset; drop the
        // ones accumulated before a catch-all CE arrived.
        for alpha in filter.templates.values_mut() {
            if alpha.always {
                alpha.positions.clear();
            }
        }
        filter
    }

    /// True when no rule constrains `template` beyond constants — every
    /// fact of the template passes without evaluating a single slot.
    pub fn always_passes(&self, template: &str) -> bool {
        self.templates.get(template).is_some_and(|a| a.always)
    }

    /// True when no rule mentions `template` at all: every fact of the
    /// template is skippable without evaluating a single slot.
    pub fn never_matches(&self, template: &str) -> bool {
        !self.templates.contains_key(template)
    }

    /// Could a fact of `template` whose slot values answer `slot_eq`
    /// begin a match anywhere in the rule base? `slot_eq(i, lit)` must
    /// return whether the (possibly not yet constructed) fact's slot `i`
    /// equals the literal — callers evaluate it straight off their event
    /// representation, skipping fact construction for rejects.
    pub fn can_match(
        &self,
        template: &str,
        mut slot_eq: impl FnMut(usize, &Value) -> bool,
    ) -> bool {
        let Some(alpha) = self.templates.get(template) else {
            return false;
        };
        alpha.always
            || alpha
                .positions
                .iter()
                .any(|p| p.consts.iter().all(|(slot, lit)| slot_eq(*slot, lit)))
    }

    /// [`AlphaPrefilter::can_match`] over an already-built fact.
    pub fn passes_fact(&self, fact: &Fact) -> bool {
        self.can_match(fact.template().name(), |slot, lit| &fact.slots()[slot] == lit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;

    fn engine() -> Engine {
        let mut e = Engine::new();
        e.load_str(
            r#"
            (deftemplate ev (slot kind) (slot n) (multislot tags))
            (deftemplate other (slot x))
            (defrule on_open (ev (kind open) (n ?n)) => (printout t ?n crlf))
            (defrule on_close_42 (ev (kind close) (n 42)) => (printout t "x" crlf))
            "#,
        )
        .unwrap();
        e
    }

    #[test]
    fn constant_rejects_are_skippable() {
        let e = engine();
        let f = e.alpha_prefilter();
        let mk = |kind: &str, n: i64| {
            e.fact("ev").unwrap().slot("kind", Value::sym(kind)).slot("n", n).build().unwrap()
        };
        assert!(f.passes_fact(&mk("open", 7)), "matches on_open");
        assert!(f.passes_fact(&mk("close", 42)), "matches on_close_42");
        assert!(!f.passes_fact(&mk("close", 41)), "close with wrong n matches nothing");
        assert!(!f.passes_fact(&mk("read", 42)), "unknown kind matches nothing");
    }

    #[test]
    fn unmentioned_template_never_matches() {
        let e = engine();
        let f = e.alpha_prefilter();
        assert!(f.never_matches("other"));
        let fact = e.fact("other").unwrap().slot("x", 1).build().unwrap();
        assert!(!f.passes_fact(&fact));
    }

    #[test]
    fn catch_all_ce_makes_template_always_pass() {
        let mut e = engine();
        e.load_str("(defrule cleanup (declare (salience -10)) ?f <- (ev) => (retract ?f))")
            .unwrap();
        let f = e.alpha_prefilter();
        assert!(f.always_passes("ev"));
        let fact = e.fact("ev").unwrap().slot("kind", Value::sym("zzz")).build().unwrap();
        assert!(f.passes_fact(&fact), "catch-all cleanup accepts every ev fact");
    }

    #[test]
    fn negated_ces_count_as_match_positions() {
        let mut e = Engine::new();
        e.load_str(
            r#"
            (deftemplate flag (slot kind))
            (deftemplate ev (slot n))
            (defrule unless_armed (ev (n ?n)) (not (flag (kind armed))) =>
              (printout t ?n crlf))
            "#,
        )
        .unwrap();
        let f = e.alpha_prefilter();
        let armed = e.fact("flag").unwrap().slot("kind", Value::sym("armed")).build().unwrap();
        let other = e.fact("flag").unwrap().slot("kind", Value::sym("other")).build().unwrap();
        assert!(f.passes_fact(&armed), "a blocker changes observable state");
        assert!(!f.passes_fact(&other), "non-blocker flag matches nothing");
    }

    #[test]
    fn revision_moves_with_rule_additions() {
        let mut e = engine();
        let r0 = e.rules_revision();
        e.load_str("(defrule extra (ev (kind extra)) => (printout t \"e\" crlf))").unwrap();
        assert_ne!(e.rules_revision(), r0);
        let f = e.alpha_prefilter();
        let fact = e.fact("ev").unwrap().slot("kind", Value::sym("extra")).build().unwrap();
        assert!(f.passes_fact(&fact));
    }
}
