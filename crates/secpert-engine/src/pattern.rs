//! Patterns, condition elements, and the matcher.
//!
//! The grammar follows CLIPS: a rule's left-hand side is a sequence of
//! condition elements — pattern CEs (optionally bound to a fact address
//! with `?f <-`), `not` CEs and `test` CEs. Within a pattern, each slot
//! carries field constraints built from literals, variables (`?x`),
//! multifield variables (`$?x`), wildcards (`?`, `$?`), negation (`~`),
//! alternatives (`|`), conjunction (`&`), predicate constraints
//! (`:(expr)`) and return-value constraints (`=(expr)`).

use std::sync::Arc;

use crate::error::Result;
use crate::expr::{eval, Bindings, Expr, Host};
use crate::fact::Fact;
use crate::value::Value;

/// A primitive field term.
#[derive(Clone, Debug, PartialEq)]
pub enum Term {
    /// Literal value that must be equal (type-strict) to the field.
    Literal(Value),
    /// Single-field variable `?x`: binds on first use, tests thereafter.
    Var(Arc<str>),
    /// Multifield variable `$?x`: binds a sub-sequence of a multislot.
    MultiVar(Arc<str>),
    /// Single-field wildcard `?`.
    Wildcard,
    /// Multifield wildcard `$?`.
    MultiWildcard,
}

/// One atom of a field constraint.
#[derive(Clone, Debug, PartialEq)]
pub enum Atom {
    /// A primitive term.
    Term(Term),
    /// `~atom`: the atom must *not* match.
    Not(Box<Atom>),
    /// `:(expr)`: predicate constraint, truthy under current bindings.
    Pred(Expr),
    /// `=(expr)`: the field must equal the evaluated expression.
    EqExpr(Expr),
}

impl Atom {
    /// True when this atom can consume a variable number of fields.
    fn is_multi(&self) -> bool {
        matches!(self, Atom::Term(Term::MultiVar(_)) | Atom::Term(Term::MultiWildcard))
    }
}

/// A single field constraint: `|`-separated alternatives of `&`-connected
/// atoms, e.g. `?x&~BINARY|SOCKET`.
#[derive(Clone, Debug, PartialEq)]
pub struct FieldConstraint {
    /// Alternatives; the constraint matches if any alternative matches.
    pub alts: Vec<Vec<Atom>>,
}

impl FieldConstraint {
    /// A constraint made of a single atom.
    pub fn atom(atom: Atom) -> FieldConstraint {
        FieldConstraint { alts: vec![vec![atom]] }
    }

    /// A constraint requiring equality with a literal.
    pub fn literal(v: impl Into<Value>) -> FieldConstraint {
        FieldConstraint::atom(Atom::Term(Term::Literal(v.into())))
    }

    /// A constraint binding/testing a single-field variable.
    pub fn var(name: impl AsRef<str>) -> FieldConstraint {
        FieldConstraint::atom(Atom::Term(Term::Var(Arc::from(name.as_ref()))))
    }

    /// True when any atom in any alternative is a multifield term.
    pub fn is_multi(&self) -> bool {
        self.alts.iter().flatten().any(Atom::is_multi)
    }

    /// When this constraint is exactly one alternative of one literal
    /// atom, returns the literal. The Rete compile step uses this to
    /// discriminate on constant slots through the working-memory index.
    pub fn as_single_literal(&self) -> Option<&Value> {
        match self.alts.as_slice() {
            [alt] => match alt.as_slice() {
                [Atom::Term(Term::Literal(v))] => Some(v),
                _ => None,
            },
            _ => None,
        }
    }

    /// When this constraint is exactly one alternative of one `?x` var
    /// atom, returns the variable name. The Rete compile step uses this
    /// to key beta-join memories on shared-variable bindings.
    pub fn as_single_var(&self) -> Option<&Arc<str>> {
        match self.alts.as_slice() {
            [alt] => match alt.as_slice() {
                [Atom::Term(Term::Var(name))] => Some(name),
                _ => None,
            },
            _ => None,
        }
    }

    /// Matches one field value, possibly extending `bindings`.
    ///
    /// Bindings made by a failing alternative are rolled back before the
    /// next alternative is tried. The overall-failure state is
    /// unspecified (callers snapshot), so a sole/last alternative skips
    /// the snapshot entirely — the hot path (one alternative, which is
    /// almost every policy constraint) never clones the bindings.
    fn match_single(
        &self,
        value: &Value,
        bindings: &mut Bindings,
        host: &mut dyn Host,
    ) -> Result<bool> {
        let mut alts = self.alts.iter().peekable();
        while let Some(alt) = alts.next() {
            let snapshot = if alts.peek().is_some() { Some(bindings.clone()) } else { None };
            let mut ok = true;
            for atom in alt {
                if !match_atom(atom, value, bindings, host)? {
                    ok = false;
                    break;
                }
            }
            if ok {
                return Ok(true);
            }
            if let Some(snapshot) = snapshot {
                *bindings = snapshot;
            }
        }
        Ok(false)
    }
}

fn match_atom(
    atom: &Atom,
    value: &Value,
    bindings: &mut Bindings,
    host: &mut dyn Host,
) -> Result<bool> {
    match atom {
        Atom::Term(Term::Literal(lit)) => Ok(lit == value),
        Atom::Term(Term::Var(name)) => match bindings.get(name.as_ref()) {
            Some(bound) => Ok(bound == value),
            None => {
                bindings.insert(name.clone(), value.clone());
                Ok(true)
            }
        },
        Atom::Term(Term::Wildcard) => Ok(true),
        Atom::Term(Term::MultiVar(_)) | Atom::Term(Term::MultiWildcard) => {
            // A multifield term inside a single-field position matches the
            // whole field as a one-element sequence (CLIPS behaviour when
            // `$?x` appears in a single slot).
            if let Atom::Term(Term::MultiVar(name)) = atom {
                match bindings.get(name.as_ref()) {
                    Some(bound) => Ok(bound == &Value::multi([value.clone()])),
                    None => {
                        bindings.insert(name.clone(), Value::multi([value.clone()]));
                        Ok(true)
                    }
                }
            } else {
                Ok(true)
            }
        }
        Atom::Not(inner) => {
            let mut scratch = bindings.clone();
            Ok(!match_atom(inner, value, &mut scratch, host)?)
        }
        Atom::Pred(expr) => Ok(eval(expr, bindings, host)?.is_truthy()),
        Atom::EqExpr(expr) => Ok(&eval(expr, bindings, host)? == value),
    }
}

/// Pattern for one slot.
#[derive(Clone, Debug, PartialEq)]
pub enum SlotPattern {
    /// Constraint on a single-valued slot.
    Single(FieldConstraint),
    /// Sequence of constraints over a multislot's fields; multifield
    /// terms (`$?x`, `$?`) may consume zero or more fields.
    MultiSeq(Vec<FieldConstraint>),
}

/// A pattern condition element.
#[derive(Clone, Debug, PartialEq)]
pub struct PatternCE {
    /// Template the pattern matches against.
    pub template: Arc<str>,
    /// Constrained slots (unmentioned slots match anything).
    pub slots: Vec<(Arc<str>, SlotPattern)>,
    /// Fact-address binding from `?f <- (pattern)`.
    pub binding: Option<Arc<str>>,
}

impl PatternCE {
    /// Creates an unconstrained pattern for `template`.
    pub fn new(template: impl AsRef<str>) -> PatternCE {
        PatternCE { template: Arc::from(template.as_ref()), slots: Vec::new(), binding: None }
    }

    /// Adds a slot constraint.
    #[must_use]
    pub fn slot(mut self, name: impl AsRef<str>, pattern: SlotPattern) -> PatternCE {
        self.slots.push((Arc::from(name.as_ref()), pattern));
        self
    }

    /// Binds the matched fact address to `?name`.
    #[must_use]
    pub fn bind(mut self, name: impl AsRef<str>) -> PatternCE {
        self.binding = Some(Arc::from(name.as_ref()));
        self
    }

    /// Attempts to match `fact`, extending `bindings` on success.
    ///
    /// On failure `bindings` is left in an unspecified (partially
    /// extended) state; callers snapshot before calling.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors from predicate constraints.
    pub fn matches(
        &self,
        fact: &Fact,
        bindings: &mut Bindings,
        host: &mut dyn Host,
    ) -> Result<bool> {
        if fact.template().name() != self.template.as_ref() {
            return Ok(false);
        }
        for (slot, pattern) in &self.slots {
            let value = fact.get(slot)?;
            if !match_slot_value(pattern, value, bindings, host)? {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

/// Matches pre-resolved slot constraints (`compile::Node::residual`)
/// against `fact`. The caller has already dispatched on the template and
/// verified the constant slots, so this is [`PatternCE::matches`] minus
/// the template check, the slot-name lookups and the constant re-checks.
pub(crate) fn match_resolved_slots(
    residual: &[(usize, SlotPattern)],
    fact: &Fact,
    bindings: &mut Bindings,
    host: &mut dyn Host,
) -> Result<bool> {
    for (idx, pattern) in residual {
        if !match_slot_value(pattern, &fact.slots()[*idx], bindings, host)? {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Matches one slot's pattern against its value.
fn match_slot_value(
    pattern: &SlotPattern,
    value: &Value,
    bindings: &mut Bindings,
    host: &mut dyn Host,
) -> Result<bool> {
    match pattern {
        SlotPattern::Single(constraint) => match value {
            // A multifield value in a "single" pattern position can
            // only come from a multislot constrained with a single
            // constraint; match it against the whole sequence.
            Value::Multi(items) if constraint.is_multi() => {
                // The constraint consumes the whole slot, so the
                // slot's own `Arc`-backed value is the sequence —
                // no rebuild.
                match_multi_with_seq(constraint, value, items, bindings, host)
            }
            Value::Multi(items) => {
                match_sequence(std::slice::from_ref(constraint), items, bindings, host)
            }
            v => constraint.match_single(v, bindings, host),
        },
        SlotPattern::MultiSeq(constraints) => {
            let items = value.as_multi()?;
            match constraints.as_slice() {
                // Sole trailing multifield constraint (`($?x)`, the
                // common policy shape): reuse the slot value.
                [single] if single.is_multi() => {
                    match_multi_with_seq(single, value, items, bindings, host)
                }
                _ => match_sequence(constraints, items, bindings, host),
            }
        }
    }
}

/// Backtracking matcher for multifield sequences.
fn match_sequence(
    constraints: &[FieldConstraint],
    items: &[Value],
    bindings: &mut Bindings,
    host: &mut dyn Host,
) -> Result<bool> {
    let Some((first, rest)) = constraints.split_first() else {
        return Ok(items.is_empty());
    };
    if first.is_multi() {
        // A trailing multifield constraint (`... $?x)` — the common
        // shape) can only succeed by consuming everything left, so skip
        // the backtracking walk entirely.
        if rest.is_empty() {
            return match_multi_constraint(first, items, bindings, host);
        }
        // Try consuming 0..=items.len() fields, longest-first to mirror
        // CLIPS's preference is unspecified; shortest-first is fine and
        // deterministic.
        for take in 0..=items.len() {
            let snapshot = bindings.clone();
            if match_multi_constraint(first, &items[..take], bindings, host)?
                && match_sequence(rest, &items[take..], bindings, host)?
            {
                return Ok(true);
            }
            *bindings = snapshot;
        }
        Ok(false)
    } else {
        let Some((head, tail)) = items.split_first() else {
            return Ok(false);
        };
        // No snapshot: every retry point (alternative loops, the
        // multifield take loop above) restores from its own snapshot,
        // and outright failure leaves bindings unspecified by contract.
        Ok(first.match_single(head, bindings, host)? && match_sequence(rest, tail, bindings, host)?)
    }
}

/// Matches a multifield constraint (`$?x`, `$?`, possibly `&`-combined
/// with predicates) against a consumed sub-slice.
fn match_multi_constraint(
    constraint: &FieldConstraint,
    consumed: &[Value],
    bindings: &mut Bindings,
    host: &mut dyn Host,
) -> Result<bool> {
    let seq = Value::multi(consumed.iter().cloned());
    match_multi_with_seq(constraint, &seq, consumed, bindings, host)
}

/// [`match_multi_constraint`] body with the consumed sub-slice already
/// packaged as a multifield `seq` — callers that consume a whole slot
/// pass the slot's own value and skip the rebuild.
fn match_multi_with_seq(
    constraint: &FieldConstraint,
    seq: &Value,
    consumed: &[Value],
    bindings: &mut Bindings,
    host: &mut dyn Host,
) -> Result<bool> {
    let mut alts = constraint.alts.iter().peekable();
    while let Some(alt) = alts.next() {
        let snapshot = if alts.peek().is_some() { Some(bindings.clone()) } else { None };
        let mut ok = true;
        for atom in alt {
            let matched = match atom {
                Atom::Term(Term::MultiVar(name)) => match bindings.get(name.as_ref()) {
                    Some(bound) => bound == seq,
                    None => {
                        bindings.insert(name.clone(), seq.clone());
                        true
                    }
                },
                Atom::Term(Term::MultiWildcard) => true,
                Atom::Pred(expr) => eval(expr, bindings, host)?.is_truthy(),
                Atom::EqExpr(expr) => &eval(expr, bindings, host)? == seq,
                // Single-field atoms inside a multifield constraint require
                // exactly one consumed value.
                other => consumed.len() == 1 && match_atom(other, &consumed[0], bindings, host)?,
            };
            if !matched {
                ok = false;
                break;
            }
        }
        if ok {
            return Ok(true);
        }
        if let Some(snapshot) = snapshot {
            *bindings = snapshot;
        }
    }
    Ok(false)
}

/// A condition element of a rule's left-hand side.
#[derive(Clone, Debug, PartialEq)]
pub enum CondElem {
    /// A positive pattern.
    Pattern(PatternCE),
    /// `(not (pattern))`: no fact may match under the current bindings.
    Not(PatternCE),
    /// `(test (expr))`: expression must be truthy under current bindings.
    Test(Expr),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtins;
    use crate::error::EngineError;
    use crate::fact::{FactBuilder, FactId};
    use crate::template::{SlotDef, Template};

    struct NullHost;
    impl Host for NullHost {
        fn global(&self, name: &str) -> Result<Value> {
            Err(EngineError::UnknownGlobal(name.to_string()))
        }
        fn call(&mut self, name: &str, args: &[Value]) -> Result<Value> {
            builtins::call(name, args)
        }
        fn assert(&mut self, _: &str, _: &[(Arc<str>, Value)]) -> Result<Value> {
            unreachable!()
        }
        fn retract(&mut self, _: FactId) -> Result<()> {
            unreachable!()
        }
        fn print(&mut self, _: &str) -> Result<()> {
            unreachable!()
        }
    }

    fn template() -> Arc<Template> {
        Arc::new(Template::new(
            "ev",
            [SlotDef::single("kind"), SlotDef::single("n"), SlotDef::multi("src")],
        ))
    }

    fn fact(kind: &str, n: i64, src: &[&str]) -> Fact {
        FactBuilder::new(template())
            .slot("kind", Value::sym(kind))
            .slot("n", n)
            .slot("src", Value::multi(src.iter().map(Value::str)))
            .build()
            .unwrap()
    }

    fn matches(p: &PatternCE, f: &Fact) -> (bool, Bindings) {
        let mut b = Bindings::new();
        let ok = p.matches(f, &mut b, &mut NullHost).unwrap();
        (ok, b)
    }

    #[test]
    fn literal_and_variable() {
        let p = PatternCE::new("ev")
            .slot("kind", SlotPattern::Single(FieldConstraint::literal(Value::sym("open"))))
            .slot("n", SlotPattern::Single(FieldConstraint::var("n")));
        let (ok, b) = matches(&p, &fact("open", 7, &[]));
        assert!(ok);
        assert_eq!(b.get("n"), Some(&Value::Int(7)));
        let (ok, _) = matches(&p, &fact("close", 7, &[]));
        assert!(!ok);
    }

    #[test]
    fn variable_consistency_across_slots() {
        let p = PatternCE::new("ev")
            .slot("kind", SlotPattern::Single(FieldConstraint::var("x")))
            .slot("n", SlotPattern::Single(FieldConstraint::var("x")));
        // kind is a symbol, n an int — can never be equal.
        let (ok, _) = matches(&p, &fact("open", 7, &[]));
        assert!(!ok);
    }

    #[test]
    fn negated_literal() {
        let not_open = FieldConstraint::atom(Atom::Not(Box::new(Atom::Term(Term::Literal(
            Value::sym("open"),
        )))));
        let p = PatternCE::new("ev").slot("kind", SlotPattern::Single(not_open));
        assert!(!matches(&p, &fact("open", 1, &[])).0);
        assert!(matches(&p, &fact("close", 1, &[])).0);
    }

    #[test]
    fn alternatives() {
        let c = FieldConstraint {
            alts: vec![
                vec![Atom::Term(Term::Literal(Value::sym("open")))],
                vec![Atom::Term(Term::Literal(Value::sym("close")))],
            ],
        };
        let p = PatternCE::new("ev").slot("kind", SlotPattern::Single(c));
        assert!(matches(&p, &fact("open", 1, &[])).0);
        assert!(matches(&p, &fact("close", 1, &[])).0);
        assert!(!matches(&p, &fact("read", 1, &[])).0);
    }

    #[test]
    fn conjunction_with_predicate() {
        let c = FieldConstraint {
            alts: vec![vec![
                Atom::Term(Term::Var(Arc::from("n"))),
                Atom::Pred(Expr::call("<", [Expr::var("n"), Expr::lit(10)])),
            ]],
        };
        let p = PatternCE::new("ev").slot("n", SlotPattern::Single(c));
        assert!(matches(&p, &fact("open", 7, &[])).0);
        assert!(!matches(&p, &fact("open", 12, &[])).0);
    }

    #[test]
    fn multifield_binding() {
        let p = PatternCE::new("ev").slot(
            "src",
            SlotPattern::MultiSeq(vec![FieldConstraint::atom(Atom::Term(Term::MultiVar(
                Arc::from("all"),
            )))]),
        );
        let (ok, b) = matches(&p, &fact("open", 1, &["a", "b"]));
        assert!(ok);
        assert_eq!(b.get("all"), Some(&Value::multi([Value::str("a"), Value::str("b")])));
    }

    #[test]
    fn multifield_sequence_split() {
        // ($?pre ?x $?post) with ?x forced to "b" by a literal alternative.
        let p = PatternCE::new("ev").slot(
            "src",
            SlotPattern::MultiSeq(vec![
                FieldConstraint::atom(Atom::Term(Term::MultiWildcard)),
                FieldConstraint::literal(Value::str("b")),
                FieldConstraint::atom(Atom::Term(Term::MultiVar(Arc::from("post")))),
            ]),
        );
        let (ok, b) = matches(&p, &fact("open", 1, &["a", "b", "c", "d"]));
        assert!(ok);
        assert_eq!(b.get("post"), Some(&Value::multi([Value::str("c"), Value::str("d")])));
        assert!(!matches(&p, &fact("open", 1, &["a", "c"])).0);
    }

    #[test]
    fn empty_multifield_matches_only_multi_terms() {
        let multi = PatternCE::new("ev").slot(
            "src",
            SlotPattern::MultiSeq(vec![FieldConstraint::atom(Atom::Term(Term::MultiWildcard))]),
        );
        assert!(matches(&multi, &fact("open", 1, &[])).0);
        let single = PatternCE::new("ev")
            .slot("src", SlotPattern::MultiSeq(vec![FieldConstraint::var("x")]));
        assert!(!matches(&single, &fact("open", 1, &[])).0);
    }

    #[test]
    fn wrong_template_never_matches() {
        let p = PatternCE::new("other");
        assert!(!matches(&p, &fact("open", 1, &[])).0);
    }
}
