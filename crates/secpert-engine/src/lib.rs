//! # secpert-engine — a CLIPS-like expert-system engine
//!
//! This crate is the rule-engine substrate beneath HTH's *Secpert*
//! security expert (Moffie & Kaeli, *Hunting Trojan Horses*, NUCAR TR-01,
//! 2006). The paper implemented Secpert on NASA CLIPS; this crate
//! re-implements the CLIPS subset the policy needs:
//!
//! * **templates** (`deftemplate`) with single and multifield slots,
//! * **facts** asserted into working memory with duplicate suppression,
//! * **rules** (`defrule`) whose left-hand sides combine pattern CEs
//!   (literals, variables `?x`, multifield variables `$?x`, wildcards,
//!   `~`/`|`/`&` connective constraints, `:(pred)` and `=(expr)`
//!   constraints), `not` CEs and `test` CEs,
//! * a **match–resolve–act loop** with salience + recency conflict
//!   resolution and refraction,
//! * **globals** (`defglobal`), **native functions** registered from Rust
//!   (the policy's `filter_binary` / `filter_socket`), and
//! * a **CLIPS-syntax text frontend** so rules can be written exactly as
//!   they appear in the paper's Appendix A.
//!
//! ## Example
//!
//! ```
//! use secpert_engine::Engine;
//! # fn main() -> Result<(), secpert_engine::EngineError> {
//! let mut engine = Engine::new();
//! engine.load_str(r#"
//!   (deftemplate system_call_access
//!     (slot system_call_name)
//!     (slot resource_name)
//!     (multislot resource_origin_type))
//!
//!   (defrule check_execve "warn on hardcoded execve"
//!     (system_call_access (system_call_name SYS_execve)
//!                         (resource_name ?name)
//!                         (resource_origin_type $? BINARY $?))
//!     =>
//!     (printout t "Warning [LOW] Found SYS_execve call " ?name crlf))
//! "#)?;
//! engine.assert_str(
//!     "(system_call_access (system_call_name SYS_execve)
//!                          (resource_name \"/bin/ls\")
//!                          (resource_origin_type BINARY))",
//! )?;
//! engine.run(None)?;
//! assert!(engine.take_output().contains("Warning [LOW]"));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod builtins;
pub mod correlate;
mod engine;
mod error;
mod explain;
mod expr;
mod fact;
pub mod fxhash;
pub mod parser;
mod pattern;
mod prefilter;
mod rete;
mod rule;
pub mod snapshot;
mod template;
mod value;

pub use correlate::{CORRELATE_RULES, DIGEST_TEMPLATES};
pub use engine::{Engine, Matcher, NativeFn, Strategy, UserFn};
pub use error::{EngineError, Result};
pub use explain::{FactSupportRecord, FiringRecord};
pub use expr::{eval, Bindings, Expr, Host};
pub use fact::{Fact, FactBuilder, FactId, WorkingMemory};
pub use pattern::{Atom, CondElem, FieldConstraint, PatternCE, SlotPattern, Term};
pub use prefilter::AlphaPrefilter;
pub use rete::MatchStats;
pub use rule::{Rule, RuleBuilder};
pub use snapshot::{EngineSnapshot, FactRecord, SnapshotError};
pub use template::{SlotDef, SlotKind, Template};
pub use value::Value;
