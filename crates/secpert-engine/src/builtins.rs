//! Built-in functions available to every engine instance.
//!
//! Covers the CLIPS arithmetic/comparison/string/multifield primitives the
//! HTH policy relies on (including the paper's `empty-list` predicate).

use crate::error::{EngineError, Result};
use crate::value::Value;

fn arity(name: &str, args: &[Value], expected: usize) -> Result<()> {
    if args.len() == expected {
        Ok(())
    } else {
        Err(EngineError::Type {
            expected: "matching argument count",
            found: format!("{name} called with {} arguments, expects {expected}", args.len()),
        })
    }
}

fn min_arity(name: &str, args: &[Value], expected: usize) -> Result<()> {
    if args.len() >= expected {
        Ok(())
    } else {
        Err(EngineError::Type {
            expected: "matching argument count",
            found: format!(
                "{name} called with {} arguments, expects at least {expected}",
                args.len()
            ),
        })
    }
}

/// Numeric fold that stays integral when all inputs are integers.
fn numeric_fold(
    name: &str,
    args: &[Value],
    int_op: impl Fn(i64, i64) -> Option<i64>,
    float_op: impl Fn(f64, f64) -> f64,
) -> Result<Value> {
    min_arity(name, args, 2)?;
    let all_int = args.iter().all(|v| matches!(v, Value::Int(_)));
    if all_int {
        let mut acc = args[0].as_int()?;
        for v in &args[1..] {
            acc = int_op(acc, v.as_int()?)
                .ok_or_else(|| EngineError::Arithmetic(format!("overflow in {name}")))?;
        }
        Ok(Value::Int(acc))
    } else {
        let mut acc = args[0].as_f64()?;
        for v in &args[1..] {
            acc = float_op(acc, v.as_f64()?);
        }
        Ok(Value::Float(acc))
    }
}

fn compare_chain(args: &[Value], ok: impl Fn(f64, f64) -> bool) -> Result<Value> {
    min_arity("comparison", args, 2)?;
    for pair in args.windows(2) {
        if !ok(pair[0].as_f64()?, pair[1].as_f64()?) {
            return Ok(Value::falsity());
        }
    }
    Ok(Value::truth())
}

/// Dispatches a builtin by name.
///
/// # Errors
///
/// Returns [`EngineError::UnknownFunction`] when `name` is not a builtin,
/// so callers can fall back to user-registered natives.
pub fn call(name: &str, args: &[Value]) -> Result<Value> {
    match name {
        "+" => numeric_fold(name, args, i64::checked_add, |a, b| a + b),
        "-" => numeric_fold(name, args, i64::checked_sub, |a, b| a - b),
        "*" => numeric_fold(name, args, i64::checked_mul, |a, b| a * b),
        "/" => {
            min_arity(name, args, 2)?;
            let mut acc = args[0].as_f64()?;
            for v in &args[1..] {
                let d = v.as_f64()?;
                if d == 0.0 {
                    return Err(EngineError::Arithmetic("division by zero".into()));
                }
                acc /= d;
            }
            if acc.fract() == 0.0 && args.iter().all(|v| matches!(v, Value::Int(_))) {
                Ok(Value::Int(acc as i64))
            } else {
                Ok(Value::Float(acc))
            }
        }
        "mod" => {
            arity(name, args, 2)?;
            let b = args[1].as_int()?;
            if b == 0 {
                return Err(EngineError::Arithmetic("mod by zero".into()));
            }
            Ok(Value::Int(args[0].as_int()?.rem_euclid(b)))
        }
        "abs" => {
            arity(name, args, 1)?;
            match &args[0] {
                Value::Int(i) => Ok(Value::Int(i.abs())),
                v => Ok(Value::Float(v.as_f64()?.abs())),
            }
        }
        "min" => {
            min_arity(name, args, 1)?;
            let mut best = args[0].clone();
            for v in &args[1..] {
                if v.as_f64()? < best.as_f64()? {
                    best = v.clone();
                }
            }
            Ok(best)
        }
        "max" => {
            min_arity(name, args, 1)?;
            let mut best = args[0].clone();
            for v in &args[1..] {
                if v.as_f64()? > best.as_f64()? {
                    best = v.clone();
                }
            }
            Ok(best)
        }
        "<" => compare_chain(args, |a, b| a < b),
        ">" => compare_chain(args, |a, b| a > b),
        "<=" => compare_chain(args, |a, b| a <= b),
        ">=" => compare_chain(args, |a, b| a >= b),
        "=" => compare_chain(args, |a, b| a == b),
        "!=" | "<>" => {
            arity(name, args, 2)?;
            Ok(Value::bool(args[0].as_f64()? != args[1].as_f64()?))
        }
        "eq" => {
            min_arity(name, args, 2)?;
            Ok(Value::bool(args[1..].iter().all(|v| *v == args[0])))
        }
        "neq" => {
            min_arity(name, args, 2)?;
            Ok(Value::bool(args[1..].iter().all(|v| *v != args[0])))
        }
        "str-cat" | "sym-cat" => {
            let mut s = String::new();
            for v in args {
                v.push_display(&mut s);
            }
            Ok(if name == "str-cat" { Value::str(s) } else { Value::sym(s) })
        }
        "upcase" => {
            arity(name, args, 1)?;
            text_map(&args[0], str::to_uppercase)
        }
        "lowcase" => {
            arity(name, args, 1)?;
            text_map(&args[0], str::to_lowercase)
        }
        "str-length" => {
            arity(name, args, 1)?;
            let s = args[0].as_text().ok_or_else(|| type_err("string or symbol", &args[0]))?;
            Ok(Value::Int(s.chars().count() as i64))
        }
        "str-index" => {
            arity(name, args, 2)?;
            let needle = args[0].as_text().ok_or_else(|| type_err("string", &args[0]))?;
            let hay = args[1].as_text().ok_or_else(|| type_err("string", &args[1]))?;
            Ok(match hay.find(needle) {
                Some(i) => Value::Int(i as i64 + 1),
                None => Value::falsity(),
            })
        }
        "create$" => Ok(Value::multi(args.iter().flat_map(|v| match v {
            Value::Multi(m) => m.to_vec(),
            other => vec![other.clone()],
        }))),
        "length$" => {
            arity(name, args, 1)?;
            Ok(Value::Int(args[0].as_multi()?.len() as i64))
        }
        "nth$" => {
            arity(name, args, 2)?;
            let n = args[0].as_int()?;
            let m = args[1].as_multi()?;
            if n < 1 || n as usize > m.len() {
                Ok(Value::falsity())
            } else {
                Ok(m[(n - 1) as usize].clone())
            }
        }
        "first$" => {
            arity(name, args, 1)?;
            let m = args[0].as_multi()?;
            Ok(Value::multi(m.first().cloned()))
        }
        "rest$" => {
            arity(name, args, 1)?;
            let m = args[0].as_multi()?;
            Ok(Value::multi(m.iter().skip(1).cloned()))
        }
        "member$" => {
            arity(name, args, 2)?;
            let m = args[1].as_multi()?;
            Ok(match m.iter().position(|v| *v == args[0]) {
                Some(i) => Value::Int(i as i64 + 1),
                None => Value::falsity(),
            })
        }
        "subsetp" => {
            arity(name, args, 2)?;
            let a = args[0].as_multi()?;
            let b = args[1].as_multi()?;
            Ok(Value::bool(a.iter().all(|v| b.contains(v))))
        }
        // The paper's predicate: true when a multifield is empty. Also
        // accepts FALSE (a filter that found nothing) for robustness.
        "empty-list" => {
            arity(name, args, 1)?;
            Ok(Value::bool(match &args[0] {
                Value::Multi(m) => m.is_empty(),
                v => !v.is_truthy(),
            }))
        }
        "numberp" => unary_pred(args, |v| matches!(v, Value::Int(_) | Value::Float(_))),
        "integerp" => unary_pred(args, |v| matches!(v, Value::Int(_))),
        "floatp" => unary_pred(args, |v| matches!(v, Value::Float(_))),
        "stringp" => unary_pred(args, |v| matches!(v, Value::Str(_))),
        "symbolp" => unary_pred(args, |v| matches!(v, Value::Sym(_))),
        "multifieldp" => unary_pred(args, |v| matches!(v, Value::Multi(_))),
        "integer" => {
            arity(name, args, 1)?;
            Ok(Value::Int(args[0].as_f64()? as i64))
        }
        "float" => {
            arity(name, args, 1)?;
            Ok(Value::Float(args[0].as_f64()?))
        }
        _ => Err(EngineError::UnknownFunction(name.to_string())),
    }
}

fn unary_pred(args: &[Value], pred: impl Fn(&Value) -> bool) -> Result<Value> {
    arity("predicate", args, 1)?;
    Ok(Value::bool(pred(&args[0])))
}

fn text_map(v: &Value, f: impl Fn(&str) -> String) -> Result<Value> {
    match v {
        Value::Sym(s) => Ok(Value::sym(f(s))),
        Value::Str(s) => Ok(Value::str(f(s))),
        other => Err(type_err("string or symbol", other)),
    }
}

fn type_err(expected: &'static str, found: &Value) -> EngineError {
    EngineError::Type { expected, found: found.to_string() }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(name: &str, args: &[Value]) -> Value {
        call(name, args).unwrap()
    }

    #[test]
    fn arithmetic_keeps_integers_integral() {
        assert_eq!(c("+", &[Value::Int(2), Value::Int(3)]), Value::Int(5));
        assert_eq!(c("+", &[Value::Int(2), Value::Float(3.0)]), Value::Float(5.0));
        assert_eq!(c("*", &[Value::Int(4), Value::Int(5)]), Value::Int(20));
        assert_eq!(c("/", &[Value::Int(7), Value::Int(2)]), Value::Float(3.5));
        assert_eq!(c("/", &[Value::Int(8), Value::Int(2)]), Value::Int(4));
    }

    #[test]
    fn division_by_zero_errors() {
        assert!(matches!(
            call("/", &[Value::Int(1), Value::Int(0)]),
            Err(EngineError::Arithmetic(_))
        ));
        assert!(call("mod", &[Value::Int(1), Value::Int(0)]).is_err());
    }

    #[test]
    fn comparison_chains() {
        assert_eq!(c("<", &[Value::Int(1), Value::Int(2), Value::Int(3)]), Value::truth());
        assert_eq!(c("<", &[Value::Int(1), Value::Int(3), Value::Int(2)]), Value::falsity());
        assert_eq!(c(">=", &[Value::Int(3), Value::Int(3)]), Value::truth());
    }

    #[test]
    fn eq_is_type_strict_but_numeric_eq_is_not() {
        assert_eq!(c("eq", &[Value::Int(1), Value::Float(1.0)]), Value::falsity());
        assert_eq!(c("=", &[Value::Int(1), Value::Float(1.0)]), Value::truth());
        assert_eq!(c("neq", &[Value::sym("a"), Value::sym("b")]), Value::truth());
    }

    #[test]
    fn multifield_functions() {
        let m = Value::multi([Value::Int(10), Value::Int(20), Value::Int(30)]);
        assert_eq!(c("length$", std::slice::from_ref(&m)), Value::Int(3));
        assert_eq!(c("nth$", &[Value::Int(2), m.clone()]), Value::Int(20));
        assert_eq!(c("nth$", &[Value::Int(9), m.clone()]), Value::falsity());
        assert_eq!(c("member$", &[Value::Int(30), m.clone()]), Value::Int(3));
        assert_eq!(c("member$", &[Value::Int(99), m.clone()]), Value::falsity());
        assert_eq!(c("first$", std::slice::from_ref(&m)), Value::multi([Value::Int(10)]));
        assert_eq!(c("rest$", &[m]), Value::multi([Value::Int(20), Value::Int(30)]));
    }

    #[test]
    fn create_splices() {
        let nested = Value::multi([Value::Int(2), Value::Int(3)]);
        let out = c("create$", &[Value::Int(1), nested]);
        assert_eq!(out, Value::multi([Value::Int(1), Value::Int(2), Value::Int(3)]));
    }

    #[test]
    fn empty_list_matches_paper_usage() {
        assert_eq!(c("empty-list", &[Value::empty_multi()]), Value::truth());
        assert_eq!(c("empty-list", &[Value::multi([Value::Int(1)])]), Value::falsity());
        assert_eq!(c("empty-list", &[Value::falsity()]), Value::truth());
    }

    #[test]
    fn string_functions() {
        assert_eq!(c("str-cat", &[Value::str("/bin/"), Value::sym("ls")]), Value::str("/bin/ls"));
        assert_eq!(c("str-length", &[Value::str("abc")]), Value::Int(3));
        assert_eq!(c("str-index", &[Value::str("in"), Value::str("binary")]), Value::Int(2));
        assert_eq!(c("str-index", &[Value::str("zz"), Value::str("binary")]), Value::falsity());
        assert_eq!(c("upcase", &[Value::sym("low")]), Value::sym("LOW"));
    }

    #[test]
    fn type_predicates() {
        assert_eq!(c("numberp", &[Value::Int(1)]), Value::truth());
        assert_eq!(c("stringp", &[Value::sym("x")]), Value::falsity());
        assert_eq!(c("multifieldp", &[Value::empty_multi()]), Value::truth());
    }

    #[test]
    fn unknown_function_falls_through() {
        assert!(matches!(call("no-such-fn", &[]), Err(EngineError::UnknownFunction(_))));
    }

    #[test]
    fn subsetp() {
        let a = Value::multi([Value::Int(1)]);
        let b = Value::multi([Value::Int(1), Value::Int(2)]);
        assert_eq!(c("subsetp", &[a.clone(), b.clone()]), Value::truth());
        assert_eq!(c("subsetp", &[b, a]), Value::falsity());
    }
}
