//! Engine state snapshots: serialize a quiescent engine's mutable state
//! and rebuild it inside a freshly-loaded policy.
//!
//! A snapshot is taken *between* events, when the agenda is empty —
//! [`crate::Engine::run`] always drains to quiescence, so every
//! complete, unblocked match has fired and is recorded in the
//! refraction set. That makes the agenda itself redundant: restoring
//! the facts through the normal assert path re-derives every complete
//! match, and refraction suppresses exactly the ones that already
//! fired, leaving the agenda empty again. What must be carried is:
//!
//! * the live facts, with their exact ids (ids are recency, and
//!   conflict resolution depends on them),
//! * the fact-id counter (so post-restore ids continue the sequence),
//! * the refraction set, pruned to keys whose facts are all live — a
//!   key naming a dead id can never be re-activated because ids are
//!   never reused,
//! * the activation sequence and fired-total counters (activation
//!   recency and [`crate::explain::FiringRecord::seq`] continuity),
//! * the [`MatchStats`] counters, restored wholesale because the
//!   network rebuild perturbs them.
//!
//! Rule bases, templates, globals and native functions are *not*
//! serialized: a snapshot is only meaningful against the same policy,
//! and the restoring host is expected to load it first.
//!
//! The byte format is a single self-contained payload using the same
//! primitives as the fleet wire codec (LEB128 varints, order-dependent
//! string interning, IEEE CRC32 available to framing layers), but kept
//! dependency-free so the engine crate stays at the bottom of the
//! workspace graph.

use std::sync::Arc;

use crate::error::EngineError;
use crate::fact::FactId;
use crate::rete::MatchStats;
use crate::value::Value;

/// Why a snapshot could not be decoded or restored.
#[derive(Debug)]
pub enum SnapshotError {
    /// The byte stream is truncated, corrupt, or not a snapshot.
    Corrupt(String),
    /// The engine rejected the snapshot (policy mismatch, or restore
    /// re-assertion failed).
    Engine(EngineError),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Corrupt(m) => write!(f, "corrupt snapshot: {m}"),
            SnapshotError::Engine(e) => write!(f, "snapshot rejected: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<EngineError> for SnapshotError {
    fn from(e: EngineError) -> SnapshotError {
        SnapshotError::Engine(e)
    }
}

/// One live fact as carried by a snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct FactRecord {
    /// The fact's working-memory id ([`FactId::raw`]).
    pub id: u64,
    /// Template name (must exist in the restoring engine).
    pub template: Arc<str>,
    /// Slot values in template declaration order.
    pub slots: Vec<Value>,
}

/// A quiescent engine's serializable state. See the module docs for
/// what is (and deliberately is not) carried.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EngineSnapshot {
    /// Live facts in ascending id order.
    pub facts: Vec<FactRecord>,
    /// The working-memory id counter (last id handed out).
    pub next_fact_id: u64,
    /// Refraction keys whose facts are all live: rule name plus the
    /// fact tuple (`None` for `not`/`test` positions).
    pub refraction: Vec<(Arc<str>, Vec<Option<u64>>)>,
    /// Activation sequence counter (recency for conflict resolution).
    pub activation_seq: u64,
    /// Rules fired over the engine's lifetime.
    pub fired_total: u64,
    /// Match-network counters, restored wholesale after the rebuild.
    pub match_stats: MatchStats,
}

const VALUE_SYM: u8 = 0;
const VALUE_STR: u8 = 1;
const VALUE_INT: u8 = 2;
const VALUE_FLOAT: u8 = 3;
const VALUE_MULTI: u8 = 4;
const VALUE_FACT: u8 = 5;

impl EngineSnapshot {
    /// Serializes the snapshot. The payload carries no framing; callers
    /// that persist it should add a header and a [`crc32`] (the journal
    /// framing shape) so torn writes are detectable.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let mut strings = Interner::default();
        put_varint(&mut out, self.next_fact_id);
        put_varint(&mut out, self.activation_seq);
        put_varint(&mut out, self.fired_total);
        for counter in stats_fields(&self.match_stats) {
            put_varint(&mut out, counter);
        }
        put_varint(&mut out, self.facts.len() as u64);
        for fact in &self.facts {
            put_varint(&mut out, fact.id);
            strings.put(&mut out, &fact.template);
            put_varint(&mut out, fact.slots.len() as u64);
            for value in &fact.slots {
                put_value(&mut out, &mut strings, value);
            }
        }
        put_varint(&mut out, self.refraction.len() as u64);
        for (rule, tuple) in &self.refraction {
            strings.put(&mut out, rule);
            put_varint(&mut out, tuple.len() as u64);
            for slot in tuple {
                // 0 = None, id + 1 = Some(id).
                put_varint(&mut out, slot.map_or(0, |id| id + 1));
            }
        }
        out
    }

    /// Decodes a payload produced by [`EngineSnapshot::encode`].
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Corrupt`] on truncation, trailing bytes, or
    /// malformed content.
    pub fn decode(bytes: &[u8]) -> std::result::Result<EngineSnapshot, SnapshotError> {
        let mut r = ByteReader::new(bytes);
        let mut strings: Vec<Arc<str>> = Vec::new();
        let next_fact_id = r.varint()?;
        let activation_seq = r.varint()?;
        let fired_total = r.varint()?;
        let mut counters = [0u64; STATS_FIELDS];
        for counter in &mut counters {
            *counter = r.varint()?;
        }
        let match_stats = stats_from_fields(&counters);
        let n_facts = r.varint()? as usize;
        let mut facts = Vec::with_capacity(n_facts.min(1 << 16));
        let mut prev_id = 0u64;
        for _ in 0..n_facts {
            let id = r.varint()?;
            if id <= prev_id {
                return Err(SnapshotError::Corrupt(format!(
                    "fact ids not ascending ({prev_id} then {id})"
                )));
            }
            prev_id = id;
            let template = get_str(&mut r, &mut strings)?;
            let n_slots = r.varint()? as usize;
            let mut slots = Vec::with_capacity(n_slots.min(1 << 12));
            for _ in 0..n_slots {
                slots.push(get_value(&mut r, &mut strings)?);
            }
            facts.push(FactRecord { id, template, slots });
        }
        let n_refraction = r.varint()? as usize;
        let mut refraction = Vec::with_capacity(n_refraction.min(1 << 16));
        for _ in 0..n_refraction {
            let rule = get_str(&mut r, &mut strings)?;
            let tuple_len = r.varint()? as usize;
            let mut tuple = Vec::with_capacity(tuple_len.min(1 << 8));
            for _ in 0..tuple_len {
                let raw = r.varint()?;
                tuple.push(raw.checked_sub(1));
            }
            refraction.push((rule, tuple));
        }
        if !r.is_empty() {
            return Err(SnapshotError::Corrupt(format!(
                "{} trailing bytes after snapshot",
                r.remaining()
            )));
        }
        Ok(EngineSnapshot {
            facts,
            next_fact_id,
            refraction,
            activation_seq,
            fired_total,
            match_stats,
        })
    }
}

const STATS_FIELDS: usize = 12;

fn stats_fields(s: &MatchStats) -> [u64; STATS_FIELDS] {
    [
        s.alpha_tests,
        s.alpha_hits,
        s.join_attempts,
        s.join_matches,
        s.neg_checks,
        s.tokens_created,
        s.tokens_removed,
        s.tokens_live,
        s.index_lookups,
        s.index_hits,
        s.activations,
        s.resequences,
    ]
}

fn stats_from_fields(f: &[u64; STATS_FIELDS]) -> MatchStats {
    MatchStats {
        alpha_tests: f[0],
        alpha_hits: f[1],
        join_attempts: f[2],
        join_matches: f[3],
        neg_checks: f[4],
        tokens_created: f[5],
        tokens_removed: f[6],
        tokens_live: f[7],
        index_lookups: f[8],
        index_hits: f[9],
        activations: f[10],
        resequences: f[11],
    }
}

fn put_value(out: &mut Vec<u8>, strings: &mut Interner, value: &Value) {
    match value {
        Value::Sym(s) => {
            out.push(VALUE_SYM);
            strings.put(out, s);
        }
        Value::Str(s) => {
            out.push(VALUE_STR);
            strings.put(out, s);
        }
        Value::Int(i) => {
            out.push(VALUE_INT);
            put_varint(out, zigzag(*i));
        }
        Value::Float(f) => {
            out.push(VALUE_FLOAT);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Multi(items) => {
            out.push(VALUE_MULTI);
            put_varint(out, items.len() as u64);
            for item in items.iter() {
                put_value(out, strings, item);
            }
        }
        Value::Fact(id) => {
            out.push(VALUE_FACT);
            put_varint(out, id.raw());
        }
    }
}

fn get_value(
    r: &mut ByteReader<'_>,
    strings: &mut Vec<Arc<str>>,
) -> std::result::Result<Value, SnapshotError> {
    match r.byte()? {
        VALUE_SYM => Ok(Value::Sym(get_str(r, strings)?)),
        VALUE_STR => Ok(Value::Str(get_str(r, strings)?)),
        VALUE_INT => Ok(Value::Int(unzigzag(r.varint()?))),
        VALUE_FLOAT => {
            let bytes: [u8; 8] =
                r.take(8)?.try_into().map_err(|_| SnapshotError::Corrupt("short float".into()))?;
            Ok(Value::Float(f64::from_bits(u64::from_le_bytes(bytes))))
        }
        VALUE_MULTI => {
            let len = r.varint()? as usize;
            let mut items = Vec::with_capacity(len.min(1 << 12));
            for _ in 0..len {
                items.push(get_value(r, strings)?);
            }
            Ok(Value::Multi(items.into()))
        }
        VALUE_FACT => Ok(Value::Fact(FactId::from_raw(r.varint()?))),
        tag => Err(SnapshotError::Corrupt(format!("unknown value tag {tag}"))),
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends `v` as an LEB128 varint (the wire codec's integer shape).
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Order-dependent string interning, mirroring the wire codec: a known
/// string is its table index + 1; a new string is a `0` marker followed
/// by its length and bytes, implicitly assigned the next index.
#[derive(Default)]
struct Interner {
    known: std::collections::HashMap<Arc<str>, u64>,
}

impl Interner {
    fn put(&mut self, out: &mut Vec<u8>, s: &Arc<str>) {
        if let Some(&idx) = self.known.get(s) {
            put_varint(out, idx + 1);
            return;
        }
        put_varint(out, 0);
        put_varint(out, s.len() as u64);
        out.extend_from_slice(s.as_bytes());
        let idx = self.known.len() as u64;
        self.known.insert(s.clone(), idx);
    }
}

fn get_str(
    r: &mut ByteReader<'_>,
    strings: &mut Vec<Arc<str>>,
) -> std::result::Result<Arc<str>, SnapshotError> {
    let marker = r.varint()?;
    if marker == 0 {
        let len = r.varint()? as usize;
        let bytes = r.take(len)?;
        let s: Arc<str> = std::str::from_utf8(bytes)
            .map_err(|e| SnapshotError::Corrupt(format!("bad utf-8: {e}")))?
            .into();
        strings.push(s.clone());
        return Ok(s);
    }
    strings
        .get((marker - 1) as usize)
        .cloned()
        .ok_or_else(|| SnapshotError::Corrupt(format!("string ref {marker} out of range")))
}

/// A bounds-checked byte cursor over a snapshot payload.
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `bytes`, positioned at the start.
    pub fn new(bytes: &'a [u8]) -> ByteReader<'a> {
        ByteReader { bytes, pos: 0 }
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Corrupt`] at end of input.
    pub fn byte(&mut self) -> std::result::Result<u8, SnapshotError> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or_else(|| SnapshotError::Corrupt("unexpected end of snapshot".into()))?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Corrupt`] when fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> std::result::Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| SnapshotError::Corrupt("unexpected end of snapshot".into()))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads an LEB128 varint.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Corrupt`] on truncation or overflow.
    pub fn varint(&mut self) -> std::result::Result<u64, SnapshotError> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.byte()?;
            if shift >= 64 || (shift == 63 && byte > 1) {
                return Err(SnapshotError::Corrupt("varint overflow".into()));
            }
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos == self.bytes.len()
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }
}

/// IEEE CRC32 (the journal framing checksum), recomputed here so the
/// engine crate stays dependency-free. Byte-identical to the fleet wire
/// codec's `crc32`.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut crc = i as u32;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
                bit += 1;
            }
            table[i] = crc;
            i += 1;
        }
        table
    };
    let mut crc = u32::MAX;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xff) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EngineSnapshot {
        EngineSnapshot {
            facts: vec![
                FactRecord { id: 1, template: "initial-fact".into(), slots: vec![] },
                FactRecord {
                    id: 7,
                    template: "event".into(),
                    slots: vec![
                        Value::sym("SYS_open"),
                        Value::str("/etc/passwd"),
                        Value::Int(-3),
                        Value::Float(2.5),
                        Value::multi([Value::sym("FILE"), Value::Int(9)]),
                        Value::Fact(FactId::from_raw(1)),
                    ],
                },
            ],
            next_fact_id: 42,
            refraction: vec![
                ("rule-a".into(), vec![Some(1), None, Some(7)]),
                ("rule-b".into(), vec![Some(7)]),
            ],
            activation_seq: 99,
            fired_total: 12,
            match_stats: MatchStats { alpha_tests: 5, tokens_live: 3, ..MatchStats::default() },
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let snap = sample();
        let bytes = snap.encode();
        let back = EngineSnapshot::decode(&bytes).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn truncation_is_detected_at_every_length() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            assert!(
                EngineSnapshot::decode(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded cleanly"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = sample().encode();
        bytes.push(0);
        assert!(matches!(EngineSnapshot::decode(&bytes), Err(SnapshotError::Corrupt(_))));
    }

    #[test]
    fn non_ascending_fact_ids_are_rejected() {
        let mut snap = sample();
        snap.facts.reverse();
        assert!(EngineSnapshot::decode(&snap.encode()).is_err());
    }

    #[test]
    fn zigzag_round_trips_extremes() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 1 << 40, -(1 << 40)] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The standard IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
