//! Facts and working memory.

use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::error::{EngineError, Result};
use crate::fxhash::{FxHashMap, FxHasher};
use crate::template::Template;
use crate::value::Value;

/// Identifier of an asserted fact. Ids are monotonically increasing and
/// never reused, so they double as recency for conflict resolution.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FactId(u64);

impl FactId {
    /// Raw numeric id (the `N` in CLIPS's `f-N`).
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuilds an id from its raw number (snapshot restore only —
    /// fabricating ids for a live working memory violates monotonicity).
    pub(crate) fn from_raw(raw: u64) -> FactId {
        FactId(raw)
    }
}

impl fmt::Display for FactId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f-{}", self.0)
    }
}

/// An immutable fact: a template instance with one value per slot.
#[derive(Clone, Debug, PartialEq)]
pub struct Fact {
    template: Arc<Template>,
    slots: Vec<Value>,
}

impl Fact {
    /// Creates a fact with every slot set to its (implicit) default.
    pub fn with_defaults(template: Arc<Template>) -> Fact {
        let slots = template
            .slots()
            .iter()
            .map(|s| s.default().cloned().unwrap_or_else(|| s.implicit_default()))
            .collect();
        Fact { template, slots }
    }

    /// Rebuilds a fact from already-coerced slot values (snapshot
    /// restore). The values are trusted to have passed coercion when the
    /// fact was first built; only the arity is re-checked.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::SlotArity`] when the slot count does not
    /// match the template.
    pub(crate) fn from_parts(template: Arc<Template>, slots: Vec<Value>) -> Result<Fact> {
        if slots.len() != template.slots().len() {
            return Err(EngineError::SlotArity {
                template: template.name().to_string(),
                slot: "*".to_string(),
                message: format!("{} values for {} slots", slots.len(), template.slots().len()),
            });
        }
        Ok(Fact { template, slots })
    }

    /// The fact's template.
    pub fn template(&self) -> &Arc<Template> {
        &self.template
    }

    /// Slot values in template declaration order.
    pub fn slots(&self) -> &[Value] {
        &self.slots
    }

    /// Value of slot `name`.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::UnknownSlot`] when the template lacks `name`.
    pub fn get(&self, name: &str) -> Result<&Value> {
        let i = self.template.slot_index(name).ok_or_else(|| EngineError::UnknownSlot {
            template: self.template.name().to_string(),
            slot: name.to_string(),
        })?;
        Ok(&self.slots[i])
    }

    /// Sets slot `name` to `value`, coercing per the slot kind.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::UnknownSlot`] or [`EngineError::SlotArity`].
    pub fn set(&mut self, name: &str, value: Value) -> Result<()> {
        let i = self.template.slot_index(name).ok_or_else(|| EngineError::UnknownSlot {
            template: self.template.name().to_string(),
            slot: name.to_string(),
        })?;
        let def = &self.template.slots()[i];
        self.slots[i] = self.template.coerce(def, value)?;
        Ok(())
    }
}

impl fmt::Display for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}", self.template.name())?;
        for (def, value) in self.template.slots().iter().zip(&self.slots) {
            match value {
                Value::Multi(items) => {
                    write!(f, " ({}", def.name())?;
                    for item in items.iter() {
                        write!(f, " {item}")?;
                    }
                    write!(f, ")")?;
                }
                v => write!(f, " ({} {v})", def.name())?,
            }
        }
        write!(f, ")")
    }
}

/// Builder for facts, used by host code that feeds events into the engine.
///
/// ```
/// use secpert_engine::{FactBuilder, Template, SlotDef, Value};
/// use std::sync::Arc;
/// let t = Arc::new(Template::new("ev", [SlotDef::single("time"), SlotDef::multi("src")]));
/// let fact = FactBuilder::new(t)
///     .slot("time", 33)
///     .slot("src", Value::multi([Value::sym("BINARY")]))
///     .build()
///     .unwrap();
/// assert_eq!(fact.get("time").unwrap(), &Value::Int(33));
/// ```
#[derive(Debug)]
pub struct FactBuilder {
    fact: Fact,
    error: Option<EngineError>,
}

impl FactBuilder {
    /// Starts building a fact of the given template, slots at defaults.
    pub fn new(template: Arc<Template>) -> FactBuilder {
        FactBuilder { fact: Fact::with_defaults(template), error: None }
    }

    /// Sets a slot; errors are deferred to [`FactBuilder::build`].
    #[must_use]
    pub fn slot(mut self, name: &str, value: impl Into<Value>) -> FactBuilder {
        if self.error.is_none() {
            if let Err(e) = self.fact.set(name, value.into()) {
                self.error = Some(e);
            }
        }
        self
    }

    /// Finishes the fact.
    ///
    /// # Errors
    ///
    /// Returns the first slot error encountered while building.
    pub fn build(self) -> Result<Fact> {
        match self.error {
            Some(e) => Err(e),
            None => Ok(self.fact),
        }
    }
}

/// Per-template slot-value index: one `value -> ids` map per slot, in
/// template declaration order. Iteration over a bucket is ascending by
/// fact id (assertion order), matching `ids_of`.
type SlotIndex = Vec<FxHashMap<Value, BTreeSet<FactId>>>;

/// Hash of a fact's identity (template name + slot values), used to make
/// duplicate suppression O(1) instead of a scan of the template extent.
fn content_key(fact: &Fact) -> u64 {
    let mut h = FxHasher::default();
    fact.template().name().hash(&mut h);
    fact.slots().hash(&mut h);
    h.finish()
}

/// Working memory: the set of currently asserted facts.
///
/// Beyond the per-template extent, two hash indexes are maintained on
/// every assert/retract: a content index for duplicate suppression and a
/// per-slot value index (the alpha-network discrimination used by the
/// Rete matcher's constant and join lookups).
#[derive(Debug, Default)]
pub struct WorkingMemory {
    facts: FxHashMap<FactId, Arc<Fact>>,
    by_template: FxHashMap<Arc<str>, Vec<FactId>>,
    by_content: FxHashMap<u64, Vec<FactId>>,
    by_slot_value: FxHashMap<Arc<str>, SlotIndex>,
    /// Content key of every live fact, so retract reuses the hash the
    /// assert computed instead of re-hashing the whole fact.
    content_keys: FxHashMap<FactId, u64>,
    /// `None` indexes every slot (standalone use); `Some(plan)` indexes
    /// only the registered `(template, slot)` pairs — the engine
    /// registers exactly the slots its compiled rule nodes probe, so
    /// assert/retract skip maintaining buckets nothing ever reads.
    index_plan: Option<HashMap<Arc<str>, Vec<usize>>>,
    next_id: u64,
}

impl WorkingMemory {
    /// Creates an empty working memory.
    pub fn new() -> WorkingMemory {
        WorkingMemory::default()
    }

    /// Switches the slot-value index from index-everything to an explicit
    /// registry: from now on only slots registered via
    /// [`WorkingMemory::index_slot`] are maintained, and [`WorkingMemory::ids_with`]
    /// answers only for those. Existing buckets are dropped.
    pub fn restrict_index(&mut self) {
        if self.index_plan.is_none() {
            self.index_plan = Some(HashMap::new());
            self.by_slot_value.clear();
        }
    }

    /// Registers `(template, slot)` for indexing under a restricted plan
    /// and backfills the bucket from live facts. A no-op when the plan
    /// is index-everything or the pair is already registered.
    pub fn index_slot(&mut self, template: &str, slot: usize) {
        let Some(plan) = &mut self.index_plan else { return };
        match plan.get_mut(template) {
            Some(slots) if slots.contains(&slot) => return,
            Some(slots) => slots.push(slot),
            None => {
                plan.insert(Arc::from(template), vec![slot]);
            }
        }
        // Backfill from the current extent so late rule additions see
        // facts asserted before them.
        let ids = self.by_template.get(template).cloned().unwrap_or_default();
        for id in ids {
            let fact = self.facts[&id].clone();
            let index = self
                .by_slot_value
                .entry(Arc::from(template))
                .or_insert_with(|| vec![FxHashMap::default(); fact.template().slots().len()]);
            if let Some(value) = fact.slots().get(slot) {
                index[slot].entry(value.clone()).or_default().insert(id);
            }
        }
    }

    /// Asserts `fact`, returning its new id, or `None` when an identical
    /// fact is already present (CLIPS duplicate suppression).
    pub fn assert(&mut self, fact: Fact) -> Option<FactId> {
        let key = content_key(&fact);
        if let Some(ids) = self.by_content.get(&key) {
            if ids.iter().any(|id| *self.facts[id] == fact) {
                return None;
            }
        }
        let name: Arc<str> = fact.template().name_arc().clone();
        self.next_id += 1;
        let id = FactId(self.next_id);
        match self.index_plan.as_ref().and_then(|plan| plan.get(&name)) {
            Some(slots) => {
                let planned: Vec<usize> = slots.clone();
                let index = self
                    .by_slot_value
                    .entry(name.clone())
                    .or_insert_with(|| vec![FxHashMap::default(); fact.template().slots().len()]);
                for i in planned {
                    index[i].entry(fact.slots()[i].clone()).or_default().insert(id);
                }
            }
            None if self.index_plan.is_some() => {} // restricted, template unregistered
            None => {
                let index = self
                    .by_slot_value
                    .entry(name.clone())
                    .or_insert_with(|| vec![FxHashMap::default(); fact.template().slots().len()]);
                for (i, value) in fact.slots().iter().enumerate() {
                    index[i].entry(value.clone()).or_default().insert(id);
                }
            }
        }
        self.by_content.entry(key).or_default().push(id);
        self.content_keys.insert(id, key);
        self.facts.insert(id, Arc::new(fact));
        self.by_template.entry(name).or_default().push(id);
        Some(id)
    }

    /// Retracts the fact with the given id.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::NoSuchFact`] when the id is not live.
    pub fn retract(&mut self, id: FactId) -> Result<Arc<Fact>> {
        let fact = self.facts.remove(&id).ok_or(EngineError::NoSuchFact(id.raw()))?;
        if let Some(ids) = self.by_template.get_mut(fact.template().name()) {
            ids.retain(|other| *other != id);
        }
        let key = self.content_keys.remove(&id).unwrap_or_else(|| content_key(&fact));
        if let Some(ids) = self.by_content.get_mut(&key) {
            ids.retain(|other| *other != id);
            if ids.is_empty() {
                self.by_content.remove(&key);
            }
        }
        if let Some(index) = self.by_slot_value.get_mut(fact.template().name()) {
            let mut unindex = |i: usize, value: &Value| {
                if let Some(bucket) = index[i].get_mut(value) {
                    bucket.remove(&id);
                    if bucket.is_empty() {
                        index[i].remove(value);
                    }
                }
            };
            match self.index_plan.as_ref().and_then(|plan| plan.get(fact.template().name())) {
                Some(slots) => {
                    for &i in slots {
                        unindex(i, &fact.slots()[i]);
                    }
                }
                None if self.index_plan.is_some() => {}
                None => {
                    for (i, value) in fact.slots().iter().enumerate() {
                        unindex(i, value);
                    }
                }
            }
        }
        Ok(fact)
    }

    /// Looks up a live fact.
    pub fn get(&self, id: FactId) -> Option<&Arc<Fact>> {
        self.facts.get(&id)
    }

    /// Ids of live facts of the given template, in assertion order.
    pub fn ids_of(&self, template: &str) -> &[FactId] {
        self.by_template.get(template).map_or(&[], Vec::as_slice)
    }

    /// Ids of live facts of `template` whose slot at index `slot` equals
    /// `value` exactly, ascending by id. Returns `None` when no fact
    /// matches (including unknown templates). Under a restricted plan
    /// ([`WorkingMemory::restrict_index`]) only registered slots are
    /// queryable; unregistered ones answer `None` regardless of facts.
    pub fn ids_with(
        &self,
        template: &str,
        slot: usize,
        value: &Value,
    ) -> Option<&BTreeSet<FactId>> {
        self.by_slot_value.get(template)?.get(slot)?.get(value)
    }

    /// Iterates over all live facts in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (FactId, &Arc<Fact>)> {
        self.facts.iter().map(|(id, f)| (*id, f))
    }

    /// Number of live facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// True when no facts are asserted.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// The id counter's current position (the last id handed out).
    pub(crate) fn next_id(&self) -> u64 {
        self.next_id
    }

    /// Forces the id counter so the next assert hands out `next + 1`.
    /// Snapshot restore only: replaying facts with their original ids
    /// requires positioning the counter just below each recorded id.
    pub(crate) fn set_next_id(&mut self, next: u64) {
        self.next_id = next;
    }

    /// Approximate resident bytes: facts (template refs share their
    /// `Arc<Template>`, so only slot payloads count per fact) plus the
    /// per-template, content, and slot-value indexes. An estimate for
    /// memory budgeting, not an allocator measurement.
    pub fn approx_bytes(&self) -> usize {
        let mut bytes = 0usize;
        for fact in self.facts.values() {
            bytes += std::mem::size_of::<Fact>() + 48; // Arc + map slot overhead
            for value in fact.slots() {
                bytes += value_approx_bytes(value);
            }
        }
        // Index entries: id lists in by_template/by_content, and one
        // (Value, BTreeSet node) pair per indexed slot occurrence.
        bytes += self.by_template.values().map(|ids| 32 + ids.len() * 8).sum::<usize>();
        bytes += self.by_content.len() * 32;
        bytes += self.content_keys.len() * 16;
        for index in self.by_slot_value.values() {
            for buckets in index {
                for (value, ids) in buckets {
                    bytes += value_approx_bytes(value) + 32 + ids.len() * 24;
                }
            }
        }
        bytes
    }

    /// Removes every fact but keeps the id counter monotonic.
    pub fn clear(&mut self) {
        self.facts.clear();
        self.by_template.clear();
        self.by_content.clear();
        self.by_slot_value.clear();
        self.content_keys.clear();
    }
}

/// Approximate heap bytes held by one value (shared `Arc` payloads are
/// charged to every holder — deliberate, since budget accounting wants
/// an upper bound, not a deduplicated census).
pub(crate) fn value_approx_bytes(value: &Value) -> usize {
    std::mem::size_of::<Value>()
        + match value {
            Value::Sym(s) | Value::Str(s) => s.len(),
            Value::Multi(items) => items.iter().map(value_approx_bytes).sum(),
            Value::Int(_) | Value::Float(_) | Value::Fact(_) => 0,
        }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::SlotDef;

    fn tmpl() -> Arc<Template> {
        Arc::new(Template::new("ev", [SlotDef::single("a"), SlotDef::multi("b")]))
    }

    #[test]
    fn assert_and_retract() {
        let mut wm = WorkingMemory::new();
        let f = FactBuilder::new(tmpl()).slot("a", 1).build().unwrap();
        let id = wm.assert(f.clone()).unwrap();
        assert_eq!(wm.len(), 1);
        assert_eq!(wm.ids_of("ev"), [id]);
        let out = wm.retract(id).unwrap();
        assert_eq!(*out, f);
        assert!(wm.is_empty());
        assert!(wm.retract(id).is_err());
    }

    #[test]
    fn duplicate_assertion_suppressed() {
        let mut wm = WorkingMemory::new();
        let f = FactBuilder::new(tmpl()).slot("a", 1).build().unwrap();
        assert!(wm.assert(f.clone()).is_some());
        assert!(wm.assert(f).is_none());
        assert_eq!(wm.len(), 1);
    }

    #[test]
    fn ids_are_monotonic_and_not_reused() {
        let mut wm = WorkingMemory::new();
        let a = wm.assert(FactBuilder::new(tmpl()).slot("a", 1).build().unwrap()).unwrap();
        let b = wm.assert(FactBuilder::new(tmpl()).slot("a", 2).build().unwrap()).unwrap();
        wm.retract(a).unwrap();
        let c = wm.assert(FactBuilder::new(tmpl()).slot("a", 3).build().unwrap()).unwrap();
        assert!(b > a);
        assert!(c > b);
    }

    #[test]
    fn slot_value_index_tracks_assert_and_retract() {
        let mut wm = WorkingMemory::new();
        let a = wm.assert(FactBuilder::new(tmpl()).slot("a", 1).build().unwrap()).unwrap();
        let b = wm.assert(FactBuilder::new(tmpl()).slot("a", 2).build().unwrap()).unwrap();
        let c = wm.assert(
            FactBuilder::new(tmpl()).slot("a", 1).slot("b", Value::multi([])).build().unwrap(),
        );
        assert!(c.is_none(), "content index still suppresses duplicates");
        let ones: Vec<FactId> =
            wm.ids_with("ev", 0, &Value::Int(1)).into_iter().flatten().copied().collect();
        assert_eq!(ones, [a]);
        wm.retract(a).unwrap();
        assert!(wm.ids_with("ev", 0, &Value::Int(1)).is_none());
        let twos: Vec<FactId> =
            wm.ids_with("ev", 0, &Value::Int(2)).into_iter().flatten().copied().collect();
        assert_eq!(twos, [b]);
        assert!(wm.ids_with("ev", 9, &Value::Int(2)).is_none(), "out-of-range slot");
        assert!(wm.ids_with("nope", 0, &Value::Int(2)).is_none(), "unknown template");
    }

    #[test]
    fn fact_display_matches_clips_shape() {
        let f = FactBuilder::new(tmpl())
            .slot("a", Value::sym("SYS_execve"))
            .slot("b", Value::multi([Value::str("/bin/ls"), Value::sym("FILE")]))
            .build()
            .unwrap();
        assert_eq!(f.to_string(), "(ev (a SYS_execve) (b \"/bin/ls\" FILE))");
    }

    #[test]
    fn from_parts_checks_arity_only() {
        let f = Fact::from_parts(tmpl(), vec![Value::Int(1), Value::empty_multi()]).unwrap();
        assert_eq!(f.get("a").unwrap(), &Value::Int(1));
        assert!(Fact::from_parts(tmpl(), vec![Value::Int(1)]).is_err());
    }

    #[test]
    fn set_next_id_positions_the_counter() {
        let mut wm = WorkingMemory::new();
        wm.set_next_id(6);
        let id = wm.assert(FactBuilder::new(tmpl()).slot("a", 1).build().unwrap()).unwrap();
        assert_eq!(id.raw(), 7);
        assert_eq!(FactId::from_raw(7), id);
    }

    #[test]
    fn approx_bytes_grows_with_population() {
        let mut wm = WorkingMemory::new();
        let empty = wm.approx_bytes();
        wm.assert(FactBuilder::new(tmpl()).slot("a", Value::str("/bin/ls")).build().unwrap())
            .unwrap();
        assert!(wm.approx_bytes() > empty);
    }

    #[test]
    fn defaults_apply() {
        let t = Arc::new(Template::new(
            "d",
            [SlotDef::single("x").with_default(Value::Int(9)), SlotDef::multi("y")],
        ));
        let f = Fact::with_defaults(t);
        assert_eq!(f.get("x").unwrap(), &Value::Int(9));
        assert_eq!(f.get("y").unwrap(), &Value::empty_multi());
    }
}
