//! Facts and working memory.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::error::{EngineError, Result};
use crate::template::Template;
use crate::value::Value;

/// Identifier of an asserted fact. Ids are monotonically increasing and
/// never reused, so they double as recency for conflict resolution.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FactId(u64);

impl FactId {
    /// Raw numeric id (the `N` in CLIPS's `f-N`).
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for FactId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f-{}", self.0)
    }
}

/// An immutable fact: a template instance with one value per slot.
#[derive(Clone, Debug, PartialEq)]
pub struct Fact {
    template: Arc<Template>,
    slots: Vec<Value>,
}

impl Fact {
    /// Creates a fact with every slot set to its (implicit) default.
    pub fn with_defaults(template: Arc<Template>) -> Fact {
        let slots = template
            .slots()
            .iter()
            .map(|s| s.default().cloned().unwrap_or_else(|| s.implicit_default()))
            .collect();
        Fact { template, slots }
    }

    /// The fact's template.
    pub fn template(&self) -> &Arc<Template> {
        &self.template
    }

    /// Slot values in template declaration order.
    pub fn slots(&self) -> &[Value] {
        &self.slots
    }

    /// Value of slot `name`.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::UnknownSlot`] when the template lacks `name`.
    pub fn get(&self, name: &str) -> Result<&Value> {
        let i = self.template.slot_index(name).ok_or_else(|| EngineError::UnknownSlot {
            template: self.template.name().to_string(),
            slot: name.to_string(),
        })?;
        Ok(&self.slots[i])
    }

    /// Sets slot `name` to `value`, coercing per the slot kind.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::UnknownSlot`] or [`EngineError::SlotArity`].
    pub fn set(&mut self, name: &str, value: Value) -> Result<()> {
        let i = self.template.slot_index(name).ok_or_else(|| EngineError::UnknownSlot {
            template: self.template.name().to_string(),
            slot: name.to_string(),
        })?;
        let def = &self.template.slots()[i];
        self.slots[i] = self.template.coerce(def, value)?;
        Ok(())
    }
}

impl fmt::Display for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}", self.template.name())?;
        for (def, value) in self.template.slots().iter().zip(&self.slots) {
            match value {
                Value::Multi(items) => {
                    write!(f, " ({}", def.name())?;
                    for item in items.iter() {
                        write!(f, " {item}")?;
                    }
                    write!(f, ")")?;
                }
                v => write!(f, " ({} {v})", def.name())?,
            }
        }
        write!(f, ")")
    }
}

/// Builder for facts, used by host code that feeds events into the engine.
///
/// ```
/// use secpert_engine::{FactBuilder, Template, SlotDef, Value};
/// use std::sync::Arc;
/// let t = Arc::new(Template::new("ev", [SlotDef::single("time"), SlotDef::multi("src")]));
/// let fact = FactBuilder::new(t)
///     .slot("time", 33)
///     .slot("src", Value::multi([Value::sym("BINARY")]))
///     .build()
///     .unwrap();
/// assert_eq!(fact.get("time").unwrap(), &Value::Int(33));
/// ```
#[derive(Debug)]
pub struct FactBuilder {
    fact: Fact,
    error: Option<EngineError>,
}

impl FactBuilder {
    /// Starts building a fact of the given template, slots at defaults.
    pub fn new(template: Arc<Template>) -> FactBuilder {
        FactBuilder { fact: Fact::with_defaults(template), error: None }
    }

    /// Sets a slot; errors are deferred to [`FactBuilder::build`].
    #[must_use]
    pub fn slot(mut self, name: &str, value: impl Into<Value>) -> FactBuilder {
        if self.error.is_none() {
            if let Err(e) = self.fact.set(name, value.into()) {
                self.error = Some(e);
            }
        }
        self
    }

    /// Finishes the fact.
    ///
    /// # Errors
    ///
    /// Returns the first slot error encountered while building.
    pub fn build(self) -> Result<Fact> {
        match self.error {
            Some(e) => Err(e),
            None => Ok(self.fact),
        }
    }
}

/// Working memory: the set of currently asserted facts.
#[derive(Debug, Default)]
pub struct WorkingMemory {
    facts: HashMap<FactId, Arc<Fact>>,
    by_template: HashMap<Arc<str>, Vec<FactId>>,
    next_id: u64,
}

impl WorkingMemory {
    /// Creates an empty working memory.
    pub fn new() -> WorkingMemory {
        WorkingMemory::default()
    }

    /// Asserts `fact`, returning its new id, or `None` when an identical
    /// fact is already present (CLIPS duplicate suppression).
    pub fn assert(&mut self, fact: Fact) -> Option<FactId> {
        let name: Arc<str> = Arc::from(fact.template().name());
        if let Some(ids) = self.by_template.get(&name) {
            if ids.iter().any(|id| *self.facts[id] == fact) {
                return None;
            }
        }
        self.next_id += 1;
        let id = FactId(self.next_id);
        self.facts.insert(id, Arc::new(fact));
        self.by_template.entry(name).or_default().push(id);
        Some(id)
    }

    /// Retracts the fact with the given id.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::NoSuchFact`] when the id is not live.
    pub fn retract(&mut self, id: FactId) -> Result<Arc<Fact>> {
        let fact = self.facts.remove(&id).ok_or(EngineError::NoSuchFact(id.raw()))?;
        if let Some(ids) = self.by_template.get_mut(fact.template().name()) {
            ids.retain(|other| *other != id);
        }
        Ok(fact)
    }

    /// Looks up a live fact.
    pub fn get(&self, id: FactId) -> Option<&Arc<Fact>> {
        self.facts.get(&id)
    }

    /// Ids of live facts of the given template, in assertion order.
    pub fn ids_of(&self, template: &str) -> &[FactId] {
        self.by_template.get(template).map_or(&[], Vec::as_slice)
    }

    /// Iterates over all live facts in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (FactId, &Arc<Fact>)> {
        self.facts.iter().map(|(id, f)| (*id, f))
    }

    /// Number of live facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// True when no facts are asserted.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// Removes every fact but keeps the id counter monotonic.
    pub fn clear(&mut self) {
        self.facts.clear();
        self.by_template.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::SlotDef;

    fn tmpl() -> Arc<Template> {
        Arc::new(Template::new("ev", [SlotDef::single("a"), SlotDef::multi("b")]))
    }

    #[test]
    fn assert_and_retract() {
        let mut wm = WorkingMemory::new();
        let f = FactBuilder::new(tmpl()).slot("a", 1).build().unwrap();
        let id = wm.assert(f.clone()).unwrap();
        assert_eq!(wm.len(), 1);
        assert_eq!(wm.ids_of("ev"), [id]);
        let out = wm.retract(id).unwrap();
        assert_eq!(*out, f);
        assert!(wm.is_empty());
        assert!(wm.retract(id).is_err());
    }

    #[test]
    fn duplicate_assertion_suppressed() {
        let mut wm = WorkingMemory::new();
        let f = FactBuilder::new(tmpl()).slot("a", 1).build().unwrap();
        assert!(wm.assert(f.clone()).is_some());
        assert!(wm.assert(f).is_none());
        assert_eq!(wm.len(), 1);
    }

    #[test]
    fn ids_are_monotonic_and_not_reused() {
        let mut wm = WorkingMemory::new();
        let a = wm.assert(FactBuilder::new(tmpl()).slot("a", 1).build().unwrap()).unwrap();
        let b = wm.assert(FactBuilder::new(tmpl()).slot("a", 2).build().unwrap()).unwrap();
        wm.retract(a).unwrap();
        let c = wm.assert(FactBuilder::new(tmpl()).slot("a", 3).build().unwrap()).unwrap();
        assert!(b > a);
        assert!(c > b);
    }

    #[test]
    fn fact_display_matches_clips_shape() {
        let f = FactBuilder::new(tmpl())
            .slot("a", Value::sym("SYS_execve"))
            .slot("b", Value::multi([Value::str("/bin/ls"), Value::sym("FILE")]))
            .build()
            .unwrap();
        assert_eq!(f.to_string(), "(ev (a SYS_execve) (b \"/bin/ls\" FILE))");
    }

    #[test]
    fn defaults_apply() {
        let t = Arc::new(Template::new(
            "d",
            [SlotDef::single("x").with_default(Value::Int(9)), SlotDef::multi("y")],
        ));
        let f = Fact::with_defaults(t);
        assert_eq!(f.get("x").unwrap(), &Value::Int(9));
        assert_eq!(f.get("y").unwrap(), &Value::empty_multi());
    }
}
