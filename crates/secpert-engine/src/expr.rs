//! Expression AST and evaluator.
//!
//! Expressions appear in three places: `test` condition elements,
//! `:`/`=` constraints inside patterns, and rule right-hand sides. The
//! same evaluator serves all three; mutating forms (`assert`, `retract`,
//! `printout`, `bind`) are rejected by the read-only host used during
//! pattern matching.

use std::sync::Arc;

use crate::error::{EngineError, Result};
use crate::fact::FactId;
use crate::value::Value;

/// Variable bindings accumulated by pattern matching and `bind`.
///
/// A small ordered map over a `Vec`: a rule binds a dozen-odd variables
/// at most, where a linear scan out-runs a hash map on lookup and —
/// decisive for the match hot path, which snapshots bindings at every
/// backtracking point — on `clone`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Bindings(Vec<(Arc<str>, Value)>);

impl Bindings {
    /// Creates an empty binding set.
    pub fn new() -> Bindings {
        Bindings(Vec::new())
    }

    /// Looks up the value bound to `name`.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.0.iter().find(|(k, _)| k.as_ref() == name).map(|(_, v)| v)
    }

    /// Removes every binding, keeping the allocation for reuse.
    pub fn clear(&mut self) {
        self.0.clear();
    }

    /// Binds `name` to `value`, replacing any previous binding.
    pub fn insert(&mut self, name: Arc<str>, value: Value) {
        match self.0.iter_mut().find(|(k, _)| **k == *name) {
            Some((_, v)) => *v = value,
            None => self.0.push((name, value)),
        }
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether no variables are bound.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterates over `(name, value)` pairs in binding order.
    pub fn iter(&self) -> impl Iterator<Item = (&Arc<str>, &Value)> {
        self.0.iter().map(|(k, v)| (k, v))
    }
}

/// An evaluable expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Literal value.
    Const(Value),
    /// Local variable reference `?x` (or fact-address binding `?f`).
    Var(Arc<str>),
    /// Global variable reference `?*name*`.
    Global(Arc<str>),
    /// Function call `(name arg…)`. `and`, `or`, `not` short-circuit.
    Call(Arc<str>, Vec<Expr>),
    /// `(if cond then a… [else b…])`.
    If {
        /// Condition expression.
        cond: Box<Expr>,
        /// Actions evaluated when the condition is truthy.
        then: Vec<Expr>,
        /// Actions evaluated otherwise.
        els: Vec<Expr>,
    },
    /// `(bind ?x expr)` — assigns a local variable.
    Bind(Arc<str>, Box<Expr>),
    /// `(assert (template (slot expr…)…))`.
    Assert {
        /// Template name.
        template: Arc<str>,
        /// Slot name → field expressions (several ⇒ multifield).
        slots: Vec<(Arc<str>, Vec<Expr>)>,
    },
    /// `(retract ?f…)`.
    Retract(Vec<Expr>),
    /// `(printout t expr… [crlf])` — `crlf` arrives as the symbol `crlf`.
    Printout(Vec<Expr>),
    /// `(modify ?f (slot expr…)…)` — retract + re-assert with updates.
    Modify {
        /// Expression yielding the fact address.
        target: Box<Expr>,
        /// Slot name → new field expressions.
        slots: Vec<(Arc<str>, Vec<Expr>)>,
    },
}

impl Expr {
    /// Shorthand for a literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Const(v.into())
    }

    /// Shorthand for a variable reference.
    pub fn var(name: impl AsRef<str>) -> Expr {
        Expr::Var(Arc::from(name.as_ref()))
    }

    /// Shorthand for a call.
    pub fn call(name: impl AsRef<str>, args: impl IntoIterator<Item = Expr>) -> Expr {
        Expr::Call(Arc::from(name.as_ref()), args.into_iter().collect())
    }
}

/// Services the evaluator needs from its surroundings.
///
/// [`crate::engine::Engine`] provides the full implementation; pattern
/// matching uses a read-only view that rejects mutation.
pub trait Host {
    /// Reads a global `?*name*`.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::UnknownGlobal`] for undefined globals.
    fn global(&self, name: &str) -> Result<Value>;

    /// Invokes a builtin or registered native function.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::UnknownFunction`] for unregistered names.
    fn call(&mut self, name: &str, args: &[Value]) -> Result<Value>;

    /// Asserts a fact built from evaluated slot values. Returns the fact
    /// address, or `FALSE` when suppressed as a duplicate.
    ///
    /// # Errors
    ///
    /// Propagates template/slot errors; read-only hosts always error.
    fn assert(&mut self, template: &str, slots: &[(Arc<str>, Value)]) -> Result<Value>;

    /// Retracts a fact by address.
    ///
    /// # Errors
    ///
    /// Propagates [`EngineError::NoSuchFact`]; read-only hosts always error.
    fn retract(&mut self, id: FactId) -> Result<()>;

    /// Appends text to the engine output transcript.
    ///
    /// # Errors
    ///
    /// Read-only hosts always error.
    fn print(&mut self, text: &str) -> Result<()>;

    /// Retracts `id` and asserts a copy with the given slots replaced
    /// (CLIPS `modify`). Returns the new fact address.
    ///
    /// # Errors
    ///
    /// Propagates [`EngineError::NoSuchFact`] and slot errors; read-only
    /// hosts always error.
    fn modify(&mut self, id: FactId, slots: &[(Arc<str>, Value)]) -> Result<Value> {
        let _ = (id, slots);
        Err(EngineError::Type { expected: "a host supporting modify", found: "modify".into() })
    }
}

/// Evaluates `expr` under `bindings` against `host`.
///
/// # Errors
///
/// Propagates unbound variables, unknown functions/globals, type errors
/// and any error from host operations.
pub fn eval(expr: &Expr, bindings: &mut Bindings, host: &mut dyn Host) -> Result<Value> {
    match expr {
        Expr::Const(v) => Ok(v.clone()),
        Expr::Var(name) => bindings
            .get(name.as_ref())
            .cloned()
            .ok_or_else(|| EngineError::UnboundVariable(name.to_string())),
        Expr::Global(name) => host.global(name),
        Expr::Call(name, args) => eval_call(name, args, bindings, host),
        Expr::If { cond, then, els } => {
            let branch = if eval(cond, bindings, host)?.is_truthy() { then } else { els };
            let mut last = Value::falsity();
            for action in branch {
                last = eval(action, bindings, host)?;
            }
            Ok(last)
        }
        Expr::Bind(name, value) => {
            let v = eval(value, bindings, host)?;
            bindings.insert(name.clone(), v.clone());
            Ok(v)
        }
        Expr::Assert { template, slots } => {
            let mut evaluated = Vec::with_capacity(slots.len());
            for (slot, fields) in slots {
                let value = eval_fields(fields, bindings, host)?;
                evaluated.push((slot.clone(), value));
            }
            host.assert(template, &evaluated)
        }
        Expr::Retract(targets) => {
            for target in targets {
                let id = eval(target, bindings, host)?.as_fact()?;
                host.retract(id)?;
            }
            Ok(Value::truth())
        }
        Expr::Modify { target, slots } => {
            let id = eval(target, bindings, host)?.as_fact()?;
            let mut evaluated = Vec::with_capacity(slots.len());
            for (slot, fields) in slots {
                let value = eval_fields(fields, bindings, host)?;
                evaluated.push((slot.clone(), value));
            }
            host.modify(id, &evaluated)
        }
        Expr::Printout(parts) => {
            for part in parts {
                if let Expr::Const(Value::Sym(s)) = part {
                    if &**s == "crlf" {
                        host.print("\n")?;
                        continue;
                    }
                    if &**s == "t" {
                        continue; // output device designator
                    }
                }
                let v = eval(part, bindings, host)?;
                match &v {
                    // Strings and symbols print as-is; skip the
                    // intermediate rendering allocation.
                    Value::Str(s) | Value::Sym(s) => host.print(s)?,
                    other => host.print(&other.to_display_string())?,
                }
            }
            Ok(Value::truth())
        }
    }
}

/// Evaluates the field expressions of one slot: one expression keeps its
/// value as-is; several produce a multifield (splicing nested multifields,
/// as CLIPS does for `create$`-style slot content).
fn eval_fields(fields: &[Expr], bindings: &mut Bindings, host: &mut dyn Host) -> Result<Value> {
    if let [single] = fields {
        return eval(single, bindings, host);
    }
    let mut items = Vec::with_capacity(fields.len());
    for field in fields {
        match eval(field, bindings, host)? {
            Value::Multi(m) => items.extend(m.iter().cloned()),
            v => items.push(v),
        }
    }
    Ok(Value::multi(items))
}

fn eval_call(
    name: &str,
    args: &[Expr],
    bindings: &mut Bindings,
    host: &mut dyn Host,
) -> Result<Value> {
    // Short-circuiting logical forms are handled here, not as natives.
    match name {
        "and" => {
            let mut last = Value::truth();
            for arg in args {
                last = eval(arg, bindings, host)?;
                if !last.is_truthy() {
                    return Ok(Value::falsity());
                }
            }
            Ok(last)
        }
        "or" => {
            for arg in args {
                let v = eval(arg, bindings, host)?;
                if v.is_truthy() {
                    return Ok(v);
                }
            }
            Ok(Value::falsity())
        }
        "not" => {
            let [arg] = args else {
                return Err(EngineError::Type {
                    expected: "exactly one argument to `not`",
                    found: format!("{} arguments", args.len()),
                });
            };
            Ok(Value::bool(!eval(arg, bindings, host)?.is_truthy()))
        }
        "progn" => {
            let mut last = Value::falsity();
            for arg in args {
                last = eval(arg, bindings, host)?;
            }
            Ok(last)
        }
        _ => {
            // Almost every builtin takes at most four arguments;
            // evaluate them into a stack buffer so the hot path never
            // touches the allocator.
            if args.len() <= 4 {
                let mut buf: [Value; 4] = std::array::from_fn(|_| Value::falsity());
                for (slot, arg) in buf.iter_mut().zip(args) {
                    *slot = eval(arg, bindings, host)?;
                }
                host.call(name, &buf[..args.len()])
            } else {
                let mut values = Vec::with_capacity(args.len());
                for arg in args {
                    values.push(eval(arg, bindings, host)?);
                }
                host.call(name, &values)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    use super::*;
    use crate::builtins;

    /// Minimal host for expression tests: builtins + a couple of globals.
    struct TestHost {
        globals: HashMap<String, Value>,
        out: String,
    }

    impl TestHost {
        fn new() -> TestHost {
            let mut globals = HashMap::new();
            globals.insert("LIMIT".to_string(), Value::Int(5));
            TestHost { globals, out: String::new() }
        }
    }

    impl Host for TestHost {
        fn global(&self, name: &str) -> Result<Value> {
            self.globals
                .get(name)
                .cloned()
                .ok_or_else(|| EngineError::UnknownGlobal(name.to_string()))
        }
        fn call(&mut self, name: &str, args: &[Value]) -> Result<Value> {
            builtins::call(name, args)
        }
        fn assert(&mut self, _: &str, _: &[(Arc<str>, Value)]) -> Result<Value> {
            Err(EngineError::UnknownFunction("assert".into()))
        }
        fn retract(&mut self, _: FactId) -> Result<()> {
            Err(EngineError::UnknownFunction("retract".into()))
        }
        fn print(&mut self, text: &str) -> Result<()> {
            self.out.push_str(text);
            Ok(())
        }
    }

    fn run(expr: &Expr) -> Result<Value> {
        eval(expr, &mut Bindings::new(), &mut TestHost::new())
    }

    #[test]
    fn arithmetic_and_comparison() {
        let e = Expr::call("+", [Expr::lit(2), Expr::lit(3)]);
        assert_eq!(run(&e).unwrap(), Value::Int(5));
        let e = Expr::call("<", [Expr::lit(2), Expr::lit(3)]);
        assert_eq!(run(&e).unwrap(), Value::truth());
    }

    #[test]
    fn and_short_circuits() {
        // Second arg would divide by zero; `and` must not evaluate it.
        let e =
            Expr::call("and", [Expr::lit(false), Expr::call("/", [Expr::lit(1), Expr::lit(0)])]);
        assert_eq!(run(&e).unwrap(), Value::falsity());
    }

    #[test]
    fn or_returns_first_truthy() {
        let e = Expr::call("or", [Expr::lit(false), Expr::lit(7)]);
        assert_eq!(run(&e).unwrap(), Value::Int(7));
    }

    #[test]
    fn bind_then_use() {
        let mut b = Bindings::new();
        let mut host = TestHost::new();
        eval(&Expr::Bind(Arc::from("x"), Box::new(Expr::lit(4))), &mut b, &mut host).unwrap();
        let v =
            eval(&Expr::call("*", [Expr::var("x"), Expr::var("x")]), &mut b, &mut host).unwrap();
        assert_eq!(v, Value::Int(16));
    }

    #[test]
    fn unbound_variable_errors() {
        assert!(matches!(run(&Expr::var("nope")), Err(EngineError::UnboundVariable(_))));
    }

    #[test]
    fn globals_resolve() {
        assert_eq!(run(&Expr::Global(Arc::from("LIMIT"))).unwrap(), Value::Int(5));
        assert!(run(&Expr::Global(Arc::from("MISSING"))).is_err());
    }

    #[test]
    fn printout_renders_without_quotes_and_crlf() {
        let mut host = TestHost::new();
        let e = Expr::Printout(vec![
            Expr::lit(Value::sym("t")),
            Expr::lit("warning: "),
            Expr::lit(Value::str("/bin/ls")),
            Expr::lit(Value::sym("crlf")),
        ]);
        eval(&e, &mut Bindings::new(), &mut host).unwrap();
        assert_eq!(host.out, "warning: /bin/ls\n");
    }

    #[test]
    fn if_branches() {
        let e = Expr::If {
            cond: Box::new(Expr::call("<", [Expr::lit(1), Expr::lit(2)])),
            then: vec![Expr::lit(Value::sym("yes"))],
            els: vec![Expr::lit(Value::sym("no"))],
        };
        assert_eq!(run(&e).unwrap(), Value::sym("yes"));
    }

    #[test]
    fn multifield_slot_fields_splice() {
        let mut host = TestHost::new();
        let mut b = Bindings::new();
        b.insert(Arc::from("m"), Value::multi([Value::Int(1), Value::Int(2)]));
        let v = eval_fields(&[Expr::var("m"), Expr::lit(3)], &mut b, &mut host).unwrap();
        assert_eq!(v, Value::multi([Value::Int(1), Value::Int(2), Value::Int(3)]));
    }
}
