//! The dynamic value type flowing through facts, patterns and expressions.
//!
//! Mirrors the CLIPS primitive types: symbols, strings, integers, floats,
//! multifields, plus fact addresses (used for `?f <- (pattern)` bindings).

use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::error::{EngineError, Result};
use crate::fact::FactId;

/// A CLIPS-style dynamic value.
///
/// Equality is *type-strict* (like CLIPS `eq`): `Int(1)` ≠ `Float(1.0)`.
/// Use [`Value::num_eq`] for numeric (`=`) comparison.
///
/// ```
/// use secpert_engine::Value;
/// let v = Value::sym("SYS_execve");
/// assert!(v.is_sym("SYS_execve"));
/// assert_ne!(Value::Int(1), Value::Float(1.0));
/// assert!(Value::Int(1).num_eq(&Value::Float(1.0)));
/// ```
#[derive(Clone, Debug)]
pub enum Value {
    /// Bare symbol, e.g. `SYS_execve`, `FILE`, `TRUE`.
    Sym(Arc<str>),
    /// Double-quoted string, e.g. `"/bin/ls"`.
    Str(Arc<str>),
    /// 64-bit signed integer.
    Int(i64),
    /// Double-precision float.
    Float(f64),
    /// Multifield (ordered sequence of non-multifield values).
    Multi(Arc<[Value]>),
    /// Fact address, produced by `?f <- (pattern)` bindings.
    Fact(FactId),
}

impl Value {
    /// The canonical boolean-true symbol. The backing `Arc` is cached —
    /// boolean results are minted constantly in rule evaluation and must
    /// not hit the allocator each time.
    pub fn truth() -> Value {
        static TRUE_SYM: std::sync::OnceLock<Arc<str>> = std::sync::OnceLock::new();
        Value::Sym(TRUE_SYM.get_or_init(|| Arc::from("TRUE")).clone())
    }

    /// The canonical boolean-false symbol (cached like [`Value::truth`]).
    pub fn falsity() -> Value {
        static FALSE_SYM: std::sync::OnceLock<Arc<str>> = std::sync::OnceLock::new();
        Value::Sym(FALSE_SYM.get_or_init(|| Arc::from("FALSE")).clone())
    }

    /// Builds a symbol value.
    pub fn sym(s: impl AsRef<str>) -> Value {
        Value::Sym(Arc::from(s.as_ref()))
    }

    /// Builds a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Builds a multifield from an iterator of values.
    pub fn multi(items: impl IntoIterator<Item = Value>) -> Value {
        Value::Multi(items.into_iter().collect::<Vec<_>>().into())
    }

    /// Builds an empty multifield. The backing `Arc` is cached — every
    /// unset multislot defaults to this, so fact construction would
    /// otherwise allocate one per slot.
    pub fn empty_multi() -> Value {
        static EMPTY: std::sync::OnceLock<Arc<[Value]>> = std::sync::OnceLock::new();
        Value::Multi(EMPTY.get_or_init(|| Arc::from(Vec::new())).clone())
    }

    /// Converts a Rust bool into the CLIPS `TRUE`/`FALSE` symbols.
    pub fn bool(b: bool) -> Value {
        if b {
            Value::truth()
        } else {
            Value::falsity()
        }
    }

    /// True for every value except the symbol `FALSE` (CLIPS truthiness).
    pub fn is_truthy(&self) -> bool {
        !matches!(self, Value::Sym(s) if &**s == "FALSE")
    }

    /// Returns true when `self` is the symbol `name`.
    pub fn is_sym(&self, name: &str) -> bool {
        matches!(self, Value::Sym(s) if &**s == name)
    }

    /// Text content of a symbol or string; `None` for other types.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Sym(s) | Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Integer content, accepting exact floats; errors otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Type`] when the value is not numeric.
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            Value::Float(x) if x.fract() == 0.0 => Ok(*x as i64),
            other => Err(EngineError::Type { expected: "integer", found: other.to_string() }),
        }
    }

    /// Numeric content widened to `f64`.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Type`] when the value is not numeric.
    pub fn as_f64(&self) -> Result<f64> {
        match self {
            Value::Int(i) => Ok(*i as f64),
            Value::Float(x) => Ok(*x),
            other => Err(EngineError::Type { expected: "number", found: other.to_string() }),
        }
    }

    /// Multifield content; errors for non-multifield values.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Type`] when the value is not a multifield.
    pub fn as_multi(&self) -> Result<&[Value]> {
        match self {
            Value::Multi(items) => Ok(items),
            other => Err(EngineError::Type { expected: "multifield", found: other.to_string() }),
        }
    }

    /// Fact-address content; errors for other types.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Type`] when the value is not a fact address.
    pub fn as_fact(&self) -> Result<FactId> {
        match self {
            Value::Fact(id) => Ok(*id),
            other => Err(EngineError::Type { expected: "fact-address", found: other.to_string() }),
        }
    }

    /// Numeric equality (CLIPS `=`): compares across `Int`/`Float`.
    pub fn num_eq(&self, other: &Value) -> bool {
        match (self.as_f64(), other.as_f64()) {
            (Ok(a), Ok(b)) => a == b,
            _ => self == other,
        }
    }

    /// Rendering used by `printout`: strings lose their quotes, everything
    /// else renders as in facts.
    pub fn to_display_string(&self) -> String {
        let mut out = String::new();
        self.push_display(&mut out);
        out
    }

    /// Appends the `printout` rendering of the value to `out`, sparing
    /// the intermediate string per fragment (`str-cat` and `printout`
    /// run on every warning).
    pub fn push_display(&self, out: &mut String) {
        use fmt::Write;
        match self {
            Value::Sym(s) | Value::Str(s) => out.push_str(s),
            Value::Multi(items) => {
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(' ');
                    }
                    item.push_display(out);
                }
            }
            other => {
                let _ = write!(out, "{other}");
            }
        }
    }

    /// Short name of the value's type, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Sym(_) => "symbol",
            Value::Str(_) => "string",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Multi(_) => "multifield",
            Value::Fact(_) => "fact-address",
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Sym(a), Value::Sym(b)) | (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
            (Value::Multi(a), Value::Multi(b)) => a == b,
            (Value::Fact(a), Value::Fact(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        core::mem::discriminant(self).hash(state);
        match self {
            Value::Sym(s) | Value::Str(s) => s.hash(state),
            Value::Int(i) => i.hash(state),
            Value::Float(x) => x.to_bits().hash(state),
            Value::Multi(items) => items.hash(state),
            Value::Fact(id) => id.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Sym(s) => write!(f, "{s}"),
            Value::Str(s) => write!(f, "\"{s}\""),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Multi(items) => {
                write!(f, "(")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, ")")
            }
            Value::Fact(id) => write!(f, "<Fact-{}>", id.raw()),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Value {
        Value::Int(i64::from(i))
    }
}

impl From<u64> for Value {
    fn from(i: u64) -> Value {
        Value::Int(i as i64)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Value {
        Value::Float(x)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::str(s)
    }
}

impl From<FactId> for Value {
    fn from(id: FactId) -> Value {
        Value::Fact(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness_follows_clips() {
        assert!(Value::truth().is_truthy());
        assert!(!Value::falsity().is_truthy());
        assert!(Value::Int(0).is_truthy(), "0 is truthy in CLIPS");
        assert!(Value::str("").is_truthy(), "empty string is truthy");
        assert!(Value::empty_multi().is_truthy());
    }

    #[test]
    fn strict_vs_numeric_equality() {
        assert_ne!(Value::Int(2), Value::Float(2.0));
        assert!(Value::Int(2).num_eq(&Value::Float(2.0)));
        assert_ne!(Value::sym("abc"), Value::str("abc"));
        assert!(!Value::sym("abc").num_eq(&Value::str("abc")));
    }

    #[test]
    fn display_round_trip_shapes() {
        assert_eq!(Value::sym("FILE").to_string(), "FILE");
        assert_eq!(Value::str("/bin/ls").to_string(), "\"/bin/ls\"");
        assert_eq!(Value::Int(-4).to_string(), "-4");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        let m = Value::multi([Value::sym("a"), Value::Int(1)]);
        assert_eq!(m.to_string(), "(a 1)");
    }

    #[test]
    fn printout_rendering_strips_quotes() {
        assert_eq!(Value::str("/bin/sh").to_display_string(), "/bin/sh");
        let m = Value::multi([Value::str("a"), Value::sym("b")]);
        assert_eq!(m.to_display_string(), "a b");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(true), Value::truth());
        assert_eq!(Value::Int(7).as_f64().unwrap(), 7.0);
        assert_eq!(Value::Float(7.0).as_int().unwrap(), 7);
        assert!(Value::Float(7.5).as_int().is_err());
        assert!(Value::sym("x").as_f64().is_err());
    }
}
