//! Incremental match network (Rete-style).
//!
//! Replaces the per-assert full-join matcher with an alpha/beta network
//! that propagates working-memory deltas through per-rule token chains:
//!
//! - [`compile`] extracts constant discriminators and shared-variable
//!   join keys from each condition element;
//! - [`network`] owns the token tree, beta memories and the
//!   assert/retract propagation, emitting agenda edits that reproduce
//!   the naive matcher's activation order byte-for-byte;
//! - [`stats`] counts the work performed, surfaced as [`MatchStats`]
//!   through `Engine::match_stats` and aggregated fleet-wide.
//!
//! The old matcher stays available behind the `naive-match` feature as a
//! differential oracle (`tests/match_diff.rs`).

pub(crate) mod compile;
pub mod network;
mod stats;

pub(crate) use network::{ReteNetwork, UpdateOutcome};
pub use stats::MatchStats;
