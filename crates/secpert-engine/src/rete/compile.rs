//! Rule compilation: from a rule's condition elements to discrimination
//! metadata consumed by the match network.
//!
//! For each pattern (positive or negated) we extract, per slot:
//!
//! - **constant discriminators** — slots constrained to a single literal.
//!   These gate facts cheaply before a full pattern verification and key
//!   lookups into the working-memory slot-value index (alpha network).
//! - **a join key** — the first slot constrained to exactly one `?var`
//!   already bound by an earlier condition element. Beta memories are
//!   indexed on that variable's value, so a new fact joins against only
//!   the tokens sharing its value instead of the whole memory.
//!
//! Both extractions are restricted to single-valued slots: a multislot
//! matched by a `Single` constraint binds the *item*, not the stored
//! multifield, so index keys would not line up.

use std::collections::HashSet;
use std::sync::Arc;

use crate::fxhash::FxHashMap;
use crate::pattern::{Atom, CondElem, PatternCE, SlotPattern, Term};
use crate::rule::Rule;
use crate::template::{SlotKind, Template};
use crate::value::Value;

/// Compiled discrimination metadata for one condition element.
#[derive(Clone, Debug, Default)]
pub(crate) struct Node {
    /// `(slot index, literal)` pairs the fact must carry verbatim.
    pub consts: Vec<(usize, Value)>,
    /// `(slot index, variable)` shared-variable join key, when one exists.
    pub join: Option<(usize, Arc<str>)>,
    /// The pattern's slot constraints that the constant gate does not
    /// already cover, with slot names resolved to indices — what a
    /// match attempt still has to verify after `consts` passed. `None`
    /// when a slot or the template could not be resolved at compile
    /// time; callers then fall back to [`PatternCE::matches`], which
    /// reports the error the residual walk would have hidden.
    pub residual: Option<Vec<(usize, SlotPattern)>>,
}

/// Variables guaranteed to be bound after a pattern CE matches: the fact
/// address binding plus every top-level `?var`/`$?var` term inside a
/// single-alternative constraint (a matched conjunction matches all of
/// its atoms). Multi-alternative constraints are skipped — which branch
/// matched is unknown statically.
fn bound_by_pattern(p: &PatternCE, bound: &mut HashSet<Arc<str>>) {
    if let Some(var) = &p.binding {
        bound.insert(var.clone());
    }
    let mut collect = |alts: &Vec<Vec<Atom>>| {
        if let [alt] = alts.as_slice() {
            for atom in alt {
                if let Atom::Term(Term::Var(v) | Term::MultiVar(v)) = atom {
                    bound.insert(v.clone());
                }
            }
        }
    };
    for (_, sp) in &p.slots {
        match sp {
            SlotPattern::Single(fc) => collect(&fc.alts),
            SlotPattern::MultiSeq(fcs) => {
                for fc in fcs {
                    collect(&fc.alts);
                }
            }
        }
    }
}

fn compile_pattern(
    p: &PatternCE,
    bound: &HashSet<Arc<str>>,
    templates: &FxHashMap<Arc<str>, Arc<Template>>,
) -> Node {
    let mut node = Node::default();
    let Some(template) = templates.get(p.template.as_ref()) else {
        return node;
    };
    let mut residual = Vec::new();
    let mut resolvable = true;
    for (slot, sp) in &p.slots {
        let Some(idx) = template.slot_index(slot) else {
            resolvable = false;
            continue;
        };
        let single_slot = template.slots()[idx].kind() == SlotKind::Single;
        if let SlotPattern::Single(fc) = sp {
            if single_slot {
                if let Some(v) = fc.as_single_literal() {
                    node.consts.push((idx, v.clone()));
                    // A literal equality the constant gate has already
                    // verified; nothing left to check, nothing bound.
                    continue;
                }
                if node.join.is_none() {
                    if let Some(var) = fc.as_single_var() {
                        if bound.contains(var) {
                            node.join = Some((idx, var.clone()));
                        }
                    }
                }
            }
        }
        residual.push((idx, sp.clone()));
    }
    node.residual = resolvable.then_some(residual);
    node
}

/// Compiles every condition element of `rule` into a [`Node`].
pub(crate) fn compile(rule: &Rule, templates: &FxHashMap<Arc<str>, Arc<Template>>) -> Vec<Node> {
    let mut bound: HashSet<Arc<str>> = HashSet::new();
    let mut nodes = Vec::with_capacity(rule.lhs().len());
    for ce in rule.lhs() {
        match ce {
            CondElem::Pattern(p) => {
                nodes.push(compile_pattern(p, &bound, templates));
                bound_by_pattern(p, &mut bound);
            }
            // Negated patterns can use joins/consts but bind nothing.
            CondElem::Not(p) => nodes.push(compile_pattern(p, &bound, templates)),
            CondElem::Test(_) => nodes.push(Node::default()),
        }
    }
    nodes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::FieldConstraint;
    use crate::rule::RuleBuilder;
    use crate::template::SlotDef;

    fn templates() -> FxHashMap<Arc<str>, Arc<Template>> {
        let mut m = FxHashMap::default();
        for name in ["open", "write"] {
            m.insert(
                Arc::from(name),
                Arc::new(Template::new(
                    name,
                    [SlotDef::single("path"), SlotDef::single("mode"), SlotDef::multi("tags")],
                )),
            );
        }
        m
    }

    #[test]
    fn consts_and_join_extraction() {
        let rule = RuleBuilder::new("r")
            .pattern(
                PatternCE::new("open")
                    .slot("path", SlotPattern::Single(FieldConstraint::var("p")))
                    .slot("mode", SlotPattern::Single(FieldConstraint::literal(Value::sym("rw")))),
            )
            .pattern(
                PatternCE::new("write")
                    .slot("path", SlotPattern::Single(FieldConstraint::var("p"))),
            )
            .build();
        let nodes = compile(&rule, &templates());
        assert_eq!(nodes.len(), 2);
        assert_eq!(nodes[0].consts, vec![(1, Value::sym("rw"))]);
        assert!(nodes[0].join.is_none(), "?p is unbound at the first pattern");
        assert_eq!(nodes[1].join, Some((0, Arc::from("p"))), "?p is bound by then");
    }

    #[test]
    fn multislot_is_never_indexed() {
        let rule = RuleBuilder::new("r")
            .pattern(
                PatternCE::new("open")
                    .slot("tags", SlotPattern::Single(FieldConstraint::literal(Value::sym("x")))),
            )
            .build();
        let nodes = compile(&rule, &templates());
        assert!(nodes[0].consts.is_empty());
        assert!(nodes[0].join.is_none());
    }
}
