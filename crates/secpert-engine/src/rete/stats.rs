//! Match-network instrumentation counters.

/// Counters describing the work the incremental match network performed.
///
/// All counters are cumulative over the engine's lifetime (they survive
/// [`crate::Engine::reset`]); `tokens_live` is the current population.
/// The naive matcher reports all-zero stats.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MatchStats {
    /// Constant-slot discrimination checks performed (alpha network).
    pub alpha_tests: u64,
    /// Constant-slot checks that passed.
    pub alpha_hits: u64,
    /// Full pattern verifications attempted while joining (beta network).
    pub join_attempts: u64,
    /// Join verifications that matched and produced/extended a token.
    pub join_matches: u64,
    /// `not` support evaluations (fact vs negated pattern).
    pub neg_checks: u64,
    /// Tokens created since engine construction.
    pub tokens_created: u64,
    /// Tokens removed since engine construction.
    pub tokens_removed: u64,
    /// Tokens currently alive in the network.
    pub tokens_live: u64,
    /// Probes of the slot-value / beta-memory hash indexes.
    pub index_lookups: u64,
    /// Probes that found a non-empty bucket.
    pub index_hits: u64,
    /// Activations handed to the agenda by the network.
    pub activations: u64,
    /// Negated-rule resequencing passes (agenda-order emulation).
    pub resequences: u64,
}

impl MatchStats {
    /// Adds `other`'s counters into `self` (fleet-level aggregation).
    pub fn merge(&mut self, other: &MatchStats) {
        self.alpha_tests += other.alpha_tests;
        self.alpha_hits += other.alpha_hits;
        self.join_attempts += other.join_attempts;
        self.join_matches += other.join_matches;
        self.neg_checks += other.neg_checks;
        self.tokens_created += other.tokens_created;
        self.tokens_removed += other.tokens_removed;
        self.tokens_live += other.tokens_live;
        self.index_lookups += other.index_lookups;
        self.index_hits += other.index_hits;
        self.activations += other.activations;
        self.resequences += other.resequences;
    }

    /// Adds the counters of a *retired* engine (quarantined, crashed, or
    /// otherwise never running again). Like [`MatchStats::merge`], except
    /// the dead engine's live-token population is folded into
    /// `tokens_removed` instead of `tokens_live` — its tokens died with
    /// it, and summing them as live would inflate the fleet-wide gauge
    /// on every respawn.
    pub fn merge_retired(&mut self, other: &MatchStats) {
        self.merge(other);
        self.tokens_live -= other.tokens_live;
        self.tokens_removed += other.tokens_live;
    }

    /// Folds the counters into `metrics` under `hth_match_*` names.
    /// Counters add; the live-token population is a gauge.
    pub fn record_metrics(&self, metrics: &mut hth_trace::MetricsSnapshot) {
        metrics.add_counter("hth_match_alpha_tests", self.alpha_tests);
        metrics.add_counter("hth_match_alpha_hits", self.alpha_hits);
        metrics.add_counter("hth_match_join_attempts", self.join_attempts);
        metrics.add_counter("hth_match_join_matches", self.join_matches);
        metrics.add_counter("hth_match_neg_checks", self.neg_checks);
        metrics.add_counter("hth_match_tokens_created", self.tokens_created);
        metrics.add_counter("hth_match_tokens_removed", self.tokens_removed);
        metrics.set_gauge("hth_match_tokens_live", self.tokens_live as i64);
        metrics.add_counter("hth_match_index_lookups", self.index_lookups);
        metrics.add_counter("hth_match_index_hits", self.index_hits);
        metrics.add_counter("hth_match_activations", self.activations);
        metrics.add_counter("hth_match_resequences", self.resequences);
    }

    /// Fraction of index probes that found a bucket, in `[0, 1]`.
    pub fn index_hit_rate(&self) -> f64 {
        if self.index_lookups == 0 {
            0.0
        } else {
            self.index_hits as f64 / self.index_lookups as f64
        }
    }

    /// True when no counter has moved (e.g. the naive matcher is active).
    pub fn is_empty(&self) -> bool {
        *self == MatchStats::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fieldwise() {
        let mut a =
            MatchStats { join_attempts: 2, index_lookups: 4, index_hits: 1, ..Default::default() };
        let b =
            MatchStats { join_attempts: 3, index_lookups: 4, index_hits: 3, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.join_attempts, 5);
        assert_eq!(a.index_hit_rate(), 0.5);
        assert!(!a.is_empty());
        assert!(MatchStats::default().is_empty());
    }

    #[test]
    fn merge_retired_folds_live_tokens_into_removed() {
        let mut fleet = MatchStats {
            tokens_created: 10,
            tokens_removed: 4,
            tokens_live: 6,
            ..Default::default()
        };
        let dead = MatchStats {
            tokens_created: 5,
            tokens_removed: 2,
            tokens_live: 3,
            ..Default::default()
        };
        fleet.merge_retired(&dead);
        assert_eq!(fleet.tokens_created, 15);
        assert_eq!(fleet.tokens_live, 6, "dead engine's tokens are not alive anywhere");
        assert_eq!(fleet.tokens_removed, 9);
        assert_eq!(fleet.tokens_created, fleet.tokens_removed + fleet.tokens_live);
    }

    #[test]
    fn record_metrics_names_every_counter() {
        let stats =
            MatchStats { activations: 7, tokens_live: 2, index_lookups: 3, ..Default::default() };
        let mut metrics = hth_trace::MetricsSnapshot::default();
        stats.record_metrics(&mut metrics);
        assert_eq!(metrics.counter("hth_match_activations"), 7);
        assert_eq!(metrics.gauge("hth_match_tokens_live"), Some(2));
        assert_eq!(metrics.counter("hth_match_index_lookups"), 3);
    }
}
