//! Match-network instrumentation counters.

/// Counters describing the work the incremental match network performed.
///
/// All counters are cumulative over the engine's lifetime (they survive
/// [`crate::Engine::reset`]); `tokens_live` is the current population.
/// The naive matcher reports all-zero stats.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MatchStats {
    /// Constant-slot discrimination checks performed (alpha network).
    pub alpha_tests: u64,
    /// Constant-slot checks that passed.
    pub alpha_hits: u64,
    /// Full pattern verifications attempted while joining (beta network).
    pub join_attempts: u64,
    /// Join verifications that matched and produced/extended a token.
    pub join_matches: u64,
    /// `not` support evaluations (fact vs negated pattern).
    pub neg_checks: u64,
    /// Tokens created since engine construction.
    pub tokens_created: u64,
    /// Tokens removed since engine construction.
    pub tokens_removed: u64,
    /// Tokens currently alive in the network.
    pub tokens_live: u64,
    /// Probes of the slot-value / beta-memory hash indexes.
    pub index_lookups: u64,
    /// Probes that found a non-empty bucket.
    pub index_hits: u64,
    /// Activations handed to the agenda by the network.
    pub activations: u64,
    /// Negated-rule resequencing passes (agenda-order emulation).
    pub resequences: u64,
}

impl MatchStats {
    /// Adds `other`'s counters into `self` (fleet-level aggregation).
    pub fn merge(&mut self, other: &MatchStats) {
        self.alpha_tests += other.alpha_tests;
        self.alpha_hits += other.alpha_hits;
        self.join_attempts += other.join_attempts;
        self.join_matches += other.join_matches;
        self.neg_checks += other.neg_checks;
        self.tokens_created += other.tokens_created;
        self.tokens_removed += other.tokens_removed;
        self.tokens_live += other.tokens_live;
        self.index_lookups += other.index_lookups;
        self.index_hits += other.index_hits;
        self.activations += other.activations;
        self.resequences += other.resequences;
    }

    /// Fraction of index probes that found a bucket, in `[0, 1]`.
    pub fn index_hit_rate(&self) -> f64 {
        if self.index_lookups == 0 {
            0.0
        } else {
            self.index_hits as f64 / self.index_lookups as f64
        }
    }

    /// True when no counter has moved (e.g. the naive matcher is active).
    pub fn is_empty(&self) -> bool {
        *self == MatchStats::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fieldwise() {
        let mut a =
            MatchStats { join_attempts: 2, index_lookups: 4, index_hits: 1, ..Default::default() };
        let b =
            MatchStats { join_attempts: 3, index_lookups: 4, index_hits: 3, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.join_attempts, 5);
        assert_eq!(a.index_hit_rate(), 0.5);
        assert!(!a.is_empty());
        assert!(MatchStats::default().is_empty());
    }
}
