//! The incremental match network: token tree, beta memories and the
//! assert/retract propagation that keeps rule activations up to date.
//!
//! # Topology
//!
//! Each rule compiles to a linear chain of nodes, one per condition
//! element. Level `0` holds the rule's root token (empty tuple, empty
//! bindings); level `i + 1` holds the tokens that have consumed
//! condition elements `0..=i`. A token at the last level is a *complete
//! match* and corresponds to one (potential) agenda activation.
//!
//! Facts arriving at a pattern node join against the tokens of the
//! parent memory — narrowed by the shared-variable beta index and the
//! constant-slot alpha index when the compile step found one — and
//! spawn child tokens that cascade down the chain. Retraction deletes
//! the token subtrees hanging off the retracted fact: O(tokens touched).
//!
//! # Negation
//!
//! A token whose next node is a `not` CE carries a *blocker set*: the
//! facts currently matching the negated pattern under the token's
//! bindings. The negated branch of the chain exists exactly while the
//! set is empty; asserts and retracts adjust the set (support counting)
//! instead of recomputing the rule.
//!
//! # Agenda-order emulation
//!
//! The network reproduces the naive matcher's activation sequencing
//! byte-for-byte (see `tests/match_diff.rs`):
//!
//! - new matches from an assert are emitted seed-position-major, then
//!   in ascending fact-tuple order — the naive seed-join's DFS order;
//! - rules with a `not` CE on the changed template are *resequenced*:
//!   every surviving complete match is re-pushed with a fresh sequence
//!   number in full-tuple order, mirroring the naive full recompute
//!   (O(complete tokens), not O(full join)).

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use crate::engine::ActKey;
use crate::error::Result;
use crate::expr::{eval, Bindings, Host};
use crate::fact::{Fact, FactId, WorkingMemory};
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::pattern::{match_resolved_slots, CondElem, PatternCE};
use crate::rule::Rule;
use crate::template::Template;
use crate::value::Value;

use super::compile::{compile, Node};
use super::stats::MatchStats;

/// A fact tuple: one entry per condition element consumed so far
/// (`None` for `not`/`test` positions). Doubles as the activation key.
type Tuple = Vec<Option<FactId>>;

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct TokenId(u64);

#[derive(Debug)]
struct Token {
    prod: usize,
    /// Memory level the token occupies: 0 is the root, `i + 1` means
    /// condition elements `0..=i` are consumed.
    level: usize,
    parent: Option<TokenId>,
    children: Vec<TokenId>,
    /// Fact consumed at this level (`None` for root/`not`/`test` levels).
    fact: Option<FactId>,
    tuple: Tuple,
    bindings: Bindings,
    /// Facts currently matching the `not` CE that follows this level
    /// (empty unless the next node is a negation).
    blockers: BTreeSet<FactId>,
}

/// One beta memory: the tokens at one level of one production.
#[derive(Debug, Default)]
struct Memory {
    /// Token identity by tuple; also the duplicate-path guard (a fact
    /// reaching the same tuple via two seed positions lands once).
    by_tuple: FxHashMap<Tuple, TokenId>,
    /// Tokens keyed by the consuming node's join-variable value.
    index: FxHashMap<Value, FxHashSet<TokenId>>,
    /// Tokens whose join variable was unexpectedly unbound; always
    /// consulted so a conservative compile can never lose matches.
    unindexed: FxHashSet<TokenId>,
}

struct Production {
    rule: Arc<Rule>,
    nodes: Vec<Node>,
    root: TokenId,
    /// `lhs.len() + 1` memories; the last holds complete matches.
    memories: Vec<Memory>,
    /// Single positive pattern at position 0 followed only by `test`
    /// CEs: matches of such a rule touch exactly one fact, so the
    /// network skips the token tree entirely (see [`FastEntry`]).
    fast: bool,
}

/// Fast-path match record: one production's live (partial or complete)
/// match on one fact. Replaces the token chain for `fast` productions —
/// a single-pattern rule's whole match state is the fact id plus how far
/// down the test suffix it got.
#[derive(Clone, Copy, Debug)]
struct FastEntry {
    prod: usize,
    /// Tokens the chain would have held (1 for the pattern + 1 per
    /// passed test), kept so [`MatchStats`] token counters stay
    /// byte-identical with the token path.
    virtual_tokens: u64,
    /// Whether the whole test suffix passed (an agenda activation).
    complete: bool,
}

/// A complete match handed to the agenda.
pub(crate) struct Emission {
    /// Rule index.
    pub rule: usize,
    /// Fact tuple (the activation/refraction key body).
    pub tuple: Tuple,
    /// Variable bindings for RHS evaluation.
    pub bindings: Bindings,
}

/// Agenda edits produced by one assert or retract, in application order:
/// removals, then ordered pushes, then negated-rule resequences.
#[derive(Default)]
pub(crate) struct UpdateOutcome {
    /// Activations whose tokens were deleted.
    pub removals: Vec<ActKey>,
    /// New matches in exact naive-equivalent push order.
    pub pushes: Vec<Emission>,
    /// Rules to resequence: remove all their activations, then push the
    /// given matches (already in full-tuple order) with fresh seqs.
    pub resequences: Vec<(usize, Vec<Emission>)>,
}

/// The incremental Rete-style match network.
#[derive(Default)]
pub(crate) struct ReteNetwork {
    prods: Vec<Production>,
    tokens: FxHashMap<TokenId, Token>,
    /// Fact -> tokens that consumed it at a positive position.
    fact_tokens: FxHashMap<FactId, Vec<TokenId>>,
    /// Fact -> fast-path matches (one per `fast` production whose
    /// pattern matched the fact).
    fact_fast: FxHashMap<FactId, Vec<FastEntry>>,
    /// Reusable bindings buffer for fast-path match attempts; most
    /// attempts fail, so the allocation survives across them.
    fast_scratch: Bindings,
    /// Reusable site buffers for `on_assert` (the per-event clones of
    /// the dispatch-table entries).
    scratch_pos: Vec<(usize, usize)>,
    scratch_neg: Vec<usize>,
    /// Fact -> tokens whose blocker set contains it.
    fact_blocks: FxHashMap<FactId, FxHashSet<TokenId>>,
    /// Template -> positive pattern sites `(prod, pos)`, ascending, so
    /// an assert dispatches straight to the productions that can care
    /// instead of scanning every rule's left-hand side.
    pos_sites: HashMap<Arc<str>, Vec<(usize, usize)>>,
    /// Template -> productions with a `not` CE on it, ascending.
    neg_sites: HashMap<Arc<str>, Vec<usize>>,
    next_token: u64,
    pub(crate) stats: MatchStats,
}

impl ReteNetwork {
    pub(crate) fn new() -> ReteNetwork {
        ReteNetwork::default()
    }

    /// Approximate resident bytes of the token tree, beta memories, and
    /// per-fact dispatch maps — the match network's growth surface for
    /// session memory budgeting. Compiled productions are excluded: their
    /// size is a function of the (shared, fixed) rule base, not of the
    /// event stream.
    pub(crate) fn approx_bytes(&self) -> usize {
        let mut bytes = 0usize;
        for token in self.tokens.values() {
            bytes += std::mem::size_of::<Token>()
                + token.children.len() * std::mem::size_of::<TokenId>()
                + token.tuple.len() * std::mem::size_of::<Option<FactId>>()
                + token.blockers.len() * 24
                + token
                    .bindings
                    .iter()
                    .map(|(name, value)| name.len() + crate::fact::value_approx_bytes(value))
                    .sum::<usize>();
        }
        for prod in &self.prods {
            for memory in &prod.memories {
                bytes += memory.by_tuple.len() * 48;
                for (value, ids) in &memory.index {
                    bytes += crate::fact::value_approx_bytes(value) + 32 + ids.len() * 8;
                }
                bytes += memory.unindexed.len() * 8;
            }
        }
        bytes += self.fact_tokens.values().map(|v| 32 + v.len() * 8).sum::<usize>();
        bytes += self.fact_fast.values().map(|v| 32 + v.len() * 24).sum::<usize>();
        bytes += self.fact_blocks.values().map(|s| 32 + s.len() * 8).sum::<usize>();
        bytes
    }

    fn new_token_id(&mut self) -> TokenId {
        self.next_token += 1;
        TokenId(self.next_token)
    }

    fn make_root(&mut self, prod: usize) -> TokenId {
        let id = self.new_token_id();
        self.tokens.insert(
            id,
            Token {
                prod,
                level: 0,
                parent: None,
                children: Vec::new(),
                fact: None,
                tuple: Vec::new(),
                bindings: Bindings::new(),
                blockers: BTreeSet::new(),
            },
        );
        self.prods[prod].memories[0].by_tuple.insert(Vec::new(), id);
        id
    }

    /// Compiles `rule` into the network and joins it against the current
    /// working memory. Returns the rule's complete matches in full-tuple
    /// order, ready to push (the naive `recompute_rule` order).
    pub(crate) fn add_production(
        &mut self,
        rule: Arc<Rule>,
        templates: &FxHashMap<Arc<str>, Arc<Template>>,
        wm: &WorkingMemory,
        host: &mut dyn Host,
    ) -> Result<Vec<Emission>> {
        let prod = self.prods.len();
        let nodes = compile(&rule, templates);
        for (pos, p) in rule.positive_positions() {
            self.pos_sites.entry(p.template.clone()).or_default().push((prod, pos));
        }
        for (_, p) in rule.negative_positions() {
            let sites = self.neg_sites.entry(p.template.clone()).or_default();
            if sites.last() != Some(&prod) {
                sites.push(prod);
            }
        }
        let levels = rule.lhs().len() + 1;
        let fast = matches!(rule.lhs().first(), Some(CondElem::Pattern(_)))
            && rule.lhs()[1..].iter().all(|ce| matches!(ce, CondElem::Test(_)));
        self.prods.push(Production {
            rule,
            nodes,
            root: TokenId(0),
            memories: (0..levels).map(|_| Memory::default()).collect(),
            fast,
        });
        if fast {
            return self.fast_join_wm(prod, wm, host);
        }
        let root = self.make_root(prod);
        self.prods[prod].root = root;
        let mut complete = Vec::new();
        self.extend_token(prod, root, wm, host, &mut complete)?;
        Ok(self.emissions_sorted(prod, complete))
    }

    /// Joins a freshly added fast-path production against the current
    /// working memory: the level-0 leg of `extend_token` without the
    /// token tree. Candidate narrowing and stats mirror `candidates`.
    fn fast_join_wm(
        &mut self,
        pi: usize,
        wm: &WorkingMemory,
        host: &mut dyn Host,
    ) -> Result<Vec<Emission>> {
        let rule = self.prods[pi].rule.clone();
        let CondElem::Pattern(p) = &rule.lhs()[0] else { unreachable!("fast production") };
        let ids: Vec<FactId> = if let Some((slot, value)) = self.prods[pi].nodes[0].consts.first() {
            let (slot, value) = (*slot, value.clone());
            self.stats.index_lookups += 1;
            match wm.ids_with(&p.template, slot, &value) {
                Some(ids) => {
                    self.stats.index_hits += 1;
                    ids.iter().copied().collect()
                }
                None => Vec::new(),
            }
        } else {
            wm.ids_of(&p.template).to_vec()
        };
        let mut complete = Vec::new();
        for cid in ids {
            let Some(fact) = wm.get(cid).cloned() else { continue };
            if !self.const_check(pi, 0, &fact) {
                continue;
            }
            if let Some(emission) = self.fast_match(pi, cid, &fact, host)? {
                complete.push(emission);
            }
        }
        complete.sort_by(|a, b| a.tuple.cmp(&b.tuple));
        Ok(complete)
    }

    /// One fast-path match attempt: pattern, fact binding, then the test
    /// suffix, all against fresh bindings (the root token's). Registers
    /// the partial/complete match in `fact_fast` and returns the agenda
    /// emission when every test passed. Stats counters move exactly as
    /// the token path would have moved them.
    fn fast_match(
        &mut self,
        pi: usize,
        id: FactId,
        fact: &Fact,
        host: &mut dyn Host,
    ) -> Result<Option<Emission>> {
        let rule = self.prods[pi].rule.clone();
        let CondElem::Pattern(p) = &rule.lhs()[0] else { unreachable!("fast production") };
        self.stats.join_attempts += 1;
        let mut bindings = std::mem::take(&mut self.fast_scratch);
        bindings.clear();
        // The dispatch tables guarantee the template matches and
        // `const_check` has verified the constant slots; the residual
        // walk covers the rest (unless compilation could not resolve
        // the slots — then the full matcher reports the error).
        let matched = match &self.prods[pi].nodes[0].residual {
            Some(residual) => match_resolved_slots(residual, fact, &mut bindings, host)?,
            None => p.matches(fact, &mut bindings, host)?,
        };
        if !matched {
            self.fast_scratch = bindings;
            return Ok(None);
        }
        if let Some(var) = &p.binding {
            // `?f <-` rebinding to a different fact must fail.
            match bindings.get(var.as_ref()) {
                Some(existing) if *existing != Value::Fact(id) => {
                    self.fast_scratch = bindings;
                    return Ok(None);
                }
                _ => {
                    bindings.insert(var.clone(), Value::Fact(id));
                }
            }
        }
        self.stats.join_matches += 1;
        let mut virtual_tokens = 1u64;
        let mut complete = true;
        for ce in &rule.lhs()[1..] {
            let CondElem::Test(expr) = ce else { unreachable!("fast production") };
            // `bind` side effects inside a test persist downstream,
            // exactly as in the token chain.
            if eval(expr, &mut bindings, host)?.is_truthy() {
                virtual_tokens += 1;
            } else {
                complete = false;
                break;
            }
        }
        self.stats.tokens_created += virtual_tokens;
        self.stats.tokens_live += virtual_tokens;
        self.fact_fast.entry(id).or_default().push(FastEntry {
            prod: pi,
            virtual_tokens,
            complete,
        });
        if !complete {
            self.fast_scratch = bindings;
            return Ok(None);
        }
        let mut tuple = Vec::with_capacity(rule.lhs().len());
        tuple.push(Some(id));
        tuple.resize(rule.lhs().len(), None);
        Ok(Some(Emission { rule: pi, tuple, bindings }))
    }

    /// Drops every token (working memory was cleared) and re-roots each
    /// production, re-evaluating `not`/`test` prefixes against the now
    /// empty memory.
    pub(crate) fn reset(&mut self, wm: &WorkingMemory, host: &mut dyn Host) -> Result<()> {
        self.stats.tokens_removed += self.stats.tokens_live;
        self.stats.tokens_live = 0;
        self.tokens.clear();
        self.fact_tokens.clear();
        self.fact_fast.clear();
        self.fact_blocks.clear();
        for prod in &mut self.prods {
            for memory in &mut prod.memories {
                *memory = Memory::default();
            }
        }
        for prod in 0..self.prods.len() {
            if self.prods[prod].fast {
                // Fast productions keep no root token; an empty working
                // memory means they simply have no matches to rebuild.
                continue;
            }
            let root = self.make_root(prod);
            self.prods[prod].root = root;
            let mut scratch = Vec::new();
            self.extend_token(prod, root, wm, host, &mut scratch)?;
            // Every rule has at least one positive pattern (the engine
            // injects `initial-fact` otherwise), so nothing completes
            // against an empty working memory.
            debug_assert!(scratch.is_empty());
        }
        Ok(())
    }

    /// Productions whose live tokens (partial or complete matches)
    /// currently consume fact `id`, via the `fact_tokens`
    /// back-references. Deduplicated, in ascending production order.
    pub(crate) fn rules_using(&self, id: FactId) -> Vec<usize> {
        let mut prods: Vec<usize> = self
            .fact_tokens
            .get(&id)
            .into_iter()
            .flatten()
            .filter_map(|token| self.tokens.get(token).map(|t| t.prod))
            .collect();
        prods.extend(self.fact_fast.get(&id).into_iter().flatten().map(|entry| entry.prod));
        prods.sort_unstable();
        prods.dedup();
        prods
    }

    // ----- assert propagation -------------------------------------------

    pub(crate) fn on_assert(
        &mut self,
        id: FactId,
        wm: &WorkingMemory,
        host: &mut dyn Host,
    ) -> Result<UpdateOutcome> {
        let fact = wm.get(id).expect("asserted fact is live").clone();
        let template = fact.template().name();
        let mut outcome = UpdateOutcome::default();
        let mut resequence: Vec<usize> = Vec::new();
        // Only productions with a pattern site on this template can
        // react; walk the two (ascending) site lists merged so the
        // per-production work happens in production order, exactly as
        // the old scan over every rule did.
        let mut pos_buf = std::mem::take(&mut self.scratch_pos);
        let mut neg_buf = std::mem::take(&mut self.scratch_neg);
        pos_buf.clear();
        neg_buf.clear();
        pos_buf.extend_from_slice(self.pos_sites.get(template).map_or(&[][..], Vec::as_slice));
        neg_buf.extend_from_slice(self.neg_sites.get(template).map_or(&[][..], Vec::as_slice));
        let mut pos_sites = pos_buf.as_slice();
        let mut neg_prods = neg_buf.as_slice();
        while !pos_sites.is_empty() || !neg_prods.is_empty() {
            let pi = match (pos_sites.first(), neg_prods.first()) {
                (Some((p, _)), Some(n)) => (*p).min(*n),
                (Some((p, _)), None) => *p,
                (None, Some(n)) => *n,
                (None, None) => unreachable!("loop condition"),
            };
            let negated = neg_prods.first() == Some(&pi);
            if negated {
                neg_prods = &neg_prods[1..];
                // Update blocker sets of existing tokens *before* any
                // positive propagation: tokens created below compute
                // their blockers from a working memory that already
                // contains the fact, so doing supports first counts the
                // fact exactly once either way.
                let rule = self.prods[pi].rule.clone();
                self.update_supports_on_assert(
                    pi,
                    &rule,
                    id,
                    &fact,
                    template,
                    host,
                    &mut outcome.removals,
                )?;
            }
            let mut emitted: Vec<(usize, TokenId)> = Vec::new();
            if self.prods[pi].fast {
                // Single positive pattern at position 0: one site, one
                // possible emission, no token tree to grow.
                while let Some((p, _)) = pos_sites.first().copied() {
                    if p != pi {
                        break;
                    }
                    pos_sites = &pos_sites[1..];
                    if !self.const_check(pi, 0, &fact) {
                        continue;
                    }
                    if let Some(emission) = self.fast_match(pi, id, &fact, host)? {
                        outcome.pushes.push(emission);
                    }
                }
                continue;
            }
            while let Some((p, pos)) = pos_sites.first().copied() {
                if p != pi {
                    break;
                }
                pos_sites = &pos_sites[1..];
                if !self.const_check(pi, pos, &fact) {
                    continue;
                }
                let parents = self.right_parents(pi, pos, &fact);
                let mut complete = Vec::new();
                for parent in parents {
                    if !self.tokens.contains_key(&parent) {
                        continue;
                    }
                    self.try_extend(pi, pos, parent, id, &fact, wm, host, &mut complete)?;
                }
                emitted.extend(complete.into_iter().map(|t| (pos, t)));
            }
            if negated {
                // New matches surface through the resequence below, as
                // the naive full recompute would.
                resequence.push(pi);
            } else if !emitted.is_empty() {
                // Seed-position-major, then ascending fact tuple: the
                // naive seed-join DFS emission order.
                emitted.sort_by(|a, b| {
                    a.0.cmp(&b.0)
                        .then_with(|| self.tokens[&a.1].tuple.cmp(&self.tokens[&b.1].tuple))
                });
                for (_, t) in emitted {
                    outcome.pushes.push(self.emission(pi, t));
                }
            }
        }
        self.scratch_pos = pos_buf;
        self.scratch_neg = neg_buf;
        for pi in resequence {
            self.stats.resequences += 1;
            let matches = self.complete_matches(pi);
            outcome.resequences.push((pi, matches));
        }
        self.count_activations(&outcome);
        Ok(outcome)
    }

    /// Scans existing tokens sitting in front of `not` nodes over the
    /// asserted fact's template and grows their blocker sets; a set
    /// going empty-to-blocked deletes the negated branch.
    #[allow(clippy::too_many_arguments)]
    fn update_supports_on_assert(
        &mut self,
        pi: usize,
        rule: &Rule,
        id: FactId,
        fact: &Fact,
        template: &str,
        host: &mut dyn Host,
        removals: &mut Vec<ActKey>,
    ) -> Result<()> {
        let positions: Vec<usize> = rule
            .negative_positions()
            .filter(|(_, p)| p.template.as_ref() == template)
            .map(|(pos, _)| pos)
            .collect();
        for pos in positions {
            if !self.const_check(pi, pos, fact) {
                continue;
            }
            let CondElem::Not(pattern) = &rule.lhs()[pos] else { unreachable!() };
            let parents: Vec<TokenId> =
                self.prods[pi].memories[pos].by_tuple.values().copied().collect();
            for t in parents {
                let Some(token) = self.tokens.get(&t) else { continue };
                let mut scratch = token.bindings.clone();
                self.stats.neg_checks += 1;
                if !pattern.matches(fact, &mut scratch, host)? {
                    continue;
                }
                let token = self.tokens.get_mut(&t).expect("checked above");
                let newly_blocked = token.blockers.is_empty();
                token.blockers.insert(id);
                let child_tuple = if newly_blocked {
                    let mut tuple = token.tuple.clone();
                    tuple.push(None);
                    Some(tuple)
                } else {
                    None
                };
                self.fact_blocks.entry(id).or_default().insert(t);
                if let Some(tuple) = child_tuple {
                    if let Some(child) =
                        self.prods[pi].memories[pos + 1].by_tuple.get(&tuple).copied()
                    {
                        self.delete_subtree(child, removals);
                    }
                }
            }
        }
        Ok(())
    }

    // ----- retract propagation ------------------------------------------

    /// `wm` no longer contains `id` when this runs (the engine retracts
    /// from working memory first), so freshly unblocked negations are
    /// evaluated against the post-retract fact population.
    pub(crate) fn on_retract(
        &mut self,
        id: FactId,
        template: &str,
        wm: &WorkingMemory,
        host: &mut dyn Host,
    ) -> Result<UpdateOutcome> {
        let mut outcome = UpdateOutcome::default();
        // 0. Drop the fast-path matches on the fact; complete ones come
        //    back as targeted agenda removals.
        if let Some(entries) = self.fact_fast.remove(&id) {
            for entry in entries {
                self.stats.tokens_removed += entry.virtual_tokens;
                self.stats.tokens_live -= entry.virtual_tokens;
                if entry.complete {
                    let len = self.prods[entry.prod].rule.lhs().len();
                    let mut tuple = Vec::with_capacity(len);
                    tuple.push(Some(id));
                    tuple.resize(len, None);
                    outcome.removals.push((entry.prod, tuple));
                }
            }
        }
        // 1. Delete the token subtrees that consumed the fact; their
        //    agenda activations come back as targeted removals.
        if let Some(tokens) = self.fact_tokens.remove(&id) {
            for t in tokens {
                if self.tokens.contains_key(&t) {
                    self.delete_subtree(t, &mut outcome.removals);
                }
            }
        }
        // 2. Shrink blocker sets; a set going empty revives the negated
        //    branch, whose new matches surface via the resequence below.
        if let Some(blocked) = self.fact_blocks.remove(&id) {
            for t in blocked {
                let Some(token) = self.tokens.get_mut(&t) else { continue };
                token.blockers.remove(&id);
                if !token.blockers.is_empty() {
                    continue;
                }
                let (pi, level, bindings) = (token.prod, token.level, token.bindings.clone());
                let mut scratch = Vec::new();
                if let Some(child) = self.create_child(pi, t, level, None, bindings) {
                    self.extend_token(pi, child, wm, host, &mut scratch)?;
                }
            }
        }
        // 3. Resequence rules negating on this template (naive parity:
        //    their full recompute refreshes every surviving seq).
        for pi in self.neg_sites.get(template).cloned().unwrap_or_default() {
            self.stats.resequences += 1;
            let matches = self.complete_matches(pi);
            outcome.resequences.push((pi, matches));
        }
        self.count_activations(&outcome);
        Ok(outcome)
    }

    // ----- token machinery ----------------------------------------------

    /// Extends `token` through its next node against current working
    /// memory, cascading to completion. Newly completed tokens are
    /// appended to `out`.
    fn extend_token(
        &mut self,
        pi: usize,
        token_id: TokenId,
        wm: &WorkingMemory,
        host: &mut dyn Host,
        out: &mut Vec<TokenId>,
    ) -> Result<()> {
        let rule = self.prods[pi].rule.clone();
        let level = self.tokens[&token_id].level;
        if level == rule.lhs().len() {
            out.push(token_id);
            return Ok(());
        }
        match &rule.lhs()[level] {
            CondElem::Pattern(p) => {
                let candidates = self.candidates(pi, level, p, &token_id, wm);
                for cid in candidates {
                    let Some(fact) = wm.get(cid).cloned() else { continue };
                    if !self.const_check(pi, level, &fact) {
                        continue;
                    }
                    if !self.tokens.contains_key(&token_id) {
                        break;
                    }
                    self.try_extend(pi, level, token_id, cid, &fact, wm, host, out)?;
                }
            }
            CondElem::Not(pattern) => {
                let candidates = self.candidates(pi, level, pattern, &token_id, wm);
                let bindings = self.tokens[&token_id].bindings.clone();
                let mut blockers = BTreeSet::new();
                for cid in candidates {
                    let Some(fact) = wm.get(cid).cloned() else { continue };
                    if !self.const_check(pi, level, &fact) {
                        continue;
                    }
                    self.stats.neg_checks += 1;
                    let mut scratch = bindings.clone();
                    if pattern.matches(&fact, &mut scratch, host)? {
                        blockers.insert(cid);
                    }
                }
                for cid in &blockers {
                    self.fact_blocks.entry(*cid).or_default().insert(token_id);
                }
                let empty = blockers.is_empty();
                self.tokens.get_mut(&token_id).expect("live token").blockers = blockers;
                if empty {
                    if let Some(child) = self.create_child(pi, token_id, level, None, bindings) {
                        self.extend_token(pi, child, wm, host, out)?;
                    }
                }
            }
            CondElem::Test(expr) => {
                let mut scratch = self.tokens[&token_id].bindings.clone();
                if eval(expr, &mut scratch, host)?.is_truthy() {
                    // `bind` side effects inside the test persist
                    // downstream, as in the naive DFS.
                    if let Some(child) = self.create_child(pi, token_id, level, None, scratch) {
                        self.extend_token(pi, child, wm, host, out)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// One join step: verifies `fact` against the pattern at `level`
    /// under `parent`'s bindings and, on success, spawns the child token
    /// and cascades it.
    #[allow(clippy::too_many_arguments)]
    fn try_extend(
        &mut self,
        pi: usize,
        level: usize,
        parent: TokenId,
        cid: FactId,
        fact: &Fact,
        wm: &WorkingMemory,
        host: &mut dyn Host,
        out: &mut Vec<TokenId>,
    ) -> Result<()> {
        let rule = self.prods[pi].rule.clone();
        let CondElem::Pattern(p) = &rule.lhs()[level] else { unreachable!() };
        self.stats.join_attempts += 1;
        let mut extended = self.tokens[&parent].bindings.clone();
        if !p.matches(fact, &mut extended, host)? {
            return Ok(());
        }
        if let Some(var) = &p.binding {
            // `?f <-` rebinding to a different fact must fail.
            match extended.get(var.as_ref()) {
                Some(existing) if existing != &Value::Fact(cid) => return Ok(()),
                _ => {
                    extended.insert(var.clone(), Value::Fact(cid));
                }
            }
        }
        self.stats.join_matches += 1;
        if let Some(child) = self.create_child(pi, parent, level, Some(cid), extended) {
            self.extend_token(pi, child, wm, host, out)?;
        }
        Ok(())
    }

    /// Creates the child token of `parent` through the node at `level`.
    /// Returns `None` when a token with the same tuple already exists
    /// (the fact reached this path through an earlier seed position).
    fn create_child(
        &mut self,
        pi: usize,
        parent: TokenId,
        level: usize,
        fact: Option<FactId>,
        bindings: Bindings,
    ) -> Option<TokenId> {
        let mut tuple = self.tokens[&parent].tuple.clone();
        tuple.push(fact);
        if self.prods[pi].memories[level + 1].by_tuple.contains_key(&tuple) {
            return None;
        }
        let id = self.new_token_id();
        let token = Token {
            prod: pi,
            level: level + 1,
            parent: Some(parent),
            children: Vec::new(),
            fact,
            tuple: tuple.clone(),
            bindings,
            blockers: BTreeSet::new(),
        };
        // Index the token in its memory under the consuming node's join
        // variable, when that node has one.
        let join_key = self.prods[pi]
            .nodes
            .get(level + 1)
            .and_then(|n| n.join.as_ref())
            .map(|(_, var)| token.bindings.get(var.as_ref()).cloned());
        let memory = &mut self.prods[pi].memories[level + 1];
        match join_key {
            Some(Some(value)) => {
                memory.index.entry(value).or_default().insert(id);
            }
            Some(None) => {
                // Conservative escape hatch: the compile step believed
                // the variable bound; never lose the token regardless.
                memory.unindexed.insert(id);
            }
            None => {}
        }
        memory.by_tuple.insert(tuple, id);
        if let Some(f) = fact {
            self.fact_tokens.entry(f).or_default().push(id);
        }
        self.tokens.get_mut(&parent).expect("live parent").children.push(id);
        self.tokens.insert(id, token);
        self.stats.tokens_created += 1;
        self.stats.tokens_live += 1;
        Some(id)
    }

    /// Deletes `token` and every descendant, unhooking memories, fact
    /// back-references and blocker back-references, and recording the
    /// agenda keys of deleted complete matches.
    fn delete_subtree(&mut self, token: TokenId, removals: &mut Vec<ActKey>) {
        // Detach the subtree root from its parent; descendants' parents
        // die with the subtree.
        if let Some(parent) = self.tokens[&token].parent {
            if let Some(p) = self.tokens.get_mut(&parent) {
                p.children.retain(|c| *c != token);
            }
        }
        let mut stack = vec![token];
        while let Some(t) = stack.pop() {
            let Some(tok) = self.tokens.remove(&t) else { continue };
            stack.extend(tok.children.iter().copied());
            let last_level = tok.level == self.prods[tok.prod].nodes.len();
            let join_key = self.prods[tok.prod]
                .nodes
                .get(tok.level)
                .and_then(|n| n.join.as_ref())
                .and_then(|(_, var)| tok.bindings.get(var.as_ref()).cloned());
            let memory = &mut self.prods[tok.prod].memories[tok.level];
            memory.by_tuple.remove(&tok.tuple);
            memory.unindexed.remove(&t);
            if let Some(value) = join_key {
                if let Some(bucket) = memory.index.get_mut(&value) {
                    bucket.remove(&t);
                    if bucket.is_empty() {
                        memory.index.remove(&value);
                    }
                }
            }
            if let Some(f) = tok.fact {
                if let Some(list) = self.fact_tokens.get_mut(&f) {
                    list.retain(|x| *x != t);
                }
            }
            for blocker in &tok.blockers {
                if let Some(set) = self.fact_blocks.get_mut(blocker) {
                    set.remove(&t);
                }
            }
            if last_level {
                removals.push((tok.prod, tok.tuple));
            }
            self.stats.tokens_removed += 1;
            self.stats.tokens_live -= 1;
        }
    }

    // ----- candidate enumeration ----------------------------------------

    /// Facts worth joining against `token` at the pattern of `level`:
    /// the beta-join bucket when the node has a join variable, else the
    /// constant-slot bucket, else the whole template extent.
    fn candidates(
        &mut self,
        pi: usize,
        level: usize,
        pattern: &PatternCE,
        token: &TokenId,
        wm: &WorkingMemory,
    ) -> Vec<FactId> {
        let node = &self.prods[pi].nodes[level];
        if let Some((slot, var)) = &node.join {
            if let Some(value) = self.tokens[token].bindings.get(var.as_ref()) {
                let (slot, value) = (*slot, value.clone());
                self.stats.index_lookups += 1;
                return match wm.ids_with(&pattern.template, slot, &value) {
                    Some(ids) => {
                        self.stats.index_hits += 1;
                        ids.iter().copied().collect()
                    }
                    None => Vec::new(),
                };
            }
        }
        if let Some((slot, value)) = node.consts.first() {
            let (slot, value) = (*slot, value.clone());
            self.stats.index_lookups += 1;
            return match wm.ids_with(&pattern.template, slot, &value) {
                Some(ids) => {
                    self.stats.index_hits += 1;
                    ids.iter().copied().collect()
                }
                None => Vec::new(),
            };
        }
        wm.ids_of(&pattern.template).to_vec()
    }

    /// Parent tokens worth joining a new fact against at `level`: the
    /// beta-index bucket for the fact's join-slot value (plus the
    /// conservative unindexed set), or the whole memory.
    fn right_parents(&mut self, pi: usize, level: usize, fact: &Fact) -> Vec<TokenId> {
        let memory = &self.prods[pi].memories[level];
        if let Some((slot, _)) = &self.prods[pi].nodes[level].join {
            let value = &fact.slots()[*slot];
            self.stats.index_lookups += 1;
            let mut parents: Vec<TokenId> = match memory.index.get(value) {
                Some(bucket) => {
                    self.stats.index_hits += 1;
                    bucket.iter().copied().collect()
                }
                None => Vec::new(),
            };
            parents.extend(memory.unindexed.iter().copied());
            parents
        } else {
            memory.by_tuple.values().copied().collect()
        }
    }

    /// Cheap constant-slot gate before a full pattern verification.
    fn const_check(&mut self, pi: usize, level: usize, fact: &Fact) -> bool {
        let node = &self.prods[pi].nodes[level];
        if node.consts.is_empty() {
            return true;
        }
        self.stats.alpha_tests += 1;
        let pass = node.consts.iter().all(|(slot, value)| &fact.slots()[*slot] == value);
        if pass {
            self.stats.alpha_hits += 1;
        }
        pass
    }

    // ----- emission helpers ---------------------------------------------

    fn emission(&self, pi: usize, token: TokenId) -> Emission {
        let tok = &self.tokens[&token];
        Emission { rule: pi, tuple: tok.tuple.clone(), bindings: tok.bindings.clone() }
    }

    fn emissions_sorted(&self, pi: usize, tokens: Vec<TokenId>) -> Vec<Emission> {
        let mut out: Vec<Emission> = tokens.into_iter().map(|t| self.emission(pi, t)).collect();
        out.sort_by(|a, b| a.tuple.cmp(&b.tuple));
        out
    }

    /// All complete matches of one rule in full-tuple order (the naive
    /// full-recompute DFS emission order).
    fn complete_matches(&self, pi: usize) -> Vec<Emission> {
        let last = self.prods[pi].nodes.len();
        let tokens: Vec<TokenId> =
            self.prods[pi].memories[last].by_tuple.values().copied().collect();
        self.emissions_sorted(pi, tokens)
    }

    fn count_activations(&mut self, outcome: &UpdateOutcome) {
        self.stats.activations += outcome.pushes.len() as u64;
        self.stats.activations +=
            outcome.resequences.iter().map(|(_, m)| m.len() as u64).sum::<u64>();
    }
}
