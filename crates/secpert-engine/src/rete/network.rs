//! The incremental match network: token tree, beta memories and the
//! assert/retract propagation that keeps rule activations up to date.
//!
//! # Topology
//!
//! Each rule compiles to a linear chain of nodes, one per condition
//! element. Level `0` holds the rule's root token (empty tuple, empty
//! bindings); level `i + 1` holds the tokens that have consumed
//! condition elements `0..=i`. A token at the last level is a *complete
//! match* and corresponds to one (potential) agenda activation.
//!
//! Facts arriving at a pattern node join against the tokens of the
//! parent memory — narrowed by the shared-variable beta index and the
//! constant-slot alpha index when the compile step found one — and
//! spawn child tokens that cascade down the chain. Retraction deletes
//! the token subtrees hanging off the retracted fact: O(tokens touched).
//!
//! # Negation
//!
//! A token whose next node is a `not` CE carries a *blocker set*: the
//! facts currently matching the negated pattern under the token's
//! bindings. The negated branch of the chain exists exactly while the
//! set is empty; asserts and retracts adjust the set (support counting)
//! instead of recomputing the rule.
//!
//! # Agenda-order emulation
//!
//! The network reproduces the naive matcher's activation sequencing
//! byte-for-byte (see `tests/match_diff.rs`):
//!
//! - new matches from an assert are emitted seed-position-major, then
//!   in ascending fact-tuple order — the naive seed-join's DFS order;
//! - rules with a `not` CE on the changed template are *resequenced*:
//!   every surviving complete match is re-pushed with a fresh sequence
//!   number in full-tuple order, mirroring the naive full recompute
//!   (O(complete tokens), not O(full join)).

use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::Arc;

use crate::engine::ActKey;
use crate::error::Result;
use crate::expr::{eval, Bindings, Host};
use crate::fact::{Fact, FactId, WorkingMemory};
use crate::pattern::{CondElem, PatternCE};
use crate::rule::Rule;
use crate::template::Template;
use crate::value::Value;

use super::compile::{compile, Node};
use super::stats::MatchStats;

/// A fact tuple: one entry per condition element consumed so far
/// (`None` for `not`/`test` positions). Doubles as the activation key.
type Tuple = Vec<Option<FactId>>;

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct TokenId(u64);

#[derive(Debug)]
struct Token {
    prod: usize,
    /// Memory level the token occupies: 0 is the root, `i + 1` means
    /// condition elements `0..=i` are consumed.
    level: usize,
    parent: Option<TokenId>,
    children: Vec<TokenId>,
    /// Fact consumed at this level (`None` for root/`not`/`test` levels).
    fact: Option<FactId>,
    tuple: Tuple,
    bindings: Bindings,
    /// Facts currently matching the `not` CE that follows this level
    /// (empty unless the next node is a negation).
    blockers: BTreeSet<FactId>,
}

/// One beta memory: the tokens at one level of one production.
#[derive(Debug, Default)]
struct Memory {
    /// Token identity by tuple; also the duplicate-path guard (a fact
    /// reaching the same tuple via two seed positions lands once).
    by_tuple: HashMap<Tuple, TokenId>,
    /// Tokens keyed by the consuming node's join-variable value.
    index: HashMap<Value, HashSet<TokenId>>,
    /// Tokens whose join variable was unexpectedly unbound; always
    /// consulted so a conservative compile can never lose matches.
    unindexed: HashSet<TokenId>,
}

struct Production {
    rule: Arc<Rule>,
    nodes: Vec<Node>,
    root: TokenId,
    /// `lhs.len() + 1` memories; the last holds complete matches.
    memories: Vec<Memory>,
}

/// A complete match handed to the agenda.
pub(crate) struct Emission {
    /// Rule index.
    pub rule: usize,
    /// Fact tuple (the activation/refraction key body).
    pub tuple: Tuple,
    /// Variable bindings for RHS evaluation.
    pub bindings: Bindings,
}

/// Agenda edits produced by one assert or retract, in application order:
/// removals, then ordered pushes, then negated-rule resequences.
#[derive(Default)]
pub(crate) struct UpdateOutcome {
    /// Activations whose tokens were deleted.
    pub removals: Vec<ActKey>,
    /// New matches in exact naive-equivalent push order.
    pub pushes: Vec<Emission>,
    /// Rules to resequence: remove all their activations, then push the
    /// given matches (already in full-tuple order) with fresh seqs.
    pub resequences: Vec<(usize, Vec<Emission>)>,
}

/// The incremental Rete-style match network.
#[derive(Default)]
pub(crate) struct ReteNetwork {
    prods: Vec<Production>,
    tokens: HashMap<TokenId, Token>,
    /// Fact -> tokens that consumed it at a positive position.
    fact_tokens: HashMap<FactId, Vec<TokenId>>,
    /// Fact -> tokens whose blocker set contains it.
    fact_blocks: HashMap<FactId, HashSet<TokenId>>,
    next_token: u64,
    pub(crate) stats: MatchStats,
}

impl ReteNetwork {
    pub(crate) fn new() -> ReteNetwork {
        ReteNetwork::default()
    }

    fn new_token_id(&mut self) -> TokenId {
        self.next_token += 1;
        TokenId(self.next_token)
    }

    fn make_root(&mut self, prod: usize) -> TokenId {
        let id = self.new_token_id();
        self.tokens.insert(
            id,
            Token {
                prod,
                level: 0,
                parent: None,
                children: Vec::new(),
                fact: None,
                tuple: Vec::new(),
                bindings: Bindings::new(),
                blockers: BTreeSet::new(),
            },
        );
        self.prods[prod].memories[0].by_tuple.insert(Vec::new(), id);
        id
    }

    /// Compiles `rule` into the network and joins it against the current
    /// working memory. Returns the rule's complete matches in full-tuple
    /// order, ready to push (the naive `recompute_rule` order).
    pub(crate) fn add_production(
        &mut self,
        rule: Arc<Rule>,
        templates: &HashMap<Arc<str>, Arc<Template>>,
        wm: &WorkingMemory,
        host: &mut dyn Host,
    ) -> Result<Vec<Emission>> {
        let prod = self.prods.len();
        let nodes = compile(&rule, templates);
        let levels = rule.lhs().len() + 1;
        self.prods.push(Production {
            rule,
            nodes,
            root: TokenId(0),
            memories: (0..levels).map(|_| Memory::default()).collect(),
        });
        let root = self.make_root(prod);
        self.prods[prod].root = root;
        let mut complete = Vec::new();
        self.extend_token(prod, root, wm, host, &mut complete)?;
        Ok(self.emissions_sorted(prod, complete))
    }

    /// Drops every token (working memory was cleared) and re-roots each
    /// production, re-evaluating `not`/`test` prefixes against the now
    /// empty memory.
    pub(crate) fn reset(&mut self, wm: &WorkingMemory, host: &mut dyn Host) -> Result<()> {
        self.stats.tokens_removed += self.stats.tokens_live;
        self.stats.tokens_live = 0;
        self.tokens.clear();
        self.fact_tokens.clear();
        self.fact_blocks.clear();
        for prod in &mut self.prods {
            for memory in &mut prod.memories {
                *memory = Memory::default();
            }
        }
        for prod in 0..self.prods.len() {
            let root = self.make_root(prod);
            self.prods[prod].root = root;
            let mut scratch = Vec::new();
            self.extend_token(prod, root, wm, host, &mut scratch)?;
            // Every rule has at least one positive pattern (the engine
            // injects `initial-fact` otherwise), so nothing completes
            // against an empty working memory.
            debug_assert!(scratch.is_empty());
        }
        Ok(())
    }

    /// Productions whose live tokens (partial or complete matches)
    /// currently consume fact `id`, via the `fact_tokens`
    /// back-references. Deduplicated, in ascending production order.
    pub(crate) fn rules_using(&self, id: FactId) -> Vec<usize> {
        let mut prods: Vec<usize> = self
            .fact_tokens
            .get(&id)
            .into_iter()
            .flatten()
            .filter_map(|token| self.tokens.get(token).map(|t| t.prod))
            .collect();
        prods.sort_unstable();
        prods.dedup();
        prods
    }

    // ----- assert propagation -------------------------------------------

    pub(crate) fn on_assert(
        &mut self,
        id: FactId,
        wm: &WorkingMemory,
        host: &mut dyn Host,
    ) -> Result<UpdateOutcome> {
        let fact = wm.get(id).expect("asserted fact is live").clone();
        let template = fact.template().name().to_string();
        let mut outcome = UpdateOutcome::default();
        let mut resequence: Vec<usize> = Vec::new();
        for pi in 0..self.prods.len() {
            let rule = self.prods[pi].rule.clone();
            let negated = rule.has_not_on(&template);
            if negated {
                // Update blocker sets of existing tokens *before* any
                // positive propagation: tokens created below compute
                // their blockers from a working memory that already
                // contains the fact, so doing supports first counts the
                // fact exactly once either way.
                self.update_supports_on_assert(
                    pi,
                    &rule,
                    id,
                    &fact,
                    &template,
                    host,
                    &mut outcome.removals,
                )?;
            }
            let positions: Vec<usize> = rule
                .positive_positions()
                .filter(|(_, p)| p.template.as_ref() == template)
                .map(|(pos, _)| pos)
                .collect();
            let mut emitted: Vec<(usize, TokenId)> = Vec::new();
            for pos in positions {
                if !self.const_check(pi, pos, &fact) {
                    continue;
                }
                let parents = self.right_parents(pi, pos, &fact);
                let mut complete = Vec::new();
                for parent in parents {
                    if !self.tokens.contains_key(&parent) {
                        continue;
                    }
                    self.try_extend(pi, pos, parent, id, &fact, wm, host, &mut complete)?;
                }
                emitted.extend(complete.into_iter().map(|t| (pos, t)));
            }
            if negated {
                // New matches surface through the resequence below, as
                // the naive full recompute would.
                resequence.push(pi);
            } else if !emitted.is_empty() {
                // Seed-position-major, then ascending fact tuple: the
                // naive seed-join DFS emission order.
                emitted.sort_by(|a, b| {
                    a.0.cmp(&b.0)
                        .then_with(|| self.tokens[&a.1].tuple.cmp(&self.tokens[&b.1].tuple))
                });
                for (_, t) in emitted {
                    outcome.pushes.push(self.emission(pi, t));
                }
            }
        }
        for pi in resequence {
            self.stats.resequences += 1;
            let matches = self.complete_matches(pi);
            outcome.resequences.push((pi, matches));
        }
        self.count_activations(&outcome);
        Ok(outcome)
    }

    /// Scans existing tokens sitting in front of `not` nodes over the
    /// asserted fact's template and grows their blocker sets; a set
    /// going empty-to-blocked deletes the negated branch.
    #[allow(clippy::too_many_arguments)]
    fn update_supports_on_assert(
        &mut self,
        pi: usize,
        rule: &Rule,
        id: FactId,
        fact: &Fact,
        template: &str,
        host: &mut dyn Host,
        removals: &mut Vec<ActKey>,
    ) -> Result<()> {
        let positions: Vec<usize> = rule
            .negative_positions()
            .filter(|(_, p)| p.template.as_ref() == template)
            .map(|(pos, _)| pos)
            .collect();
        for pos in positions {
            if !self.const_check(pi, pos, fact) {
                continue;
            }
            let CondElem::Not(pattern) = &rule.lhs()[pos] else { unreachable!() };
            let parents: Vec<TokenId> =
                self.prods[pi].memories[pos].by_tuple.values().copied().collect();
            for t in parents {
                let Some(token) = self.tokens.get(&t) else { continue };
                let mut scratch = token.bindings.clone();
                self.stats.neg_checks += 1;
                if !pattern.matches(fact, &mut scratch, host)? {
                    continue;
                }
                let token = self.tokens.get_mut(&t).expect("checked above");
                let newly_blocked = token.blockers.is_empty();
                token.blockers.insert(id);
                let child_tuple = if newly_blocked {
                    let mut tuple = token.tuple.clone();
                    tuple.push(None);
                    Some(tuple)
                } else {
                    None
                };
                self.fact_blocks.entry(id).or_default().insert(t);
                if let Some(tuple) = child_tuple {
                    if let Some(child) =
                        self.prods[pi].memories[pos + 1].by_tuple.get(&tuple).copied()
                    {
                        self.delete_subtree(child, removals);
                    }
                }
            }
        }
        Ok(())
    }

    // ----- retract propagation ------------------------------------------

    /// `wm` no longer contains `id` when this runs (the engine retracts
    /// from working memory first), so freshly unblocked negations are
    /// evaluated against the post-retract fact population.
    pub(crate) fn on_retract(
        &mut self,
        id: FactId,
        template: &str,
        wm: &WorkingMemory,
        host: &mut dyn Host,
    ) -> Result<UpdateOutcome> {
        let mut outcome = UpdateOutcome::default();
        // 1. Delete the token subtrees that consumed the fact; their
        //    agenda activations come back as targeted removals.
        if let Some(tokens) = self.fact_tokens.remove(&id) {
            for t in tokens {
                if self.tokens.contains_key(&t) {
                    self.delete_subtree(t, &mut outcome.removals);
                }
            }
        }
        // 2. Shrink blocker sets; a set going empty revives the negated
        //    branch, whose new matches surface via the resequence below.
        if let Some(blocked) = self.fact_blocks.remove(&id) {
            for t in blocked {
                let Some(token) = self.tokens.get_mut(&t) else { continue };
                token.blockers.remove(&id);
                if !token.blockers.is_empty() {
                    continue;
                }
                let (pi, level, bindings) = (token.prod, token.level, token.bindings.clone());
                let mut scratch = Vec::new();
                if let Some(child) = self.create_child(pi, t, level, None, bindings) {
                    self.extend_token(pi, child, wm, host, &mut scratch)?;
                }
            }
        }
        // 3. Resequence rules negating on this template (naive parity:
        //    their full recompute refreshes every surviving seq).
        for pi in 0..self.prods.len() {
            if self.prods[pi].rule.has_not_on(template) {
                self.stats.resequences += 1;
                let matches = self.complete_matches(pi);
                outcome.resequences.push((pi, matches));
            }
        }
        self.count_activations(&outcome);
        Ok(outcome)
    }

    // ----- token machinery ----------------------------------------------

    /// Extends `token` through its next node against current working
    /// memory, cascading to completion. Newly completed tokens are
    /// appended to `out`.
    fn extend_token(
        &mut self,
        pi: usize,
        token_id: TokenId,
        wm: &WorkingMemory,
        host: &mut dyn Host,
        out: &mut Vec<TokenId>,
    ) -> Result<()> {
        let rule = self.prods[pi].rule.clone();
        let level = self.tokens[&token_id].level;
        if level == rule.lhs().len() {
            out.push(token_id);
            return Ok(());
        }
        match &rule.lhs()[level] {
            CondElem::Pattern(p) => {
                let candidates = self.candidates(pi, level, p, &token_id, wm);
                for cid in candidates {
                    let Some(fact) = wm.get(cid).cloned() else { continue };
                    if !self.const_check(pi, level, &fact) {
                        continue;
                    }
                    if !self.tokens.contains_key(&token_id) {
                        break;
                    }
                    self.try_extend(pi, level, token_id, cid, &fact, wm, host, out)?;
                }
            }
            CondElem::Not(pattern) => {
                let candidates = self.candidates(pi, level, pattern, &token_id, wm);
                let bindings = self.tokens[&token_id].bindings.clone();
                let mut blockers = BTreeSet::new();
                for cid in candidates {
                    let Some(fact) = wm.get(cid).cloned() else { continue };
                    if !self.const_check(pi, level, &fact) {
                        continue;
                    }
                    self.stats.neg_checks += 1;
                    let mut scratch = bindings.clone();
                    if pattern.matches(&fact, &mut scratch, host)? {
                        blockers.insert(cid);
                    }
                }
                for cid in &blockers {
                    self.fact_blocks.entry(*cid).or_default().insert(token_id);
                }
                let empty = blockers.is_empty();
                self.tokens.get_mut(&token_id).expect("live token").blockers = blockers;
                if empty {
                    if let Some(child) = self.create_child(pi, token_id, level, None, bindings) {
                        self.extend_token(pi, child, wm, host, out)?;
                    }
                }
            }
            CondElem::Test(expr) => {
                let mut scratch = self.tokens[&token_id].bindings.clone();
                if eval(expr, &mut scratch, host)?.is_truthy() {
                    // `bind` side effects inside the test persist
                    // downstream, as in the naive DFS.
                    if let Some(child) = self.create_child(pi, token_id, level, None, scratch) {
                        self.extend_token(pi, child, wm, host, out)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// One join step: verifies `fact` against the pattern at `level`
    /// under `parent`'s bindings and, on success, spawns the child token
    /// and cascades it.
    #[allow(clippy::too_many_arguments)]
    fn try_extend(
        &mut self,
        pi: usize,
        level: usize,
        parent: TokenId,
        cid: FactId,
        fact: &Fact,
        wm: &WorkingMemory,
        host: &mut dyn Host,
        out: &mut Vec<TokenId>,
    ) -> Result<()> {
        let rule = self.prods[pi].rule.clone();
        let CondElem::Pattern(p) = &rule.lhs()[level] else { unreachable!() };
        self.stats.join_attempts += 1;
        let mut extended = self.tokens[&parent].bindings.clone();
        if !p.matches(fact, &mut extended, host)? {
            return Ok(());
        }
        if let Some(var) = &p.binding {
            // `?f <-` rebinding to a different fact must fail.
            match extended.get(var.as_ref()) {
                Some(existing) if existing != &Value::Fact(cid) => return Ok(()),
                _ => {
                    extended.insert(var.clone(), Value::Fact(cid));
                }
            }
        }
        self.stats.join_matches += 1;
        if let Some(child) = self.create_child(pi, parent, level, Some(cid), extended) {
            self.extend_token(pi, child, wm, host, out)?;
        }
        Ok(())
    }

    /// Creates the child token of `parent` through the node at `level`.
    /// Returns `None` when a token with the same tuple already exists
    /// (the fact reached this path through an earlier seed position).
    fn create_child(
        &mut self,
        pi: usize,
        parent: TokenId,
        level: usize,
        fact: Option<FactId>,
        bindings: Bindings,
    ) -> Option<TokenId> {
        let mut tuple = self.tokens[&parent].tuple.clone();
        tuple.push(fact);
        if self.prods[pi].memories[level + 1].by_tuple.contains_key(&tuple) {
            return None;
        }
        let id = self.new_token_id();
        let token = Token {
            prod: pi,
            level: level + 1,
            parent: Some(parent),
            children: Vec::new(),
            fact,
            tuple: tuple.clone(),
            bindings,
            blockers: BTreeSet::new(),
        };
        // Index the token in its memory under the consuming node's join
        // variable, when that node has one.
        let join_key = self.prods[pi]
            .nodes
            .get(level + 1)
            .and_then(|n| n.join.as_ref())
            .map(|(_, var)| token.bindings.get(var.as_ref()).cloned());
        let memory = &mut self.prods[pi].memories[level + 1];
        match join_key {
            Some(Some(value)) => {
                memory.index.entry(value).or_default().insert(id);
            }
            Some(None) => {
                // Conservative escape hatch: the compile step believed
                // the variable bound; never lose the token regardless.
                memory.unindexed.insert(id);
            }
            None => {}
        }
        memory.by_tuple.insert(tuple, id);
        if let Some(f) = fact {
            self.fact_tokens.entry(f).or_default().push(id);
        }
        self.tokens.get_mut(&parent).expect("live parent").children.push(id);
        self.tokens.insert(id, token);
        self.stats.tokens_created += 1;
        self.stats.tokens_live += 1;
        Some(id)
    }

    /// Deletes `token` and every descendant, unhooking memories, fact
    /// back-references and blocker back-references, and recording the
    /// agenda keys of deleted complete matches.
    fn delete_subtree(&mut self, token: TokenId, removals: &mut Vec<ActKey>) {
        // Detach the subtree root from its parent; descendants' parents
        // die with the subtree.
        if let Some(parent) = self.tokens[&token].parent {
            if let Some(p) = self.tokens.get_mut(&parent) {
                p.children.retain(|c| *c != token);
            }
        }
        let mut stack = vec![token];
        while let Some(t) = stack.pop() {
            let Some(tok) = self.tokens.remove(&t) else { continue };
            stack.extend(tok.children.iter().copied());
            let last_level = tok.level == self.prods[tok.prod].nodes.len();
            let join_key = self.prods[tok.prod]
                .nodes
                .get(tok.level)
                .and_then(|n| n.join.as_ref())
                .and_then(|(_, var)| tok.bindings.get(var.as_ref()).cloned());
            let memory = &mut self.prods[tok.prod].memories[tok.level];
            memory.by_tuple.remove(&tok.tuple);
            memory.unindexed.remove(&t);
            if let Some(value) = join_key {
                if let Some(bucket) = memory.index.get_mut(&value) {
                    bucket.remove(&t);
                    if bucket.is_empty() {
                        memory.index.remove(&value);
                    }
                }
            }
            if let Some(f) = tok.fact {
                if let Some(list) = self.fact_tokens.get_mut(&f) {
                    list.retain(|x| *x != t);
                }
            }
            for blocker in &tok.blockers {
                if let Some(set) = self.fact_blocks.get_mut(blocker) {
                    set.remove(&t);
                }
            }
            if last_level {
                removals.push((tok.prod, tok.tuple));
            }
            self.stats.tokens_removed += 1;
            self.stats.tokens_live -= 1;
        }
    }

    // ----- candidate enumeration ----------------------------------------

    /// Facts worth joining against `token` at the pattern of `level`:
    /// the beta-join bucket when the node has a join variable, else the
    /// constant-slot bucket, else the whole template extent.
    fn candidates(
        &mut self,
        pi: usize,
        level: usize,
        pattern: &PatternCE,
        token: &TokenId,
        wm: &WorkingMemory,
    ) -> Vec<FactId> {
        let node = &self.prods[pi].nodes[level];
        if let Some((slot, var)) = &node.join {
            if let Some(value) = self.tokens[token].bindings.get(var.as_ref()) {
                let (slot, value) = (*slot, value.clone());
                self.stats.index_lookups += 1;
                return match wm.ids_with(&pattern.template, slot, &value) {
                    Some(ids) => {
                        self.stats.index_hits += 1;
                        ids.iter().copied().collect()
                    }
                    None => Vec::new(),
                };
            }
        }
        if let Some((slot, value)) = node.consts.first() {
            let (slot, value) = (*slot, value.clone());
            self.stats.index_lookups += 1;
            return match wm.ids_with(&pattern.template, slot, &value) {
                Some(ids) => {
                    self.stats.index_hits += 1;
                    ids.iter().copied().collect()
                }
                None => Vec::new(),
            };
        }
        wm.ids_of(&pattern.template).to_vec()
    }

    /// Parent tokens worth joining a new fact against at `level`: the
    /// beta-index bucket for the fact's join-slot value (plus the
    /// conservative unindexed set), or the whole memory.
    fn right_parents(&mut self, pi: usize, level: usize, fact: &Fact) -> Vec<TokenId> {
        let memory = &self.prods[pi].memories[level];
        if let Some((slot, _)) = &self.prods[pi].nodes[level].join {
            let value = &fact.slots()[*slot];
            self.stats.index_lookups += 1;
            let mut parents: Vec<TokenId> = match memory.index.get(value) {
                Some(bucket) => {
                    self.stats.index_hits += 1;
                    bucket.iter().copied().collect()
                }
                None => Vec::new(),
            };
            parents.extend(memory.unindexed.iter().copied());
            parents
        } else {
            memory.by_tuple.values().copied().collect()
        }
    }

    /// Cheap constant-slot gate before a full pattern verification.
    fn const_check(&mut self, pi: usize, level: usize, fact: &Fact) -> bool {
        let node = &self.prods[pi].nodes[level];
        if node.consts.is_empty() {
            return true;
        }
        self.stats.alpha_tests += 1;
        let pass = node.consts.iter().all(|(slot, value)| &fact.slots()[*slot] == value);
        if pass {
            self.stats.alpha_hits += 1;
        }
        pass
    }

    // ----- emission helpers ---------------------------------------------

    fn emission(&self, pi: usize, token: TokenId) -> Emission {
        let tok = &self.tokens[&token];
        Emission { rule: pi, tuple: tok.tuple.clone(), bindings: tok.bindings.clone() }
    }

    fn emissions_sorted(&self, pi: usize, tokens: Vec<TokenId>) -> Vec<Emission> {
        let mut out: Vec<Emission> = tokens.into_iter().map(|t| self.emission(pi, t)).collect();
        out.sort_by(|a, b| a.tuple.cmp(&b.tuple));
        out
    }

    /// All complete matches of one rule in full-tuple order (the naive
    /// full-recompute DFS emission order).
    fn complete_matches(&self, pi: usize) -> Vec<Emission> {
        let last = self.prods[pi].nodes.len();
        let tokens: Vec<TokenId> =
            self.prods[pi].memories[last].by_tuple.values().copied().collect();
        self.emissions_sorted(pi, tokens)
    }

    fn count_activations(&mut self, outcome: &UpdateOutcome) {
        self.stats.activations += outcome.pushes.len() as u64;
        self.stats.activations +=
            outcome.resequences.iter().map(|(_, m)| m.len() as u64).sum::<u64>();
    }
}
