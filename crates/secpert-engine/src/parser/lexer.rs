//! Tokenizer for the CLIPS-style surface syntax.

use crate::error::{EngineError, Result};

/// Token kinds.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// Bare symbol, e.g. `SYS_execve`, `<-`, `=` (when not `=>`/`=(`).
    Sym(String),
    /// Double-quoted string (escapes processed).
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// `?name`
    Var(String),
    /// `$?name`
    MultiVar(String),
    /// `?*name*`
    Global(String),
    /// Bare `?` wildcard.
    Question,
    /// Bare `$?` wildcard.
    DollarQuestion,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `~`
    Tilde,
    /// `:` (predicate-constraint prefix, as in `:(expr)`)
    Colon,
    /// `=` immediately followed by `(` — return-value constraint prefix.
    EqParen,
    /// `=>`
    Arrow,
}

/// A token with position information.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub tok: Tok,
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column.
    pub col: usize,
}

/// Characters that terminate a symbol.
fn is_delimiter(c: char) -> bool {
    c.is_whitespace() || matches!(c, '(' | ')' | '"' | ';' | '&' | '|' | '~')
}

/// Tokenizes CLIPS-style source text.
///
/// # Errors
///
/// Returns [`EngineError::Parse`] on unterminated strings or malformed
/// global references.
pub fn lex(src: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    let mut line = 1;
    let mut col = 1;

    macro_rules! err {
        ($($arg:tt)*) => {
            return Err(EngineError::Parse { line, col, message: format!($($arg)*) })
        };
    }

    while i < chars.len() {
        let c = chars[i];
        let (tline, tcol) = (line, col);
        let mut push = |tok: Tok| tokens.push(Token { tok, line: tline, col: tcol });

        let advance = |i: &mut usize, line: &mut usize, col: &mut usize| {
            if chars[*i] == '\n' {
                *line += 1;
                *col = 1;
            } else {
                *col += 1;
            }
            *i += 1;
        };

        match c {
            _ if c.is_whitespace() => advance(&mut i, &mut line, &mut col),
            ';' => {
                while i < chars.len() && chars[i] != '\n' {
                    advance(&mut i, &mut line, &mut col);
                }
            }
            '(' => {
                push(Tok::LParen);
                advance(&mut i, &mut line, &mut col);
            }
            ')' => {
                push(Tok::RParen);
                advance(&mut i, &mut line, &mut col);
            }
            '&' => {
                push(Tok::Amp);
                advance(&mut i, &mut line, &mut col);
            }
            '|' => {
                push(Tok::Pipe);
                advance(&mut i, &mut line, &mut col);
            }
            '~' => {
                push(Tok::Tilde);
                advance(&mut i, &mut line, &mut col);
            }
            '"' => {
                advance(&mut i, &mut line, &mut col);
                let mut s = String::new();
                loop {
                    if i >= chars.len() {
                        err!("unterminated string literal");
                    }
                    match chars[i] {
                        '"' => {
                            advance(&mut i, &mut line, &mut col);
                            break;
                        }
                        '\\' => {
                            advance(&mut i, &mut line, &mut col);
                            if i >= chars.len() {
                                err!("unterminated escape in string literal");
                            }
                            let esc = chars[i];
                            s.push(match esc {
                                'n' => '\n',
                                't' => '\t',
                                other => other,
                            });
                            advance(&mut i, &mut line, &mut col);
                        }
                        other => {
                            s.push(other);
                            advance(&mut i, &mut line, &mut col);
                        }
                    }
                }
                push(Tok::Str(s));
            }
            '?' => {
                advance(&mut i, &mut line, &mut col);
                if i < chars.len() && chars[i] == '*' {
                    advance(&mut i, &mut line, &mut col);
                    let mut name = String::new();
                    while i < chars.len() && chars[i] != '*' {
                        if is_delimiter(chars[i]) {
                            err!("malformed global: expected closing `*`");
                        }
                        name.push(chars[i]);
                        advance(&mut i, &mut line, &mut col);
                    }
                    if i >= chars.len() {
                        err!("malformed global: expected closing `*`");
                    }
                    advance(&mut i, &mut line, &mut col); // closing '*'
                    push(Tok::Global(name));
                } else {
                    let mut name = String::new();
                    while i < chars.len() && !is_delimiter(chars[i]) && chars[i] != ':' {
                        name.push(chars[i]);
                        advance(&mut i, &mut line, &mut col);
                    }
                    if name.is_empty() {
                        push(Tok::Question);
                    } else {
                        push(Tok::Var(name));
                    }
                }
            }
            '$' if i + 1 < chars.len() && chars[i + 1] == '?' => {
                advance(&mut i, &mut line, &mut col);
                advance(&mut i, &mut line, &mut col);
                let mut name = String::new();
                while i < chars.len() && !is_delimiter(chars[i]) {
                    name.push(chars[i]);
                    advance(&mut i, &mut line, &mut col);
                }
                if name.is_empty() {
                    push(Tok::DollarQuestion);
                } else {
                    push(Tok::MultiVar(name));
                }
            }
            ':' if i + 1 < chars.len() && chars[i + 1] == '(' => {
                push(Tok::Colon);
                advance(&mut i, &mut line, &mut col);
            }
            '=' if i + 1 < chars.len() && chars[i + 1] == '>' => {
                push(Tok::Arrow);
                advance(&mut i, &mut line, &mut col);
                advance(&mut i, &mut line, &mut col);
            }
            '=' if i + 1 < chars.len() && chars[i + 1] == '(' => {
                push(Tok::EqParen);
                advance(&mut i, &mut line, &mut col);
            }
            _ => {
                // Symbol or number: consume until delimiter.
                let mut text = String::new();
                while i < chars.len() && !is_delimiter(chars[i]) {
                    text.push(chars[i]);
                    advance(&mut i, &mut line, &mut col);
                }
                debug_assert!(!text.is_empty());
                if let Ok(n) = text.parse::<i64>() {
                    push(Tok::Int(n));
                } else if looks_numeric(&text) {
                    match text.parse::<f64>() {
                        Ok(x) => push(Tok::Float(x)),
                        Err(_) => push(Tok::Sym(text)),
                    }
                } else {
                    push(Tok::Sym(text));
                }
            }
        }
    }
    Ok(tokens)
}

/// True for texts that should parse as floats (avoids turning symbols
/// like `e5` or `-` into numbers).
fn looks_numeric(text: &str) -> bool {
    let rest = text.strip_prefix(['+', '-']).unwrap_or(text);
    rest.starts_with(|c: char| c.is_ascii_digit() || c == '.')
        && rest.chars().all(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'))
        && rest.chars().any(|c| c.is_ascii_digit())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            toks("(deftemplate ev (slot a))"),
            vec![
                Tok::LParen,
                Tok::Sym("deftemplate".into()),
                Tok::Sym("ev".into()),
                Tok::LParen,
                Tok::Sym("slot".into()),
                Tok::Sym("a".into()),
                Tok::RParen,
                Tok::RParen,
            ]
        );
    }

    #[test]
    fn variables_and_globals() {
        assert_eq!(
            toks("?x $?rest ?*LIMIT* ? $?"),
            vec![
                Tok::Var("x".into()),
                Tok::MultiVar("rest".into()),
                Tok::Global("LIMIT".into()),
                Tok::Question,
                Tok::DollarQuestion,
            ]
        );
    }

    #[test]
    fn connective_tokens() {
        assert_eq!(
            toks("?x&~A|B"),
            vec![
                Tok::Var("x".into()),
                Tok::Amp,
                Tok::Tilde,
                Tok::Sym("A".into()),
                Tok::Pipe,
                Tok::Sym("B".into()),
            ]
        );
    }

    #[test]
    fn predicate_and_return_value_prefixes() {
        assert_eq!(
            toks(":(> ?x 1) =(+ 1 2)"),
            vec![
                Tok::Colon,
                Tok::LParen,
                Tok::Sym(">".into()),
                Tok::Var("x".into()),
                Tok::Int(1),
                Tok::RParen,
                Tok::EqParen,
                Tok::LParen,
                Tok::Sym("+".into()),
                Tok::Int(1),
                Tok::Int(2),
                Tok::RParen,
            ]
        );
    }

    #[test]
    fn arrow_vs_equals_symbol() {
        assert_eq!(toks("=>"), vec![Tok::Arrow]);
        assert_eq!(
            toks("(= ?x 1)"),
            vec![Tok::LParen, Tok::Sym("=".into()), Tok::Var("x".into()), Tok::Int(1), Tok::RParen,]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            toks(r#""/bin/ls" "a\"b" "tab\there""#),
            vec![Tok::Str("/bin/ls".into()), Tok::Str("a\"b".into()), Tok::Str("tab\there".into()),]
        );
        assert!(lex("\"unterminated").is_err());
    }

    #[test]
    fn numbers_and_number_like_symbols() {
        assert_eq!(
            toks("42 -7 3.5 -0.25 1e3"),
            vec![
                Tok::Int(42),
                Tok::Int(-7),
                Tok::Float(3.5),
                Tok::Float(-0.25),
                Tok::Float(1000.0),
            ]
        );
        assert_eq!(toks("-"), vec![Tok::Sym("-".into())]);
        assert_eq!(toks("e5"), vec![Tok::Sym("e5".into())]);
        assert_eq!(toks("nth$"), vec![Tok::Sym("nth$".into())]);
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(toks("a ; comment here\nb"), vec![Tok::Sym("a".into()), Tok::Sym("b".into())]);
    }

    #[test]
    fn positions_track_lines() {
        let tokens = lex("a\n  b").unwrap();
        assert_eq!((tokens[0].line, tokens[0].col), (1, 1));
        assert_eq!((tokens[1].line, tokens[1].col), (2, 3));
    }

    #[test]
    fn fact_address_arrow_symbol() {
        assert_eq!(
            toks("?f <- (ev)"),
            vec![
                Tok::Var("f".into()),
                Tok::Sym("<-".into()),
                Tok::LParen,
                Tok::Sym("ev".into()),
                Tok::RParen,
            ]
        );
    }
}
