//! CLIPS-syntax frontend: `deftemplate`, `defrule`, `defglobal`,
//! `deffacts` and fact forms, parsed into the engine's native structures.
//!
//! The subset implemented is exactly what the HTH policy (paper Appendix
//! A) uses, plus the general expression grammar so new rules can be
//! authored without touching Rust.

mod lexer;
mod reader;

pub use lexer::{lex, Tok, Token};
pub use reader::{parse_fact_form, parse_program, Construct, ParsedFact};

use crate::engine::Engine;
use crate::error::Result;
use crate::fact::{Fact, FactId};
use crate::value::Value;

impl Engine {
    /// Loads CLIPS-style source: `deftemplate`, `defrule`, `defglobal`
    /// and `deffacts` constructs, applied in order.
    ///
    /// # Errors
    ///
    /// Returns parse errors (with positions) and semantic errors
    /// (unknown templates/slots, redefinitions).
    ///
    /// ```
    /// use secpert_engine::Engine;
    /// # fn main() -> Result<(), secpert_engine::EngineError> {
    /// let mut engine = Engine::new();
    /// engine.load_str("(deftemplate ev (slot n)) (defglobal ?*LIMIT* = 5)")?;
    /// assert!(engine.template("ev").is_some());
    /// # Ok(())
    /// # }
    /// ```
    pub fn load_str(&mut self, src: &str) -> Result<()> {
        let constructs = parse_program(src, &|name| self.template(name).cloned())?;
        for construct in constructs {
            match construct {
                Construct::Template(t) => {
                    self.add_template(t)?;
                }
                Construct::Rule(r) => self.add_rule(r)?,
                Construct::Global(name, value) => self.set_global(name, value),
                Construct::Function(f) => self.add_function(f)?,
                Construct::Deffacts(facts) => {
                    for parsed in facts {
                        let fact = self.build_parsed_fact(&parsed)?;
                        self.add_deffact(fact);
                    }
                }
            }
        }
        Ok(())
    }

    /// Parses and asserts a single fact form like
    /// `(system_call_access (time 33) (resource_name "/bin/ls"))`.
    ///
    /// Returns the new fact id, or `None` for suppressed duplicates.
    ///
    /// # Errors
    ///
    /// Returns parse errors and unknown template/slot errors.
    pub fn assert_str(&mut self, src: &str) -> Result<Option<FactId>> {
        let parsed = parse_fact_form(src)?;
        let fact = self.build_parsed_fact(&parsed)?;
        self.assert_fact(fact)
    }

    fn build_parsed_fact(&self, parsed: &ParsedFact) -> Result<Fact> {
        let mut builder = self.fact(&parsed.template)?;
        for (slot, values) in &parsed.slots {
            let value = match values.as_slice() {
                [single] => single.clone(),
                many => Value::multi(many.iter().cloned()),
            };
            builder = builder.slot(slot, value);
        }
        builder.build()
    }
}
