//! Recursive-descent reader: tokens → engine constructs.

use std::sync::Arc;

use crate::engine::UserFn;
use crate::error::{EngineError, Result};
use crate::expr::Expr;
use crate::pattern::{Atom, CondElem, FieldConstraint, PatternCE, SlotPattern, Term};
use crate::rule::Rule;
use crate::template::{SlotDef, SlotKind, Template};
use crate::value::Value;

use super::lexer::{lex, Tok, Token};

/// A top-level construct produced by [`parse_program`].
#[derive(Clone, Debug)]
pub enum Construct {
    /// `(deftemplate …)`
    Template(Template),
    /// `(defrule …)`
    Rule(Rule),
    /// `(defglobal ?*name* = value)`
    Global(String, Value),
    /// `(deffacts name (fact)…)`
    Deffacts(Vec<ParsedFact>),
    /// `(deffunction name (?a ?b [$?rest]) expr…)`
    Function(UserFn),
}

/// A parsed fact form (template instantiation with literal slot values).
#[derive(Clone, Debug, PartialEq)]
pub struct ParsedFact {
    /// Template name.
    pub template: String,
    /// Slot name → field values (several ⇒ multifield).
    pub slots: Vec<(String, Vec<Value>)>,
}

/// Resolves template names during parsing (templates already registered
/// with the engine, plus ones defined earlier in the same source).
type TemplateLookup<'a> = &'a dyn Fn(&str) -> Option<Arc<Template>>;

/// Parses a whole source text into constructs.
///
/// # Errors
///
/// Returns [`EngineError::Parse`] with position info on syntax errors and
/// semantic errors ([`EngineError::UnknownTemplate`], …) on bad references.
pub fn parse_program(src: &str, lookup: TemplateLookup<'_>) -> Result<Vec<Construct>> {
    let tokens = lex(src)?;
    let mut reader = Reader::new(&tokens, lookup);
    let mut constructs = Vec::new();
    while !reader.at_end() {
        constructs.push(reader.construct()?);
    }
    Ok(constructs)
}

/// Parses a single fact form like `(ev (slot value…)…)`.
///
/// # Errors
///
/// Returns [`EngineError::Parse`] on syntax errors.
pub fn parse_fact_form(src: &str) -> Result<ParsedFact> {
    let tokens = lex(src)?;
    let mut reader = Reader::new(&tokens, &|_| None);
    let fact = reader.fact_form()?;
    if !reader.at_end() {
        return Err(reader.error("trailing tokens after fact form"));
    }
    Ok(fact)
}

struct Reader<'a> {
    tokens: &'a [Token],
    pos: usize,
    lookup: TemplateLookup<'a>,
    local_templates: Vec<Arc<Template>>,
}

impl<'a> Reader<'a> {
    fn new(tokens: &'a [Token], lookup: TemplateLookup<'a>) -> Reader<'a> {
        Reader { tokens, pos: 0, lookup, local_templates: Vec::new() }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|t| &t.tok)
    }

    fn next(&mut self) -> Result<&'a Token> {
        let t = self.tokens.get(self.pos).ok_or_else(|| self.eof_error())?;
        self.pos += 1;
        Ok(t)
    }

    fn error(&self, message: impl Into<String>) -> EngineError {
        let (line, col) = self
            .tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map_or((0, 0), |t| (t.line, t.col));
        EngineError::Parse { line, col, message: message.into() }
    }

    fn eof_error(&self) -> EngineError {
        let (line, col) = self.tokens.last().map_or((1, 1), |t| (t.line, t.col));
        EngineError::Parse { line, col, message: "unexpected end of input".into() }
    }

    fn expect(&mut self, tok: &Tok, what: &str) -> Result<()> {
        let t = self.next()?;
        if &t.tok == tok {
            Ok(())
        } else {
            self.pos -= 1;
            Err(self.error(format!("expected {what}, found {:?}", t.tok)))
        }
    }

    fn symbol(&mut self, what: &str) -> Result<String> {
        match &self.next()?.tok {
            Tok::Sym(s) => Ok(s.clone()),
            other => {
                self.pos -= 1;
                Err(self.error(format!("expected {what}, found {other:?}")))
            }
        }
    }

    fn find_template(&self, name: &str) -> Option<Arc<Template>> {
        self.local_templates
            .iter()
            .find(|t| t.name() == name)
            .cloned()
            .or_else(|| (self.lookup)(name))
    }

    // ----- top-level constructs -----------------------------------------

    fn construct(&mut self) -> Result<Construct> {
        self.expect(&Tok::LParen, "`(`")?;
        let head = self.symbol("construct keyword")?;
        match head.as_str() {
            "deftemplate" => self.deftemplate(),
            "defrule" => self.defrule(),
            "defglobal" => self.defglobal(),
            "deffacts" => self.deffacts(),
            "deffunction" => self.deffunction(),
            other => Err(self.error(format!("unknown construct `{other}`"))),
        }
    }

    fn deftemplate(&mut self) -> Result<Construct> {
        let name = self.symbol("template name")?;
        let mut doc = None;
        if let Some(Tok::Str(s)) = self.peek() {
            doc = Some(s.clone());
            self.pos += 1;
        }
        let mut slots = Vec::new();
        while self.peek() != Some(&Tok::RParen) {
            self.expect(&Tok::LParen, "`(slot …)`")?;
            let kind = self.symbol("`slot` or `multislot`")?;
            let slot_name = self.symbol("slot name")?;
            let mut def = match kind.as_str() {
                "slot" => SlotDef::single(&slot_name),
                "multislot" => SlotDef::multi(&slot_name),
                other => return Err(self.error(format!("expected slot kind, found `{other}`"))),
            };
            // Optional attributes: we honour (default <value>) and skip
            // (type …) — types are advisory in this subset.
            while self.peek() == Some(&Tok::LParen) {
                self.pos += 1;
                let attr = self.symbol("slot attribute")?;
                match attr.as_str() {
                    "default" => {
                        let v = self.value()?;
                        def = def.with_default(v);
                    }
                    "type" => {
                        // Consume the type symbols without acting on them.
                        while self.peek() != Some(&Tok::RParen) {
                            self.next()?;
                        }
                    }
                    other => {
                        return Err(self.error(format!("unsupported slot attribute `{other}`")))
                    }
                }
                self.expect(&Tok::RParen, "`)` closing slot attribute")?;
            }
            self.expect(&Tok::RParen, "`)` closing slot")?;
            slots.push(def);
        }
        self.expect(&Tok::RParen, "`)` closing deftemplate")?;
        let mut template = Template::new(&name, slots);
        if let Some(d) = doc {
            template = template.with_doc(d);
        }
        self.local_templates.push(Arc::new(template.clone()));
        Ok(Construct::Template(template))
    }

    fn defglobal(&mut self) -> Result<Construct> {
        let name = match &self.next()?.tok {
            Tok::Global(name) => name.clone(),
            other => {
                self.pos -= 1;
                return Err(self.error(format!("expected `?*name*`, found {other:?}")));
            }
        };
        match &self.next()?.tok {
            Tok::Sym(s) if s == "=" => {}
            other => {
                self.pos -= 1;
                return Err(self.error(format!("expected `=`, found {other:?}")));
            }
        }
        let value = self.value()?;
        self.expect(&Tok::RParen, "`)` closing defglobal")?;
        Ok(Construct::Global(name, value))
    }

    fn deffacts(&mut self) -> Result<Construct> {
        let _name = self.symbol("deffacts name")?;
        let mut facts = Vec::new();
        while self.peek() != Some(&Tok::RParen) {
            self.expect(&Tok::LParen, "`(` opening fact")?;
            facts.push(self.fact_body()?);
        }
        self.expect(&Tok::RParen, "`)` closing deffacts")?;
        Ok(Construct::Deffacts(facts))
    }

    fn deffunction(&mut self) -> Result<Construct> {
        let name = self.symbol("function name")?;
        if let Some(Tok::Str(_)) = self.peek() {
            self.pos += 1; // optional doc string
        }
        self.expect(&Tok::LParen, "`(` opening parameter list")?;
        let mut params = Vec::new();
        let mut wildcard = None;
        while self.peek() != Some(&Tok::RParen) {
            match &self.next()?.tok {
                Tok::Var(p) => {
                    if wildcard.is_some() {
                        return Err(self.error("`$?rest` must be the last parameter"));
                    }
                    params.push(Arc::from(p.as_str()));
                }
                Tok::MultiVar(p) => {
                    if wildcard.is_some() {
                        return Err(self.error("only one `$?rest` parameter allowed"));
                    }
                    wildcard = Some(Arc::from(p.as_str()));
                }
                other => {
                    self.pos -= 1;
                    return Err(self.error(format!("expected parameter, found {other:?}")));
                }
            }
        }
        self.expect(&Tok::RParen, "`)` closing parameter list")?;
        let mut body = Vec::new();
        while self.peek() != Some(&Tok::RParen) {
            body.push(self.expr()?);
        }
        self.expect(&Tok::RParen, "`)` closing deffunction")?;
        Ok(Construct::Function(UserFn { name: Arc::from(name.as_str()), params, wildcard, body }))
    }

    fn fact_form(&mut self) -> Result<ParsedFact> {
        self.expect(&Tok::LParen, "`(` opening fact")?;
        self.fact_body()
    }

    /// Fact body after the opening paren: `tmpl (slot value…)… )`.
    fn fact_body(&mut self) -> Result<ParsedFact> {
        let template = self.symbol("template name")?;
        let mut slots = Vec::new();
        while self.peek() != Some(&Tok::RParen) {
            self.expect(&Tok::LParen, "`(` opening slot value")?;
            let slot = self.symbol("slot name")?;
            let mut values = Vec::new();
            while self.peek() != Some(&Tok::RParen) {
                values.push(self.value()?);
            }
            self.expect(&Tok::RParen, "`)` closing slot value")?;
            slots.push((slot, values));
        }
        self.expect(&Tok::RParen, "`)` closing fact")?;
        Ok(ParsedFact { template, slots })
    }

    fn value(&mut self) -> Result<Value> {
        match &self.next()?.tok {
            Tok::Sym(s) => Ok(Value::sym(s)),
            Tok::Str(s) => Ok(Value::str(s)),
            Tok::Int(n) => Ok(Value::Int(*n)),
            Tok::Float(x) => Ok(Value::Float(*x)),
            other => {
                self.pos -= 1;
                Err(self.error(format!("expected a literal value, found {other:?}")))
            }
        }
    }

    // ----- defrule -------------------------------------------------------

    fn defrule(&mut self) -> Result<Construct> {
        let name = self.symbol("rule name")?;
        let mut doc = None;
        if let Some(Tok::Str(s)) = self.peek() {
            doc = Some(s.clone());
            self.pos += 1;
        }
        let mut salience = 0;
        // Optional (declare (salience N)).
        if self.peek() == Some(&Tok::LParen) {
            if let Some(Tok::Sym(s)) = self.tokens.get(self.pos + 1).map(|t| &t.tok) {
                if s == "declare" {
                    self.pos += 2;
                    self.expect(&Tok::LParen, "`(salience …)`")?;
                    let kw = self.symbol("`salience`")?;
                    if kw != "salience" {
                        return Err(self.error(format!("unsupported declaration `{kw}`")));
                    }
                    match &self.next()?.tok {
                        Tok::Int(n) => salience = *n as i32,
                        other => {
                            self.pos -= 1;
                            return Err(
                                self.error(format!("expected salience value, found {other:?}"))
                            );
                        }
                    }
                    self.expect(&Tok::RParen, "`)` closing salience")?;
                    self.expect(&Tok::RParen, "`)` closing declare")?;
                }
            }
        }
        // LHS condition elements until `=>`.
        let mut lhs = Vec::new();
        loop {
            match self.peek() {
                Some(Tok::Arrow) => {
                    self.pos += 1;
                    break;
                }
                Some(Tok::Var(_)) => {
                    // `?f <- (pattern)`
                    let Tok::Var(binding) = &self.next()?.tok else { unreachable!() };
                    let arrow = self.symbol("`<-`")?;
                    if arrow != "<-" {
                        return Err(self.error(format!("expected `<-`, found `{arrow}`")));
                    }
                    let pattern = self.pattern_ce()?.bind(binding);
                    lhs.push(CondElem::Pattern(pattern));
                }
                Some(Tok::LParen) => {
                    let ce = self.cond_elem()?;
                    lhs.push(ce);
                }
                Some(other) => {
                    return Err(self.error(format!("expected condition element, found {other:?}")))
                }
                None => return Err(self.eof_error()),
            }
        }
        // RHS actions until the closing paren of the defrule.
        let mut rhs = Vec::new();
        while self.peek() != Some(&Tok::RParen) {
            rhs.push(self.expr()?);
        }
        self.expect(&Tok::RParen, "`)` closing defrule")?;
        let mut rule = Rule::new(&name, salience, lhs, rhs);
        if let Some(d) = doc {
            rule = rule.with_doc(d);
        }
        Ok(Construct::Rule(rule))
    }

    fn cond_elem(&mut self) -> Result<CondElem> {
        // Called with peek == LParen.
        match self.tokens.get(self.pos + 1).map(|t| &t.tok) {
            Some(Tok::Sym(s)) if s == "not" => {
                self.pos += 2;
                let inner = self.pattern_ce()?;
                self.expect(&Tok::RParen, "`)` closing not")?;
                Ok(CondElem::Not(inner))
            }
            Some(Tok::Sym(s)) if s == "test" => {
                self.pos += 2;
                let expr = self.expr()?;
                self.expect(&Tok::RParen, "`)` closing test")?;
                Ok(CondElem::Test(expr))
            }
            _ => Ok(CondElem::Pattern(self.pattern_ce()?)),
        }
    }

    /// Parses `(tmpl (slot constraints…)…)`.
    fn pattern_ce(&mut self) -> Result<PatternCE> {
        self.expect(&Tok::LParen, "`(` opening pattern")?;
        let template_name = self.symbol("template name")?;
        let template = self
            .find_template(&template_name)
            .ok_or(EngineError::UnknownTemplate(template_name.clone()))?;
        let mut pattern = PatternCE::new(&template_name);
        while self.peek() != Some(&Tok::RParen) {
            self.expect(&Tok::LParen, "`(` opening slot pattern")?;
            let slot_name = self.symbol("slot name")?;
            let slot_def = template.slot(&slot_name)?;
            let mut constraints = Vec::new();
            while self.peek() != Some(&Tok::RParen) {
                constraints.push(self.field_constraint()?);
            }
            self.expect(&Tok::RParen, "`)` closing slot pattern")?;
            let slot_pattern = match slot_def.kind() {
                SlotKind::Single => {
                    if constraints.len() != 1 {
                        return Err(self.error(format!(
                            "single-valued slot `{slot_name}` takes exactly one constraint, \
                             found {}",
                            constraints.len()
                        )));
                    }
                    SlotPattern::Single(constraints.into_iter().next().expect("len checked"))
                }
                SlotKind::Multi => SlotPattern::MultiSeq(constraints),
            };
            pattern = pattern.slot(&slot_name, slot_pattern);
        }
        self.expect(&Tok::RParen, "`)` closing pattern")?;
        Ok(pattern)
    }

    /// Parses one field constraint: `conj (| conj)*` where
    /// `conj = atom (& atom)*`.
    fn field_constraint(&mut self) -> Result<FieldConstraint> {
        let mut alts = Vec::new();
        let mut conj = vec![self.constraint_atom()?];
        loop {
            match self.peek() {
                Some(Tok::Amp) => {
                    self.pos += 1;
                    conj.push(self.constraint_atom()?);
                }
                Some(Tok::Pipe) => {
                    self.pos += 1;
                    alts.push(std::mem::take(&mut conj));
                    conj.push(self.constraint_atom()?);
                }
                _ => break,
            }
        }
        alts.push(conj);
        Ok(FieldConstraint { alts })
    }

    fn constraint_atom(&mut self) -> Result<Atom> {
        match &self.next()?.tok {
            Tok::Tilde => Ok(Atom::Not(Box::new(self.constraint_atom()?))),
            Tok::Colon => Ok(Atom::Pred(self.expr()?)),
            Tok::EqParen => Ok(Atom::EqExpr(self.expr()?)),
            Tok::Sym(s) => Ok(Atom::Term(Term::Literal(Value::sym(s)))),
            Tok::Str(s) => Ok(Atom::Term(Term::Literal(Value::str(s)))),
            Tok::Int(n) => Ok(Atom::Term(Term::Literal(Value::Int(*n)))),
            Tok::Float(x) => Ok(Atom::Term(Term::Literal(Value::Float(*x)))),
            Tok::Var(name) => Ok(Atom::Term(Term::Var(Arc::from(name.as_str())))),
            Tok::MultiVar(name) => Ok(Atom::Term(Term::MultiVar(Arc::from(name.as_str())))),
            Tok::Question => Ok(Atom::Term(Term::Wildcard)),
            Tok::DollarQuestion => Ok(Atom::Term(Term::MultiWildcard)),
            other => {
                self.pos -= 1;
                Err(self.error(format!("expected field constraint, found {other:?}")))
            }
        }
    }

    // ----- expressions -----------------------------------------------------

    fn expr(&mut self) -> Result<Expr> {
        match &self.next()?.tok {
            Tok::Sym(s) => Ok(Expr::Const(Value::sym(s))),
            Tok::Str(s) => Ok(Expr::Const(Value::str(s))),
            Tok::Int(n) => Ok(Expr::Const(Value::Int(*n))),
            Tok::Float(x) => Ok(Expr::Const(Value::Float(*x))),
            Tok::Var(name) => Ok(Expr::Var(Arc::from(name.as_str()))),
            Tok::MultiVar(name) => Ok(Expr::Var(Arc::from(name.as_str()))),
            Tok::Global(name) => Ok(Expr::Global(Arc::from(name.as_str()))),
            Tok::LParen => self.call_expr(),
            other => {
                self.pos -= 1;
                Err(self.error(format!("expected expression, found {other:?}")))
            }
        }
    }

    /// Parses a call-shaped expression (opening paren already consumed).
    fn call_expr(&mut self) -> Result<Expr> {
        let head = self.symbol("function name")?;
        match head.as_str() {
            "if" => {
                let cond = Box::new(self.expr()?);
                let kw = self.symbol("`then`")?;
                if kw != "then" {
                    return Err(self.error(format!("expected `then`, found `{kw}`")));
                }
                let mut then = Vec::new();
                let mut els = Vec::new();
                let mut in_else = false;
                while self.peek() != Some(&Tok::RParen) {
                    if let Some(Tok::Sym(s)) = self.peek() {
                        if s == "else" && !in_else {
                            in_else = true;
                            self.pos += 1;
                            continue;
                        }
                    }
                    let e = self.expr()?;
                    if in_else {
                        els.push(e);
                    } else {
                        then.push(e);
                    }
                }
                self.expect(&Tok::RParen, "`)` closing if")?;
                Ok(Expr::If { cond, then, els })
            }
            "bind" => {
                let var = match &self.next()?.tok {
                    Tok::Var(name) | Tok::MultiVar(name) => Arc::from(name.as_str()),
                    other => {
                        self.pos -= 1;
                        return Err(self.error(format!("expected variable, found {other:?}")));
                    }
                };
                let value = Box::new(self.expr()?);
                self.expect(&Tok::RParen, "`)` closing bind")?;
                Ok(Expr::Bind(var, value))
            }
            "assert" => {
                self.expect(&Tok::LParen, "`(` opening asserted fact")?;
                let template = self.symbol("template name")?;
                let mut slots = Vec::new();
                while self.peek() != Some(&Tok::RParen) {
                    self.expect(&Tok::LParen, "`(` opening slot")?;
                    let slot = self.symbol("slot name")?;
                    let mut fields = Vec::new();
                    while self.peek() != Some(&Tok::RParen) {
                        fields.push(self.expr()?);
                    }
                    self.expect(&Tok::RParen, "`)` closing slot")?;
                    slots.push((Arc::from(slot.as_str()), fields));
                }
                self.expect(&Tok::RParen, "`)` closing asserted fact")?;
                self.expect(&Tok::RParen, "`)` closing assert")?;
                Ok(Expr::Assert { template: Arc::from(template.as_str()), slots })
            }
            "modify" => {
                let target = Box::new(self.expr()?);
                let mut slots = Vec::new();
                while self.peek() != Some(&Tok::RParen) {
                    self.expect(&Tok::LParen, "`(` opening slot")?;
                    let slot = self.symbol("slot name")?;
                    let mut fields = Vec::new();
                    while self.peek() != Some(&Tok::RParen) {
                        fields.push(self.expr()?);
                    }
                    self.expect(&Tok::RParen, "`)` closing slot")?;
                    slots.push((Arc::from(slot.as_str()), fields));
                }
                self.expect(&Tok::RParen, "`)` closing modify")?;
                Ok(Expr::Modify { target, slots })
            }
            "retract" => {
                let mut targets = Vec::new();
                while self.peek() != Some(&Tok::RParen) {
                    targets.push(self.expr()?);
                }
                self.expect(&Tok::RParen, "`)` closing retract")?;
                Ok(Expr::Retract(targets))
            }
            "printout" => {
                let mut parts = Vec::new();
                while self.peek() != Some(&Tok::RParen) {
                    parts.push(self.expr()?);
                }
                self.expect(&Tok::RParen, "`)` closing printout")?;
                Ok(Expr::Printout(parts))
            }
            _ => {
                let mut args = Vec::new();
                while self.peek() != Some(&Tok::RParen) {
                    args.push(self.expr()?);
                }
                self.expect(&Tok::RParen, "`)` closing call")?;
                Ok(Expr::Call(Arc::from(head.as_str()), args))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_templates(_: &str) -> Option<Arc<Template>> {
        None
    }

    #[test]
    fn parse_template_with_defaults() {
        let src =
            r#"(deftemplate ev "doc" (slot a (default 3)) (multislot b) (slot c (type SYMBOL)))"#;
        let constructs = parse_program(src, &no_templates).unwrap();
        let Construct::Template(t) = &constructs[0] else { panic!("expected template") };
        assert_eq!(t.name(), "ev");
        assert_eq!(t.doc(), Some("doc"));
        assert_eq!(t.slots()[0].default(), Some(&Value::Int(3)));
        assert_eq!(t.slots()[1].kind(), SlotKind::Multi);
    }

    #[test]
    fn parse_global() {
        let constructs = parse_program("(defglobal ?*RARE_FREQUENCY* = 3)", &no_templates).unwrap();
        let Construct::Global(name, value) = &constructs[0] else { panic!("expected global") };
        assert_eq!(name, "RARE_FREQUENCY");
        assert_eq!(value, &Value::Int(3));
    }

    #[test]
    fn parse_fact_with_multifield() {
        let fact = parse_fact_form(r#"(ev (a SYS_execve) (b "/bin/ls" BINARY) (c 33))"#).unwrap();
        assert_eq!(fact.template, "ev");
        assert_eq!(fact.slots[1].1, vec![Value::str("/bin/ls"), Value::sym("BINARY")]);
    }

    #[test]
    fn parse_rule_full_shape() {
        let src = r#"
            (deftemplate ev (slot kind) (slot n) (multislot src))
            (deftemplate resolution (slot status))
            (defrule check "docstring"
                (declare (salience 5))
                ?e <- (ev (kind SYS_execve) (n ?n&:(> ?n 2)) (src $? BINARY $?))
                ?r <- (resolution (status RESOLVE))
                (not (ev (kind ignore)))
                (test (< ?n 100))
                =>
                (bind ?w 1)
                (if (> ?n 50) then (bind ?w 2) else (bind ?w 1))
                (printout t "warn " ?w crlf)
                (retract ?e)
                (assert (resolution (status STOP))))
        "#;
        let constructs = parse_program(src, &no_templates).unwrap();
        assert_eq!(constructs.len(), 3);
        let Construct::Rule(rule) = &constructs[2] else { panic!("expected rule") };
        assert_eq!(rule.name(), "check");
        assert_eq!(rule.salience(), 5);
        assert_eq!(rule.doc(), Some("docstring"));
        assert_eq!(rule.lhs().len(), 4);
        assert_eq!(rule.rhs().len(), 5);
        let CondElem::Pattern(p) = &rule.lhs()[0] else { panic!("expected pattern") };
        assert_eq!(p.binding.as_deref(), Some("e"));
        assert_eq!(p.slots.len(), 3);
        let (_, SlotPattern::MultiSeq(seq)) = &p.slots[2] else { panic!("expected multiseq") };
        assert_eq!(seq.len(), 3);
        assert!(matches!(rule.lhs()[2], CondElem::Not(_)));
        assert!(matches!(rule.lhs()[3], CondElem::Test(_)));
    }

    #[test]
    fn unknown_template_in_pattern_is_an_error() {
        let src = "(defrule r (nope) => )";
        assert!(matches!(parse_program(src, &no_templates), Err(EngineError::UnknownTemplate(_))));
    }

    #[test]
    fn unknown_slot_in_pattern_is_an_error() {
        let src = "(deftemplate ev (slot a)) (defrule r (ev (b 1)) => )";
        assert!(matches!(parse_program(src, &no_templates), Err(EngineError::UnknownSlot { .. })));
    }

    #[test]
    fn single_slot_rejects_multiple_constraints() {
        let src = "(deftemplate ev (slot a)) (defrule r (ev (a 1 2)) => )";
        assert!(parse_program(src, &no_templates).is_err());
    }

    #[test]
    fn alternatives_and_negation_parse() {
        let src = "(deftemplate ev (slot a)) (defrule r (ev (a open|close&~?x)) => )";
        let constructs = parse_program(src, &no_templates).unwrap();
        let Construct::Rule(rule) = &constructs[1] else { panic!() };
        let CondElem::Pattern(p) = &rule.lhs()[0] else { panic!() };
        let (_, SlotPattern::Single(c)) = &p.slots[0] else { panic!() };
        assert_eq!(c.alts.len(), 2);
        assert_eq!(c.alts[0].len(), 1);
        assert_eq!(c.alts[1].len(), 2);
        assert!(matches!(c.alts[1][1], Atom::Not(_)));
    }

    #[test]
    fn deffacts_parse() {
        let src = "(deftemplate ev (slot a)) (deffacts startup (ev (a 1)) (ev (a 2)))";
        let constructs = parse_program(src, &no_templates).unwrap();
        let Construct::Deffacts(facts) = &constructs[1] else { panic!() };
        assert_eq!(facts.len(), 2);
    }

    #[test]
    fn parse_errors_carry_position() {
        let err = parse_program("(deftemplate)", &no_templates).unwrap_err();
        assert!(matches!(err, EngineError::Parse { line: 1, .. }));
    }
}
