//! The fleet correlator's CLIPS policy: digest templates + rules.
//!
//! A fleet-level Secpert does not see syscall events; it sees *session
//! digests* — compact summaries each monitored session exports (see
//! `hth-core`'s `SessionDigest`). This module is the CLIPS side of that
//! contract: leaf templates mirroring the digest fields, aggregate
//! templates the host asserts after grouping digests fleet-wide, and
//! the three correlation rules the per-session policy is structurally
//! blind to:
//!
//! * **`shared_c2`** — the same hardcoded endpoint beaconed by at least
//!   `?*MIN_C2_LABELS*` *distinct programs* (High). Distinct programs,
//!   not distinct sessions: a fleet of identical mail clients polling
//!   one server is normal, `ls`/`make`/`xeyes` all dialing the same
//!   address is a trojaned toolchain.
//! * **`recurring_dropper`** — the same executable artifact, fed from
//!   the network, dropped at the same path in at least
//!   `?*MIN_DROP_SESSIONS*` sessions (High).
//! * **`distributed_exfil`** — local data flowing to one target from at
//!   least `?*MIN_EXFIL_SESSIONS*` sessions, totalling
//!   `?*EXFIL_FLEET_BYTES*` or more while every per-session volume
//!   stays under `?*EXFIL_SESSION_BYTES*` (Medium — the low-and-slow
//!   shape that defeats any per-session threshold).
//!
//! The host (hth-core's `Correlator`) registers the same `warn` /
//! `severity-text` natives the per-session policy uses, so fleet
//! warnings carry the same severities and render through the same
//! provenance machinery.

/// Leaf templates: one fact per digest field worth correlating. The
/// host asserts these verbatim from each [`SessionDigest`]'s sets, and
/// records their fact ids so fleet-level provenance can point back at
/// the contributing sessions.
///
/// [`SessionDigest`]: ../hth_core/struct.SessionDigest.html
pub const DIGEST_TEMPLATES: &str = r#"
; ---------------------------------------------------------------------------
; Leaf facts: one per digest observation, asserted by the host.
; ---------------------------------------------------------------------------

(deftemplate session_digest
  (slot session)
  (slot label)
  (slot events (default 0)))

(deftemplate digest_beacon
  (slot session)
  (slot label)
  (slot endpoint))

(deftemplate digest_drop
  (slot session)
  (slot label)
  (slot path)
  (slot executable (default FALSE))
  (multislot content))

(deftemplate digest_exfil
  (slot session)
  (slot label)
  (slot target)
  (slot bytes (default 0)))

; ---------------------------------------------------------------------------
; Aggregates: grouped fleet-wide by the host (deterministic B-tree
; order), then judged by the rules below.
; ---------------------------------------------------------------------------

(deftemplate shared_endpoint
  (slot endpoint)
  (multislot labels)
  (multislot sessions))

(deftemplate recurring_artifact
  (slot path)
  (slot executable (default FALSE))
  (multislot labels)
  (multislot sessions))

(deftemplate fleet_exfil
  (slot target)
  (multislot sessions)
  (slot total_bytes (default 0))
  (slot max_session_bytes (default 0)))
"#;

/// The correlator rule family. Thresholds are globals so the host's
/// `CorrelateConfig` can override them after load, exactly like the
/// per-session policy's thresholds.
pub const CORRELATE_RULES: &str = r#"
; ---------------------------------------------------------------------------
; Thresholds (overridden from CorrelateConfig after load).
; ---------------------------------------------------------------------------

(defglobal ?*MIN_C2_LABELS* = 3)
(defglobal ?*MIN_DROP_SESSIONS* = 3)
(defglobal ?*MIN_EXFIL_SESSIONS* = 3)
(defglobal ?*EXFIL_FLEET_BYTES* = 2048)
(defglobal ?*EXFIL_SESSION_BYTES* = 1024)

; ---------------------------------------------------------------------------
; Rule family: what only the fleet can see.
; ---------------------------------------------------------------------------

(defrule shared_c2 "one hardcoded endpoint beaconed by many distinct programs"
  ?a <- (shared_endpoint (endpoint ?ep) (labels $?labels) (sessions $?sessions))
  (test (>= (length$ $?labels) ?*MIN_C2_LABELS*))
  =>
  (bind ?msg (str-cat "Fleet: endpoint " ?ep " is hardcoded into "
                      (length$ $?labels) " distinct programs (" $?labels
                      ") across sessions (" $?sessions ")"))
  (printout t (severity-text 3) " " ?msg crlf)
  (warn 3 shared_c2 0 (length$ $?sessions) ?msg))

(defrule recurring_dropper "one executable artifact dropped across many sessions"
  ?a <- (recurring_artifact (path ?path) (executable TRUE)
                            (labels $?labels) (sessions $?sessions))
  (test (>= (length$ $?sessions) ?*MIN_DROP_SESSIONS*))
  =>
  (bind ?msg (str-cat "Fleet: executable artifact " ?path
                      " dropped from the network in " (length$ $?sessions)
                      " sessions (" $?sessions ")"))
  (printout t (severity-text 3) " " ?msg crlf)
  (warn 3 recurring_dropper 0 (length$ $?sessions) ?msg))

(defrule distributed_exfil "low-and-slow exfiltration summed across the fleet"
  ?a <- (fleet_exfil (target ?target) (sessions $?sessions)
                     (total_bytes ?total) (max_session_bytes ?peak))
  (test (>= (length$ $?sessions) ?*MIN_EXFIL_SESSIONS*))
  (test (>= ?total ?*EXFIL_FLEET_BYTES*))
  (test (< ?peak ?*EXFIL_SESSION_BYTES*))
  =>
  (bind ?msg (str-cat "Fleet: " ?total " bytes of local data reached " ?target
                      " from " (length$ $?sessions) " sessions (" $?sessions
                      "), each session staying under " ?*EXFIL_SESSION_BYTES*
                      " bytes"))
  (printout t (severity-text 2) " " ?msg crlf)
  (warn 2 distributed_exfil 0 (length$ $?sessions) ?msg))
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::value::Value;
    use std::sync::{Arc, Mutex};

    type WarningSink = Arc<Mutex<Vec<(i64, String)>>>;

    /// An engine with the correlator policy and test doubles of the
    /// host's `warn` / `severity-text` natives.
    fn correlator() -> (Engine, WarningSink) {
        let mut engine = Engine::new();
        let warnings: WarningSink = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&warnings);
        engine.register_fn("warn", move |args| {
            let level = args[0].as_int()?;
            let rule = args[1].to_display_string();
            sink.lock().unwrap().push((level, rule));
            Ok(Value::truth())
        });
        engine.register_fn("severity-text", |args| {
            Ok(Value::str(format!("Warning [{}]", args[0].as_int()?)))
        });
        engine.load_str(DIGEST_TEMPLATES).expect("templates parse");
        engine.load_str(CORRELATE_RULES).expect("rules parse");
        engine.reset().expect("reset");
        (engine, warnings)
    }

    #[test]
    fn policy_parses_and_rules_fire_on_aggregates() {
        let (mut engine, warnings) = correlator();
        engine
            .assert_str(
                "(shared_endpoint (endpoint \"c2:6667\")
                   (labels bot-a bot-b bot-c) (sessions 1 2 3))",
            )
            .unwrap();
        engine
            .assert_str(
                "(recurring_artifact (path \"/tmp/payload\") (executable TRUE)
                   (labels d d d) (sessions 4 5 6))",
            )
            .unwrap();
        engine
            .assert_str(
                "(fleet_exfil (target \"sink:81\") (sessions 7 8 9)
                   (total_bytes 2400) (max_session_bytes 800))",
            )
            .unwrap();
        engine.run(None).unwrap();
        let mut fired = warnings.lock().unwrap().clone();
        fired.sort();
        assert_eq!(
            fired,
            vec![
                (2, "distributed_exfil".to_string()),
                (3, "recurring_dropper".to_string()),
                (3, "shared_c2".to_string()),
            ]
        );
    }

    #[test]
    fn thresholds_gate_the_rules() {
        let (mut engine, warnings) = correlator();
        // Two labels < MIN_C2_LABELS: quiet.
        engine
            .assert_str(
                "(shared_endpoint (endpoint \"c2:6667\")
                   (labels bot-a bot-b) (sessions 1 2 3 4))",
            )
            .unwrap();
        // Non-executable recurring artifact: quiet.
        engine
            .assert_str(
                "(recurring_artifact (path \"/tmp/l\") (executable FALSE)
                   (labels a b c) (sessions 1 2 3))",
            )
            .unwrap();
        // One session over the per-session ceiling: not low-and-slow.
        engine
            .assert_str(
                "(fleet_exfil (target \"sink:81\") (sessions 7 8 9)
                   (total_bytes 4000) (max_session_bytes 2000))",
            )
            .unwrap();
        engine.run(None).unwrap();
        assert!(warnings.lock().unwrap().is_empty(), "{:?}", warnings.lock().unwrap());
    }

    #[test]
    fn raised_threshold_silences_shared_c2() {
        let (mut engine, warnings) = correlator();
        engine.set_global("MIN_C2_LABELS", Value::Int(5));
        engine
            .assert_str(
                "(shared_endpoint (endpoint \"c2:6667\")
                   (labels bot-a bot-b bot-c) (sessions 1 2 3))",
            )
            .unwrap();
        engine.run(None).unwrap();
        assert!(warnings.lock().unwrap().is_empty());
    }
}
