//! Tests for `deffunction`, conflict-resolution strategies, and the
//! watch trace.

use secpert_engine::{Engine, Strategy, Value};

#[test]
fn deffunction_basic_and_recursive() {
    let mut engine = Engine::new();
    engine
        .load_str(
            r"
            (deffunction square (?x) (* ?x ?x))
            (deffunction fact (?n)
              (if (<= ?n 1) then 1 else (* ?n (fact (- ?n 1)))))
            ",
        )
        .unwrap();
    // Call through a rule RHS.
    engine
        .load_str(
            r"
            (deftemplate in (slot n))
            (deftemplate out (slot v))
            (defrule compute
              ?i <- (in (n ?n))
              =>
              (retract ?i)
              (assert (out (v (+ (square ?n) (fact 4))))))
            ",
        )
        .unwrap();
    engine.assert_str("(in (n 5))").unwrap();
    engine.run(None).unwrap();
    let out = engine.facts_of("out");
    assert_eq!(out[0].1.get("v").unwrap(), &Value::Int(25 + 24));
}

#[test]
fn deffunction_wildcard_collects_rest() {
    let mut engine = Engine::new();
    engine
        .load_str(
            r"
            (deffunction count-args (?first $?rest)
              (+ 1 (length$ ?rest)))
            (deftemplate probe (slot n))
            (defrule p
              (probe)
              =>
              (printout t (count-args a b c d)))
            ",
        )
        .unwrap();
    engine.assert_str("(probe (n 1))").unwrap();
    engine.run(None).unwrap();
    assert_eq!(engine.take_output(), "4");
}

#[test]
fn deffunction_usable_in_pattern_predicates() {
    let mut engine = Engine::new();
    engine
        .load_str(
            r"
            (deffunction big (?x) (> ?x 100))
            (deftemplate ev (slot n))
            (defrule only_big
              (ev (n ?n&:(big ?n)))
              =>
              (printout t ?n))
            ",
        )
        .unwrap();
    engine.assert_str("(ev (n 50))").unwrap();
    engine.assert_str("(ev (n 500))").unwrap();
    assert_eq!(engine.run(None).unwrap(), 1);
    assert_eq!(engine.take_output(), "500");
}

#[test]
fn deffunction_arity_checked() {
    let mut engine = Engine::new();
    engine.load_str("(deffunction two (?a ?b) (+ ?a ?b))").unwrap();
    engine.load_str("(deftemplate t (slot x)) (defrule r (t) => (printout t (two 1)))").unwrap();
    engine.assert_str("(t (x 1))").unwrap();
    assert!(engine.run(None).is_err(), "missing argument must error");
}

#[test]
fn strategy_depth_vs_breadth() {
    for (strategy, expected) in [(Strategy::Depth, "cba"), (Strategy::Breadth, "abc")] {
        let mut engine = Engine::new();
        engine
            .load_str(
                r"
                (deftemplate item (slot tag))
                (defrule show
                  (item (tag ?t))
                  =>
                  (printout t ?t))
                ",
            )
            .unwrap();
        engine.set_strategy(strategy);
        for tag in ["a", "b", "c"] {
            engine.assert_str(&format!("(item (tag {tag}))")).unwrap();
        }
        engine.run(None).unwrap();
        assert_eq!(engine.take_output(), expected, "{strategy:?}");
    }
}

#[test]
fn watch_trace_records_lifecycle() {
    let mut engine = Engine::new();
    engine
        .load_str(
            r"
            (deftemplate ev (slot n))
            (defrule consume
              ?e <- (ev)
              =>
              (retract ?e))
            ",
        )
        .unwrap();
    engine.set_watch(true);
    engine.assert_str("(ev (n 7))").unwrap();
    engine.run(None).unwrap();
    let trace = engine.take_trace();
    assert_eq!(trace.len(), 3, "{trace:?}");
    assert!(trace[0].starts_with("==> f-"), "{}", trace[0]);
    assert!(trace[0].contains("(ev (n 7))"));
    assert!(trace[1].starts_with("FIRE 1 consume:"), "{}", trace[1]);
    assert!(trace[2].starts_with("<== f-"), "{}", trace[2]);
    // Watch off: no further trace.
    engine.set_watch(false);
    engine.assert_str("(ev (n 8))").unwrap();
    engine.run(None).unwrap();
    assert!(engine.take_trace().is_empty());
}

#[test]
fn duplicate_deffunction_rejected() {
    let mut engine = Engine::new();
    engine.load_str("(deffunction f (?x) ?x)").unwrap();
    assert!(engine.load_str("(deffunction f (?x) (* ?x 2))").is_err());
}

#[test]
fn agenda_snapshot_orders_like_firing() {
    let mut engine = Engine::new();
    engine
        .load_str(
            r"
            (deftemplate item (slot tag))
            (defrule urgent (declare (salience 5)) (item (tag u)) => (printout t u))
            (defrule show (item (tag ?t)) => (printout t ?t))
            ",
        )
        .unwrap();
    engine.assert_str("(item (tag a))").unwrap();
    engine.assert_str("(item (tag u))").unwrap();
    let agenda = engine.agenda();
    assert_eq!(agenda.len(), 3, "{agenda:?}");
    assert_eq!(agenda[0].0, "urgent", "salience first");
    assert_eq!(agenda[0].1.len(), 1);
    // Firing consumes in the same order the snapshot promised.
    let first_rule = agenda[0].0.clone();
    engine.run(Some(1)).unwrap();
    assert_eq!(engine.firings()[0].rule.as_ref(), first_rule);
}
