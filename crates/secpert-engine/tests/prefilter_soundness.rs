//! Alpha pre-filter soundness against the naive-match oracle: anything
//! [`AlphaPrefilter`] calls skippable must be *observationally inert* —
//! asserting it through the unfiltered path produces zero activations
//! under both matchers, and an event stream with the skipped facts
//! removed fires exactly the same rules with exactly the same output.
//!
//! This is the property the batched pipeline leans on when it drops
//! events before fact construction (`Secpert::process_batch`): the gate
//! may only ever skip work, never change results.

use std::sync::Arc;

use proptest::prelude::*;
use secpert_engine::{
    Engine, Expr, Fact, FieldConstraint, Matcher, PatternCE, Rule, RuleBuilder, SlotDef,
    SlotPattern, Template, Value,
};

/// Deterministic local RNG (same construction as the proptest shim).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const TEMPLATES: usize = 2;
/// Fact slot values range over 0..FACT_VALUES while rule constants only
/// range over 0..CONST_VALUES, so constant rejects actually happen.
const FACT_VALUES: u64 = 4;
const CONST_VALUES: u64 = 3;

fn template_name(i: u64) -> String {
    format!("t{i}")
}

/// A random pattern: each slot is unconstrained, a constant, or a
/// shared variable. Returns the pattern and whether `?x` was bound.
fn gen_pattern(rng: &mut Rng) -> (PatternCE, bool) {
    let mut p = PatternCE::new(template_name(rng.below(TEMPLATES as u64)));
    let mut uses_x = false;
    for slot in ["a", "b"] {
        match rng.below(3) {
            0 => {}
            1 => {
                p = p.slot(
                    slot,
                    SlotPattern::Single(FieldConstraint::literal(Value::Int(
                        rng.below(CONST_VALUES) as i64,
                    ))),
                );
            }
            _ => {
                if slot == "a" {
                    p = p.slot(slot, SlotPattern::Single(FieldConstraint::var("x")));
                    uses_x = true;
                }
            }
        }
    }
    (p, uses_x)
}

/// A random rule: 1-3 CEs (patterns, `not`s, tests over `?x`), printout
/// RHS, occasionally a cascading RHS assert. No rule ever prints a fact
/// address — skipped facts shift the fact-id counter, which is the one
/// surface the filter is documented not to preserve.
fn gen_rule(rng: &mut Rng, index: usize) -> Rule {
    let mut b = RuleBuilder::new(format!("r{index}")).salience([-1, 0, 1][rng.below(3) as usize]);
    let mut x_bound = false;
    for ce in 0..1 + rng.below(3) {
        let kind = if ce == 0 { 0 } else { rng.below(10) };
        match kind {
            0..=5 => {
                let (p, uses_x) = gen_pattern(rng);
                x_bound |= uses_x;
                b = b.pattern(p);
            }
            6..=7 => {
                let (p, _) = gen_pattern(rng);
                b = b.not(p);
            }
            _ if x_bound => {
                b = b.test(Expr::call(
                    ">",
                    [Expr::var("x"), Expr::lit(rng.below(CONST_VALUES) as i64)],
                ));
            }
            _ => {}
        }
    }
    b = b.action(Expr::Printout(vec![Expr::lit(format!("r{index};"))]));
    if rng.below(10) < 2 {
        let (a, v) = (rng.below(CONST_VALUES) as i64, rng.below(CONST_VALUES) as i64);
        b = b.action(Expr::Assert {
            template: Arc::from(template_name(rng.below(TEMPLATES as u64)).as_str()),
            slots: vec![(Arc::from("a"), vec![Expr::lit(a)]), (Arc::from("b"), vec![Expr::lit(v)])],
        });
    }
    b.build()
}

fn fresh_engine(matcher: Matcher, rules: &[Rule]) -> Engine {
    let mut e = Engine::with_matcher(matcher);
    for t in 0..TEMPLATES as u64 {
        e.add_template(Template::new(
            template_name(t),
            [SlotDef::single("a"), SlotDef::single("b")],
        ))
        .unwrap();
    }
    for rule in rules {
        e.add_rule(rule.clone()).unwrap();
    }
    e
}

fn gen_fact(rng: &mut Rng, e: &Engine) -> Fact {
    let t = template_name(rng.below(TEMPLATES as u64));
    e.fact(&t)
        .unwrap()
        .slot("a", rng.below(FACT_VALUES) as i64)
        .slot("b", rng.below(FACT_VALUES) as i64)
        .build()
        .unwrap()
}

/// The firing sequence with fact ids erased — rule names and printed
/// output, the surface skipped facts must not change.
fn firing_trace(e: &Engine) -> Vec<(usize, Arc<str>, String)> {
    e.firings().iter().map(|f| (f.seq, f.rule.clone(), f.output.clone())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every fact the filter rejects is provably dead against the
    /// naive-match oracle: asserted alone into a fresh unfiltered
    /// engine, it joins nothing, blocks nothing, and fires nothing —
    /// under both matchers.
    #[test]
    fn rejected_facts_are_inert_under_the_naive_oracle(seed in 0u64..u64::MAX) {
        let mut rng = Rng(seed);
        let rules: Vec<Rule> = (0..1 + rng.below(4)).map(|i| gen_rule(&mut rng, i as usize)).collect();
        let probe = fresh_engine(Matcher::Naive, &rules);
        let filter = probe.alpha_prefilter();
        for _ in 0..20 {
            let fact = gen_fact(&mut rng, &probe);
            if filter.passes_fact(&fact) {
                continue;
            }
            for matcher in [Matcher::Naive, Matcher::Rete] {
                let mut e = fresh_engine(matcher, &rules);
                // Negations make rules fire on an *empty* working
                // memory; what must stay invariant is the delta from
                // asserting the rejected fact.
                e.run(None).unwrap();
                let before_fired = e.fired_total();
                let before_trace = firing_trace(&e);
                e.assert_fact(fact.clone()).unwrap();
                prop_assert_eq!(
                    e.agenda_len(), 0,
                    "{:?}: rejected fact {} scheduled an activation", matcher, fact
                );
                e.run(None).unwrap();
                prop_assert_eq!(
                    e.fired_total(), before_fired,
                    "{:?}: rejected fact {} caused a firing", matcher, fact
                );
                prop_assert_eq!(firing_trace(&e), before_trace);
            }
        }
    }

    /// Stream-level soundness, exactly the shape the batched pipeline
    /// uses the filter in: dropping every rejected fact from a random
    /// stream leaves the firing sequence and transcript byte-identical
    /// to the unfiltered run, under both matchers.
    #[test]
    fn filtered_streams_fire_identically(seed in 0u64..u64::MAX) {
        let mut rng = Rng(seed);
        let rules: Vec<Rule> = (0..1 + rng.below(4)).map(|i| gen_rule(&mut rng, i as usize)).collect();
        for matcher in [Matcher::Naive, Matcher::Rete] {
            let mut unfiltered = fresh_engine(matcher, &rules);
            let mut filtered = fresh_engine(matcher, &rules);
            let filter = unfiltered.alpha_prefilter();
            let mut stream_rng = Rng(seed ^ 0xF11E);
            let mut skipped = 0;
            for _ in 0..15 {
                let fact = gen_fact(&mut stream_rng, &unfiltered);
                unfiltered.assert_fact(fact.clone()).unwrap();
                unfiltered.run(None).unwrap();
                if filter.passes_fact(&fact) {
                    filtered.assert_fact(fact).unwrap();
                    filtered.run(None).unwrap();
                } else {
                    skipped += 1;
                }
                prop_assert_eq!(
                    firing_trace(&unfiltered),
                    firing_trace(&filtered),
                    "{:?}: firing sequences diverged after {} skips", matcher, skipped
                );
            }
            prop_assert_eq!(unfiltered.fired_total(), filtered.fired_total());
            // Rejected facts linger in the unfiltered working memory
            // (nothing can match them, so nothing retracts them) and
            // duplicates dedup, so raw fact counts differ; what must
            // agree is the *admitted* extent of every template.
            for t in 0..TEMPLATES as u64 {
                let name = template_name(t);
                let admitted = |e: &Engine| -> Vec<String> {
                    e.facts_of(&name)
                        .iter()
                        .filter(|(_, f)| filter.passes_fact(f))
                        .map(|(_, f)| f.to_string())
                        .collect()
                };
                prop_assert_eq!(
                    admitted(&unfiltered),
                    admitted(&filtered),
                    "{:?}: admitted {} extents diverged after {} skips", matcher, name, skipped
                );
            }
        }
    }
}
