//! Tests for the `modify` action: CLIPS-style stateful rules (the
//! mechanism behind counting policies like the paper's §10 cross-session
//! extensions).

use secpert_engine::Engine;

/// A counter fact incremented by a rule on every event — the canonical
/// CLIPS accumulate-with-modify pattern.
#[test]
fn modify_implements_counters() {
    let mut engine = Engine::new();
    engine
        .load_str(
            r"
            (deftemplate hit (slot n))
            (deftemplate counter (slot total (default 0)))
            (deffacts init (counter))

            (defrule count_hits
              ?h <- (hit)
              ?c <- (counter (total ?t))
              =>
              (retract ?h)
              (modify ?c (total (+ ?t 1))))
            ",
        )
        .unwrap();
    engine.reset().unwrap();
    for i in 0..5 {
        engine.assert_str(&format!("(hit (n {i}))")).unwrap();
        engine.run(None).unwrap();
    }
    let counters = engine.facts_of("counter");
    assert_eq!(counters.len(), 1);
    assert_eq!(counters[0].1.get("total").unwrap().to_string(), "5");
}

/// `modify` returns the new fact address and the old id is dead.
#[test]
fn modify_replaces_the_fact() {
    let mut engine = Engine::new();
    engine
        .load_str(
            r#"
            (deftemplate item (slot state) (slot tag))
            (defrule promote
              ?i <- (item (state raw) (tag ?tag))
              =>
              (modify ?i (state cooked))
              (printout t "promoted " ?tag crlf))
            "#,
        )
        .unwrap();
    let id = engine.assert_str("(item (state raw) (tag alpha))").unwrap().unwrap();
    assert_eq!(engine.run(None).unwrap(), 1);
    assert!(engine.get_fact(id).is_none(), "old fact retracted");
    let items = engine.facts_of("item");
    assert_eq!(items.len(), 1);
    assert!(items[0].1.get("state").unwrap().is_sym("cooked"));
    assert_eq!(engine.take_output(), "promoted alpha\n");
    // The promote rule does not match the cooked fact: no infinite loop.
    assert_eq!(engine.run(None).unwrap(), 0);
}

/// A modify that re-satisfies the same rule fires again (new fact id ⇒
/// new activation): the classic runaway loop is the author's problem —
/// bounded here with a limit.
#[test]
fn modify_can_refire_rules() {
    let mut engine = Engine::new();
    engine
        .load_str(
            r"
            (deftemplate tick (slot n))
            (defrule grow
              ?t <- (tick (n ?n&:(< ?n 10)))
              =>
              (modify ?t (n (+ ?n 1))))
            ",
        )
        .unwrap();
    engine.assert_str("(tick (n 0))").unwrap();
    assert_eq!(engine.run(Some(100)).unwrap(), 10);
    assert_eq!(engine.facts_of("tick")[0].1.get("n").unwrap().to_string(), "10");
}

/// Multifield slots can be grown through modify.
#[test]
fn modify_multifield_slots() {
    let mut engine = Engine::new();
    engine
        .load_str(
            r"
            (deftemplate bag (multislot items))
            (deftemplate add (slot item))
            (defrule absorb
              ?a <- (add (item ?i))
              ?b <- (bag (items $?existing))
              =>
              (retract ?a)
              (modify ?b (items $?existing ?i)))
            ",
        )
        .unwrap();
    engine.assert_str("(bag)").unwrap();
    for item in ["x", "y", "z"] {
        engine.assert_str(&format!("(add (item {item}))")).unwrap();
        engine.run(None).unwrap();
    }
    let bags = engine.facts_of("bag");
    assert_eq!(bags[0].1.get("items").unwrap().to_string(), "(x y z)");
}
