//! Robustness: the lexer, parser and assembler-facing engine APIs must
//! return errors — never panic — on arbitrary garbage input.

use proptest::prelude::*;
use secpert_engine::{parser, Engine};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary text never panics the lexer.
    #[test]
    fn lexer_never_panics(src in "\\PC{0,120}") {
        let _ = parser::lex(&src);
    }

    /// Arbitrary text never panics the program parser.
    #[test]
    fn parser_never_panics(src in "\\PC{0,120}") {
        let _ = parser::parse_program(&src, &|_| None);
    }

    /// CLIPS-ish token soup (parens, keywords, vars) never panics and
    /// never corrupts the engine: a later valid load still works.
    #[test]
    fn token_soup_never_corrupts_engine(
        tokens in prop::collection::vec(
            prop_oneof![
                Just("("), Just(")"), Just("deftemplate"), Just("defrule"),
                Just("slot"), Just("multislot"), Just("=>"), Just("?x"),
                Just("$?y"), Just("~"), Just("&"), Just("|"), Just(":("),
                Just("test"), Just("not"), Just("\"s\""), Just("42"),
                Just("ev"), Just("assert"), Just("retract"), Just("bind"),
                Just("deffunction"), Just("modify"), Just("?*g*"),
            ],
            0..40,
        ),
    ) {
        let soup = tokens.join(" ");
        let mut engine = Engine::new();
        let _ = engine.load_str(&soup);
        // Whatever happened, the engine must still accept a valid load.
        let fresh = format!("(deftemplate recov_{} (slot a))", tokens.len());
        prop_assert!(engine.load_str(&fresh).is_ok() || engine.load_str(&fresh).is_err());
        // And a fully fresh engine still works end to end.
        let mut clean = Engine::new();
        clean.load_str("(deftemplate ok (slot v))").unwrap();
        clean.assert_str("(ok (v 1))").unwrap();
    }

    /// Fact forms with arbitrary slot values either parse or error.
    #[test]
    fn fact_form_never_panics(body in "\\PC{0,60}") {
        let _ = parser::parse_fact_form(&format!("(ev {body})"));
    }
}

/// Malformed constructs produce positioned parse errors, not panics.
#[test]
fn malformed_constructs_error_cleanly() {
    let cases = [
        "(",
        ")",
        "(deftemplate)",
        "(deftemplate t (slot))",
        "(defrule)",
        "(defrule r)",
        "(defrule r (unknown) => )",
        "(defglobal ?*x*)",
        "(deffunction)",
        "(deffunction f)",
        "(deffunction f (42) 1)",
        "(deffacts)",
        "(nonsense)",
        "(deftemplate t (slot a (bogus-attr 1)))",
    ];
    for case in cases {
        let mut engine = Engine::new();
        assert!(engine.load_str(case).is_err(), "`{case}` should error");
    }
}
