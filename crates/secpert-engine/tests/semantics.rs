//! Pin-down tests for the match semantics a Rete port most easily breaks:
//! retract re-enabling `not` mid-run, `?f <-` rebinding rejection,
//! refraction across `reset()`, and Depth-vs-Breadth tie-breaking.
//!
//! These tests were written against the naive matcher before the Rete
//! network landed; both matchers must keep them green.

use secpert_engine::{
    Engine, Expr, Fact, FieldConstraint, PatternCE, RuleBuilder, SlotDef, SlotPattern, Strategy,
    Template, Value,
};

fn engine_with_event() -> Engine {
    let mut e = Engine::new();
    e.add_template(Template::new("event", [SlotDef::single("kind"), SlotDef::single("n")]))
        .unwrap();
    e
}

fn event(e: &Engine, kind: &str, n: i64) -> Fact {
    e.fact("event").unwrap().slot("kind", Value::sym(kind)).slot("n", n).build().unwrap()
}

/// A rule firing mid-run can retract the fact that blocks another rule's
/// `not` element; the blocked rule must activate and fire in the same run.
#[test]
fn rhs_retract_reenables_not_mid_run() {
    let mut e = engine_with_event();
    e.add_template(Template::new("mute", [])).unwrap();
    e.add_rule(
        RuleBuilder::new("unmute")
            .salience(10)
            .pattern(PatternCE::new("mute").bind("m"))
            .action(Expr::Retract(vec![Expr::var("m")]))
            .build(),
    )
    .unwrap();
    e.add_rule(
        RuleBuilder::new("warn")
            .pattern(PatternCE::new("event"))
            .not(PatternCE::new("mute"))
            .action(Expr::Printout(vec![Expr::lit("W")]))
            .build(),
    )
    .unwrap();
    e.assert_fact(Fact::with_defaults(e.template("mute").unwrap().clone())).unwrap();
    e.assert_fact(event(&e, "open", 1)).unwrap();
    assert_eq!(e.agenda_len(), 1, "warn is blocked while mute is live");
    assert_eq!(e.run(None).unwrap(), 2, "unmute fires, then warn is re-enabled");
    assert_eq!(e.take_output(), "W");
}

/// The reverse direction: an RHS assert of a negated-template fact must
/// deactivate a pending `not` rule before it gets a chance to fire.
#[test]
fn rhs_assert_disables_pending_not_activation() {
    let mut e = engine_with_event();
    e.add_template(Template::new("mute", [])).unwrap();
    e.add_rule(
        RuleBuilder::new("silence")
            .salience(10)
            .pattern(PatternCE::new("event"))
            .action(Expr::Assert { template: "mute".into(), slots: vec![] })
            .build(),
    )
    .unwrap();
    e.add_rule(
        RuleBuilder::new("warn")
            .pattern(PatternCE::new("event"))
            .not(PatternCE::new("mute"))
            .action(Expr::Printout(vec![Expr::lit("W")]))
            .build(),
    )
    .unwrap();
    e.assert_fact(event(&e, "open", 1)).unwrap();
    assert_eq!(e.agenda_len(), 2, "both rules activate before the run");
    assert_eq!(e.run(None).unwrap(), 1, "silence fires first and kills warn");
    assert_eq!(e.take_output(), "");
}

/// `?f <-` bound at one position must reject any *different* fact at a
/// later position using the same binding, while accepting the same fact.
#[test]
fn fact_binding_rejects_rebinding_to_different_fact() {
    let mut e = engine_with_event();
    e.add_rule(
        RuleBuilder::new("same-fact-twice")
            .pattern(PatternCE::new("event").bind("f"))
            .pattern(PatternCE::new("event").bind("f"))
            .action(Expr::Printout(vec![Expr::lit("x")]))
            .build(),
    )
    .unwrap();
    e.assert_fact(event(&e, "a", 1)).unwrap();
    e.assert_fact(event(&e, "b", 2)).unwrap();
    // Two facts, two positions: without the rebinding check this would be
    // 4 activations; with it only the diagonal (f1,f1), (f2,f2) survives.
    assert_eq!(e.agenda_len(), 2);
    assert_eq!(e.run(None).unwrap(), 2);
    assert_eq!(e.take_output(), "xx");
}

/// `?f <-` across two different templates can never unify and must
/// produce no activations at all.
#[test]
fn fact_binding_across_templates_never_unifies() {
    let mut e = engine_with_event();
    e.add_template(Template::new("alarm", [])).unwrap();
    e.add_rule(
        RuleBuilder::new("impossible")
            .pattern(PatternCE::new("event").bind("f"))
            .pattern(PatternCE::new("alarm").bind("f"))
            .action(Expr::Printout(vec![Expr::lit("x")]))
            .build(),
    )
    .unwrap();
    e.assert_fact(event(&e, "a", 1)).unwrap();
    e.assert_fact(Fact::with_defaults(e.template("alarm").unwrap().clone())).unwrap();
    assert_eq!(e.agenda_len(), 0);
    assert_eq!(e.run(None).unwrap(), 0);
}

/// Refraction is keyed on (rule, fact-id tuple): the same ids never fire
/// twice within a run epoch, but `reset()` clears refraction so the same
/// deffacts fire again, and a retract + re-assert of identical content
/// (fresh id) also fires again.
#[test]
fn refraction_is_per_fact_tuple_and_cleared_by_reset() {
    let mut e = engine_with_event();
    e.add_rule(
        RuleBuilder::new("r")
            .pattern(PatternCE::new("event"))
            .action(Expr::Printout(vec![Expr::lit("x")]))
            .build(),
    )
    .unwrap();
    let id = e.assert_fact(event(&e, "open", 1)).unwrap().unwrap();
    assert_eq!(e.run(None).unwrap(), 1);
    assert_eq!(e.run(None).unwrap(), 0, "refraction holds within the epoch");
    // Same content, fresh id: a different activation key, so it fires.
    e.retract_fact(id).unwrap();
    e.assert_fact(event(&e, "open", 1)).unwrap().unwrap();
    assert_eq!(e.run(None).unwrap(), 1, "fresh id escapes refraction");
    // Across reset the deffact gets a fresh id and refraction is cleared.
    e.add_deffact(event(&e, "open", 1));
    e.reset().unwrap();
    assert_eq!(e.run(None).unwrap(), 1);
    e.reset().unwrap();
    assert_eq!(e.run(None).unwrap(), 1, "reset clears refraction");
}

/// Depth fires the newest activation first among equal saliences; Breadth
/// fires the oldest first. Same rule, three facts asserted in order.
#[test]
fn depth_vs_breadth_tie_breaking_across_facts() {
    for (strategy, expect) in [(Strategy::Depth, "cba"), (Strategy::Breadth, "abc")] {
        let mut e = engine_with_event();
        e.set_strategy(strategy);
        e.add_rule(
            RuleBuilder::new("echo")
                .pattern(
                    PatternCE::new("event")
                        .slot("kind", SlotPattern::Single(FieldConstraint::var("k"))),
                )
                .action(Expr::Printout(vec![Expr::var("k")]))
                .build(),
        )
        .unwrap();
        for kind in ["a", "b", "c"] {
            e.assert_fact(event(&e, kind, 0)).unwrap();
        }
        assert_eq!(e.run(None).unwrap(), 3);
        assert_eq!(e.take_output(), expect, "strategy {strategy:?}");
    }
}

/// Two equal-salience rules activated by one assert: activations are
/// created in rule-definition order, so Depth fires the later-defined
/// rule first (its activation is newer) and Breadth the earlier one.
#[test]
fn depth_vs_breadth_tie_breaking_across_rules() {
    for (strategy, expect) in [(Strategy::Depth, "21"), (Strategy::Breadth, "12")] {
        let mut e = engine_with_event();
        e.set_strategy(strategy);
        for tag in ["1", "2"] {
            e.add_rule(
                RuleBuilder::new(format!("r{tag}").as_str())
                    .pattern(PatternCE::new("event"))
                    .action(Expr::Printout(vec![Expr::lit(tag)]))
                    .build(),
            )
            .unwrap();
        }
        e.assert_fact(event(&e, "open", 1)).unwrap();
        assert_eq!(e.run(None).unwrap(), 2);
        assert_eq!(e.take_output(), expect, "strategy {strategy:?}");
    }
}

/// Salience dominates recency under both strategies.
#[test]
fn salience_dominates_recency_under_both_strategies() {
    for strategy in [Strategy::Depth, Strategy::Breadth] {
        let mut e = engine_with_event();
        e.set_strategy(strategy);
        e.add_rule(
            RuleBuilder::new("low")
                .salience(-5)
                .pattern(PatternCE::new("event"))
                .action(Expr::Printout(vec![Expr::lit("L")]))
                .build(),
        )
        .unwrap();
        e.add_rule(
            RuleBuilder::new("high")
                .salience(5)
                .pattern(PatternCE::new("event"))
                .action(Expr::Printout(vec![Expr::lit("H")]))
                .build(),
        )
        .unwrap();
        e.assert_fact(event(&e, "open", 1)).unwrap();
        assert_eq!(e.run(None).unwrap(), 2);
        assert_eq!(e.take_output(), "HL", "strategy {strategy:?}");
    }
}
