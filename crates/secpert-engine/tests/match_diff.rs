//! Differential oracle: the incremental Rete network and the naive
//! full-join matcher must be observationally identical — same agenda
//! snapshots, same firing sequences, same transcripts, same final
//! working memory — across random interleavings of asserts, retracts,
//! bounded runs, resets and mid-stream rule additions.
//!
//! Rules are generated with the shapes that stress the network: shared
//! variables across patterns (beta joins), constant slots (alpha
//! discrimination), `not` CEs (support counting + resequencing), `test`
//! CEs, fact-address bindings with RHS retracts (mid-run agenda edits)
//! and RHS asserts (cascading activation).

use std::sync::Arc;

use proptest::prelude::*;
use secpert_engine::{
    Engine, Expr, FieldConstraint, Matcher, PatternCE, Rule, RuleBuilder, SlotDef, SlotPattern,
    Strategy, Template, Value,
};

/// Deterministic local RNG (same construction as the proptest shim).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const TEMPLATES: usize = 3;

fn template_name(i: u64) -> String {
    format!("t{i}")
}

/// One random condition element; returns the pattern plus which of the
/// shared variables (`x` on slot `a`, `y` on slot `b`) it mentions.
fn gen_pattern(rng: &mut Rng) -> (PatternCE, bool, bool) {
    let mut p = PatternCE::new(template_name(rng.below(TEMPLATES as u64)));
    let mut uses_x = false;
    let mut uses_y = false;
    match rng.below(3) {
        0 => {}
        1 => {
            p = p.slot(
                "a",
                SlotPattern::Single(FieldConstraint::literal(Value::Int(rng.below(3) as i64))),
            );
        }
        _ => {
            p = p.slot("a", SlotPattern::Single(FieldConstraint::var("x")));
            uses_x = true;
        }
    }
    match rng.below(3) {
        0 => {}
        1 => {
            p = p.slot(
                "b",
                SlotPattern::Single(FieldConstraint::literal(Value::Int(rng.below(3) as i64))),
            );
        }
        _ => {
            p = p.slot("b", SlotPattern::Single(FieldConstraint::var("y")));
            uses_y = true;
        }
    }
    (p, uses_x, uses_y)
}

fn gen_rule(rng: &mut Rng, index: usize) -> Rule {
    let mut b = RuleBuilder::new(format!("r{index}")).salience([-1, 0, 1][rng.below(3) as usize]);
    let mut x_bound = false;
    let mut bound_fact: Option<String> = None;
    let n_ce = 1 + rng.below(3);
    for ce in 0..n_ce {
        let kind = if ce == 0 { 0 } else { rng.below(10) };
        match kind {
            0..=4 => {
                let (mut p, uses_x, _) = gen_pattern(rng);
                if rng.below(4) == 0 {
                    let name = format!("f{ce}");
                    p = p.bind(name.clone());
                    bound_fact = Some(name);
                }
                x_bound |= uses_x;
                b = b.pattern(p);
            }
            5..=7 => {
                let (p, _, _) = gen_pattern(rng);
                b = b.not(p);
            }
            _ => {
                if x_bound {
                    b = b.test(Expr::call(">", [Expr::var("x"), Expr::lit(rng.below(3) as i64)]));
                }
            }
        }
    }
    b = b.action(Expr::Printout(vec![Expr::lit(format!("r{index};"))]));
    if rng.below(10) < 3 {
        let (a, v) = (rng.below(3) as i64, rng.below(3) as i64);
        b = b.action(Expr::Assert {
            template: Arc::from(template_name(rng.below(TEMPLATES as u64)).as_str()),
            slots: vec![(Arc::from("a"), vec![Expr::lit(a)]), (Arc::from("b"), vec![Expr::lit(v)])],
        });
    }
    if let Some(f) = bound_fact {
        if rng.below(10) < 4 {
            b = b.action(Expr::Retract(vec![Expr::var(f)]));
        }
    }
    b.build()
}

fn fresh_engine(matcher: Matcher, strategy: Strategy) -> Engine {
    let mut e = Engine::with_matcher(matcher);
    for t in 0..TEMPLATES as u64 {
        e.add_template(Template::new(
            template_name(t),
            [SlotDef::single("a"), SlotDef::single("b")],
        ))
        .unwrap();
    }
    e.set_strategy(strategy);
    e
}

/// Asserts every observable surface of the two engines agrees.
fn check_equivalent(naive: &Engine, rete: &Engine) {
    assert_eq!(naive.fact_count(), rete.fact_count());
    assert_eq!(naive.agenda_len(), rete.agenda_len());
    assert_eq!(naive.agenda(), rete.agenda());
    assert_eq!(naive.fired_total(), rete.fired_total());
    for t in 0..TEMPLATES as u64 {
        let name = template_name(t);
        let dump = |e: &Engine| -> Vec<(u64, String)> {
            e.facts_of(&name).iter().map(|(id, f)| (id.raw(), f.to_string())).collect()
        };
        assert_eq!(dump(naive), dump(rete), "template {name} extents differ");
    }
    let naive_firings: Vec<_> = naive
        .firings()
        .iter()
        .map(|f| (f.seq, f.rule.clone(), f.fact_ids.clone(), f.facts.clone(), f.output.clone()))
        .collect();
    let rete_firings: Vec<_> = rete
        .firings()
        .iter()
        .map(|f| (f.seq, f.rule.clone(), f.fact_ids.clone(), f.facts.clone(), f.output.clone()))
        .collect();
    assert_eq!(naive_firings, rete_firings);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random assert/retract/run/reset/add-rule interleavings drive both
    /// matchers identically.
    #[test]
    fn rete_matches_naive_oracle(seed in 0u64..u64::MAX) {
        let mut rng = Rng(seed);
        let strategy = if rng.below(2) == 0 { Strategy::Depth } else { Strategy::Breadth };
        let mut naive = fresh_engine(Matcher::Naive, strategy);
        let mut rete = fresh_engine(Matcher::Rete, strategy);
        prop_assert_eq!(naive.matcher(), Matcher::Naive);
        prop_assert_eq!(rete.matcher(), Matcher::Rete);

        let mut n_rules = 0;
        for _ in 0..1 + rng.below(4) {
            let rule = gen_rule(&mut rng, n_rules);
            naive.add_rule(rule.clone()).unwrap();
            rete.add_rule(rule).unwrap();
            n_rules += 1;
            check_equivalent(&naive, &rete);
        }

        let n_ops = 10 + rng.below(25);
        for _ in 0..n_ops {
            match rng.below(10) {
                0..=4 => {
                    let t = template_name(rng.below(TEMPLATES as u64));
                    let (a, v) = (rng.below(3) as i64, rng.below(3) as i64);
                    let build = |e: &Engine| {
                        e.fact(&t).unwrap().slot("a", a).slot("b", v).build().unwrap()
                    };
                    let id_n = naive.assert_fact(build(&naive)).unwrap();
                    let id_r = rete.assert_fact(build(&rete)).unwrap();
                    prop_assert_eq!(id_n, id_r, "assert ids diverge");
                }
                5 | 6 => {
                    // Retract a random live fact (same one in both).
                    let mut live = Vec::new();
                    for t in 0..TEMPLATES as u64 {
                        live.extend(
                            naive.facts_of(&template_name(t)).iter().map(|(id, _)| *id),
                        );
                    }
                    if let Some(&id) = live.get(rng.below(live.len().max(1) as u64) as usize) {
                        naive.retract_fact(id).unwrap();
                        rete.retract_fact(id).unwrap();
                    }
                }
                7 => {
                    let limit = 1 + rng.below(5) as usize;
                    let fired_n = naive.run(Some(limit)).unwrap();
                    let fired_r = rete.run(Some(limit)).unwrap();
                    prop_assert_eq!(fired_n, fired_r, "run() fired counts diverge");
                }
                8 => {
                    if n_rules < 8 {
                        let rule = gen_rule(&mut rng, n_rules);
                        naive.add_rule(rule.clone()).unwrap();
                        rete.add_rule(rule).unwrap();
                        n_rules += 1;
                    }
                }
                _ => {
                    naive.reset().unwrap();
                    rete.reset().unwrap();
                }
            }
            check_equivalent(&naive, &rete);
        }

        // Drain to quiescence and compare the full transcripts.
        let fired_n = naive.run(Some(500)).unwrap();
        let fired_r = rete.run(Some(500)).unwrap();
        prop_assert_eq!(fired_n, fired_r);
        check_equivalent(&naive, &rete);
        prop_assert_eq!(naive.take_output(), rete.take_output(), "transcripts diverge");
    }
}
