//! Property-based tests for the expert-system engine: the incremental
//! agenda must agree with a brute-force matcher, duplicate suppression
//! must be sound, and the parser must round-trip facts.

use proptest::prelude::*;
use secpert_engine::{
    Engine, Expr, FieldConstraint, PatternCE, RuleBuilder, SlotDef, SlotPattern, Template, Value,
};

/// A small universe of slot values so joins actually happen.
fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        (0..4i64).prop_map(Value::Int),
        prop_oneof![Just("open"), Just("close"), Just("read")].prop_map(Value::sym),
        prop_oneof![Just("/a"), Just("/b")].prop_map(Value::str),
    ]
}

fn engine_with_templates() -> Engine {
    let mut engine = Engine::new();
    engine
        .add_template(Template::new("ev", [SlotDef::single("kind"), SlotDef::single("n")]))
        .unwrap();
    engine.add_template(Template::new("res", [SlotDef::single("kind")])).unwrap();
    engine
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Asserting random facts and running a two-pattern join rule fires
    /// exactly once per distinct (ev, res) pair with matching `kind` —
    /// the same count a brute-force cross product predicts.
    #[test]
    fn join_count_matches_brute_force(
        events in prop::collection::vec((value_strategy(), 0..4i64), 0..8),
        resources in prop::collection::vec(value_strategy(), 0..8),
    ) {
        let mut engine = engine_with_templates();
        engine
            .add_rule(
                RuleBuilder::new("join")
                    .pattern(
                        PatternCE::new("ev")
                            .slot("kind", SlotPattern::Single(FieldConstraint::var("k"))),
                    )
                    .pattern(
                        PatternCE::new("res")
                            .slot("kind", SlotPattern::Single(FieldConstraint::var("k"))),
                    )
                    .action(Expr::lit(1))
                    .build(),
            )
            .unwrap();
        let mut kept_events = Vec::new();
        for (kind, n) in &events {
            let fact = engine
                .fact("ev").unwrap()
                .slot("kind", kind.clone())
                .slot("n", *n)
                .build().unwrap();
            if engine.assert_fact(fact).unwrap().is_some() {
                kept_events.push((kind.clone(), *n));
            }
        }
        let mut kept_resources = Vec::new();
        for kind in &resources {
            let fact = engine
                .fact("res").unwrap()
                .slot("kind", kind.clone())
                .build().unwrap();
            if engine.assert_fact(fact).unwrap().is_some() {
                kept_resources.push(kind.clone());
            }
        }
        let expected: usize = kept_events
            .iter()
            .map(|(k, _)| kept_resources.iter().filter(|r| *r == k).count())
            .sum();
        let fired = engine.run(None).unwrap();
        prop_assert_eq!(fired, expected);
    }

    /// Duplicate facts are suppressed: asserting the same slots twice
    /// yields one live fact, and retraction empties working memory.
    #[test]
    fn duplicate_suppression_and_retraction(
        kinds in prop::collection::vec(value_strategy(), 1..12),
    ) {
        let mut engine = engine_with_templates();
        let mut ids = Vec::new();
        let mut distinct = std::collections::HashSet::new();
        for kind in &kinds {
            let fact = engine
                .fact("res").unwrap()
                .slot("kind", kind.clone())
                .build().unwrap();
            if let Some(id) = engine.assert_fact(fact).unwrap() {
                ids.push(id);
                distinct.insert(format!("{kind}"));
            }
        }
        prop_assert_eq!(engine.fact_count(), distinct.len());
        for id in ids {
            engine.retract_fact(id).unwrap();
        }
        prop_assert_eq!(engine.fact_count(), 0);
    }

    /// Fact forms rendered by the engine parse back to identical facts.
    #[test]
    fn fact_render_parse_round_trip(
        kind in value_strategy(),
        n in -100..100i64,
    ) {
        let mut engine = engine_with_templates();
        let fact = engine
            .fact("ev").unwrap()
            .slot("kind", kind)
            .slot("n", n)
            .build().unwrap();
        let rendered = fact.to_string();
        let id = engine.assert_fact(fact.clone()).unwrap().unwrap();
        engine.retract_fact(id).unwrap();
        let id2 = engine.assert_str(&rendered).unwrap().unwrap();
        let parsed = engine.get_fact(id2).unwrap();
        prop_assert_eq!(&*parsed, &fact);
    }

    /// Refraction: re-running after quiescence never re-fires, whatever
    /// the fact mix; resetting restores exactly one full firing pass.
    #[test]
    fn refraction_is_stable(kinds in prop::collection::vec(value_strategy(), 0..8)) {
        let mut engine = engine_with_templates();
        engine
            .add_rule(
                RuleBuilder::new("any")
                    .pattern(PatternCE::new("res"))
                    .action(Expr::lit(0))
                    .build(),
            )
            .unwrap();
        for kind in &kinds {
            let fact = engine
                .fact("res").unwrap()
                .slot("kind", kind.clone())
                .build().unwrap();
            engine.assert_fact(fact).unwrap();
        }
        let first = engine.run(None).unwrap();
        prop_assert_eq!(engine.run(None).unwrap(), 0);
        prop_assert_eq!(engine.run(None).unwrap(), 0);
        prop_assert_eq!(first, engine.fact_count());
    }
}

// Negation consistency: a `not` CE rule fires exactly when no blocker
// exists, under arbitrary interleavings of asserts and retracts.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn negation_tracks_blockers(ops in prop::collection::vec(any::<bool>(), 1..12)) {
        let mut engine = engine_with_templates();
        engine
            .add_template(Template::new("blocker", []))
            .unwrap();
        engine
            .add_rule(
                RuleBuilder::new("guarded")
                    .pattern(PatternCE::new("res"))
                    .not(PatternCE::new("blocker"))
                    .action(Expr::lit(0))
                    .build(),
            )
            .unwrap();
        let res = engine.fact("res").unwrap().slot("kind", Value::sym("x")).build().unwrap();
        engine.assert_fact(res).unwrap();
        let mut blocker_id = None;
        for add in ops {
            if add && blocker_id.is_none() {
                let f = engine.fact("blocker").unwrap().build().unwrap();
                blocker_id = engine.assert_fact(f).unwrap();
            } else if let Some(id) = blocker_id.take() {
                engine.retract_fact(id).unwrap();
            }
            let expected = usize::from(blocker_id.is_none());
            prop_assert_eq!(engine.agenda_len(), expected, "blocked = {}", blocker_id.is_some());
        }
    }
}
