//! The daemon's reason to exist: long-running, memory-bounded serving
//! must not change a single analysis result. A 64-session run under an
//! eviction-forcing budget must produce exactly the warning multiset
//! that batch-mode `hth fleet` reports on the same corpus.

use std::sync::{Arc, Mutex, PoisonError};

use harrier::SecpertEvent;
use hth_core::{Secpert, Session, SessionConfig};
use hth_fleet::pool::PoolConfig;
use hth_fleet::{run_scenarios, FleetConfig};
use hth_serve::{SessionTable, TableConfig};
use hth_workloads::scenario::Scenario;

fn capture(scenario: &Scenario) -> Vec<SecpertEvent> {
    let mut session = Session::new(SessionConfig::default()).expect("session");
    let start = (scenario.setup)(&mut session);
    let events: Arc<Mutex<Vec<SecpertEvent>>> = Arc::new(Mutex::new(Vec::new()));
    let tap = Arc::clone(&events);
    session.set_event_tap(Box::new(move |event| {
        tap.lock().unwrap_or_else(PoisonError::into_inner).push(event.clone());
    }));
    let argv: Vec<&str> = start.argv.iter().map(String::as_str).collect();
    let env: Vec<(&str, &str)> = start.env.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
    session.start(start.path, &argv, &env).expect("start");
    session.run().expect("run");
    drop(session);
    let captured = events.lock().unwrap_or_else(PoisonError::into_inner).clone();
    assert!(!captured.is_empty());
    captured
}

fn two_exploits() -> Vec<Scenario> {
    hth_workloads::exploits::scenarios()
        .into_iter()
        .filter(|s| s.id == "ElmExploit" || s.id == "grabem")
        .collect()
}

#[test]
fn sixty_four_evicting_sessions_match_batch_fleet() {
    const SESSIONS: usize = 64;

    // Batch side: the same corpus as 64 fleet sessions (32 of each
    // exploit), analysed by the sharded pool.
    let mut corpus = Vec::with_capacity(SESSIONS);
    while corpus.len() < SESSIONS {
        corpus.extend(two_exploits());
    }
    let fleet_config = FleetConfig {
        pool: PoolConfig { shards: 4, ..PoolConfig::default() },
        workers: 4,
        ..FleetConfig::default()
    };
    let report = run_scenarios(corpus, &fleet_config).expect("fleet run");
    assert_eq!(report.sessions, SESSIONS);
    assert!(report.session_errors.is_empty(), "{:?}", report.session_errors);
    assert!(report.analyst_errors.is_empty(), "{:?}", report.analyst_errors);
    assert!(!report.warning_counts.is_empty(), "exploits must warn");

    // Serve side: the identical event streams through the daemon's
    // session table, under a budget small enough that the 64 sessions
    // constantly evict each other.
    let captured: Vec<Vec<SecpertEvent>> = two_exploits().iter().map(capture).collect();
    let base = Secpert::new(&TableConfig::default().policy).expect("policy").approx_bytes();
    let table = SessionTable::new(TableConfig { budget_bytes: base * 4, ..TableConfig::default() });
    let streams: Vec<&[SecpertEvent]> =
        (0..SESSIONS).map(|sid| captured[sid % captured.len()].as_slice()).collect();
    let longest = streams.iter().map(|s| s.len()).max().unwrap();
    // Round-robin interleave so every session is evicted (and revived
    // from its snapshot) many times mid-stream.
    for i in 0..longest {
        for (sid, stream) in streams.iter().enumerate() {
            if let Some(event) = stream.get(i) {
                table.submit(sid as u64, event).expect("submit");
            }
        }
    }

    let stats = table.stats();
    assert!(stats.evictions as usize > SESSIONS, "the budget must force heavy churn: {stats:?}");
    assert!(stats.restores > 0, "{stats:?}");
    assert_eq!(stats.fallback_replays, 0, "no faults, no replays: {stats:?}");
    assert_eq!(
        table.warning_counts(),
        report.warning_counts,
        "daemon-under-eviction and batch fleet must agree on every warning"
    );
}
