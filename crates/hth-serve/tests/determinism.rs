//! Snapshot/restore determinism: evicting a session at any point and
//! resuming it must be *invisible* — warnings (with their provenance
//! trees), match statistics, and the final engine state must be
//! byte-identical to an uninterrupted run. The property suite cuts real
//! exploit streams and synthetic mixes at random points; the soak test
//! churns a small budget and checks the accounting invariant plus that
//! every eviction leaves a loadable snapshot behind.

use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use harrier::SecpertEvent;
use hth_core::{PolicyConfig, Secpert, Session, SessionConfig, Warning};
use hth_fleet::FaultPlan;
use hth_serve::{synthetic_events, SessionTable, TableConfig};
use proptest::prelude::*;

/// Runs one workload scenario under the monitor with an event tap and
/// returns exactly the event stream Harrier emitted, cached per id (the
/// capture spins up a whole VM session, the replays don't need to).
fn exploit_stream(id: &str) -> Vec<SecpertEvent> {
    static CACHE: OnceLock<Mutex<std::collections::BTreeMap<String, Vec<SecpertEvent>>>> =
        OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(std::collections::BTreeMap::new()));
    let mut cache = cache.lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(events) = cache.get(id) {
        return events.clone();
    }
    let scenario = hth_workloads::exploits::scenarios()
        .into_iter()
        .find(|s| s.id == id)
        .unwrap_or_else(|| panic!("scenario {id} exists"));
    let mut session = Session::new(SessionConfig::default()).expect("session");
    let start = (scenario.setup)(&mut session);
    let events: Arc<Mutex<Vec<SecpertEvent>>> = Arc::new(Mutex::new(Vec::new()));
    let tap = Arc::clone(&events);
    session.set_event_tap(Box::new(move |event| {
        tap.lock().unwrap_or_else(PoisonError::into_inner).push(event.clone());
    }));
    let argv: Vec<&str> = start.argv.iter().map(String::as_str).collect();
    let env: Vec<(&str, &str)> = start.env.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
    session.start(start.path, &argv, &env).expect("start");
    session.run().expect("run");
    drop(session);
    let captured = events.lock().unwrap_or_else(PoisonError::into_inner).clone();
    assert!(!captured.is_empty(), "scenario {id} emits events");
    cache.insert(id.to_string(), captured.clone());
    captured
}

/// The scenario mixes the property suite cuts: two real exploits, a
/// synthetic benign stream, and concatenations that cross a workload
/// boundary mid-session.
fn stream_for_mix(mix: usize) -> Vec<SecpertEvent> {
    match mix {
        0 => exploit_stream("ElmExploit"),
        1 => exploit_stream("grabem"),
        2 => synthetic_events(5, 60),
        3 => {
            let mut s = exploit_stream("ElmExploit");
            s.extend(synthetic_events(7, 25));
            s
        }
        _ => {
            let mut s = synthetic_events(9, 25);
            s.extend(exploit_stream("grabem"));
            s
        }
    }
}

fn feed(expert: &mut Secpert, events: &[SecpertEvent]) -> Vec<Warning> {
    let mut warnings = Vec::new();
    for event in events {
        warnings.extend(expert.process_event(event).expect("process"));
    }
    warnings
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Evict-at-k + resume is byte-identical to an uninterrupted run:
    /// same warnings (provenance trees included), same match counters,
    /// same event cursor, and byte-equal final snapshots.
    #[test]
    fn evict_at_k_plus_resume_is_byte_identical(mix in 0usize..5, cut_permille in 0u64..=1000) {
        let events = stream_for_mix(mix);
        let k = (cut_permille as usize * events.len()) / 1000;
        let config = PolicyConfig::default();

        let mut reference = Secpert::new(&config).expect("policy");
        let expected = feed(&mut reference, &events);

        let mut first = Secpert::new(&config).expect("policy");
        let mut warnings = feed(&mut first, &events[..k]);
        let snapshot = first.snapshot().expect("quiescent snapshot");
        drop(first);
        let mut resumed = Secpert::restore(&config, &snapshot).expect("restore");
        prop_assert_eq!(resumed.events_processed(), k as u64);
        warnings.append(&mut feed(&mut resumed, &events[k..]));

        prop_assert_eq!(&warnings, &expected);
        prop_assert_eq!(resumed.events_processed(), reference.events_processed());
        prop_assert_eq!(resumed.match_stats(), reference.match_stats());
        prop_assert_eq!(
            resumed.snapshot().expect("resumed snapshot"),
            reference.snapshot().expect("reference snapshot")
        );
    }
}

/// A torn eviction snapshot must be rejected on revive and replaced by
/// a full journal replay that reconstructs the *same* analysis — the
/// warning stream of a faulted table equals the unfaulted one, byte for
/// byte, provenance included.
#[test]
fn torn_snapshot_fallback_reproduces_identical_warnings() {
    let events = stream_for_mix(3);
    // Budget zero evicts after every request; tear snapshots 1..=4 at
    // assorted prefixes (0 bytes kills even the magic).
    let faults = Arc::new(
        FaultPlan::new()
            .torn_snapshot(1, 0)
            .torn_snapshot(2, 3)
            .torn_snapshot(3, 10)
            .torn_snapshot(4, 40),
    );
    let faulted =
        SessionTable::new(TableConfig { budget_bytes: 0, faults, ..TableConfig::default() });
    let clean = SessionTable::new(TableConfig::default());
    for event in &events {
        let a = faulted.submit(11, event).expect("faulted submit");
        let b = clean.submit(11, event).expect("clean submit");
        assert_eq!(a, b, "per-event warning counts diverge");
    }
    assert_eq!(faulted.warning_counts(), clean.warning_counts());
    let stats = faulted.stats();
    assert!(stats.fallback_replays >= 4, "each torn snapshot forces a replay: {stats:?}");
    assert!(stats.restores >= 1, "later intact snapshots restore normally: {stats:?}");
}

/// Budget-churn soak: resident accounted bytes never exceed the budget
/// after any request, every evicted session holds a loadable snapshot,
/// and the multiset of warnings matches an unbudgeted table.
#[test]
fn budget_churn_soak_holds_the_accounting_invariant() {
    // Size the budget from a *grown* engine: working-memory and token
    // bytes dominate a fresh engine's footprint once events flow.
    let policy = PolicyConfig::default();
    let mut probe = Secpert::new(&policy).expect("policy");
    feed(&mut probe, &synthetic_events(0, 30));
    let budget = probe.approx_bytes() * 3; // room for ~3 grown engines
    drop(probe);
    let table = SessionTable::new(TableConfig { budget_bytes: budget, ..TableConfig::default() });
    let reference = SessionTable::new(TableConfig::default());

    const SESSIONS: u64 = 12;
    const EVENTS: usize = 30;
    let streams: Vec<Vec<SecpertEvent>> =
        (0..SESSIONS).map(|s| synthetic_events(s, EVENTS)).collect();
    for i in 0..EVENTS {
        for (sid, stream) in streams.iter().enumerate() {
            let sid = sid as u64;
            table.submit(sid, &stream[i]).expect("budgeted submit");
            reference.submit(sid, &stream[i]).expect("reference submit");
            let stats = table.stats();
            assert!(
                stats.resident_bytes <= budget as u64,
                "resident {} exceeds budget {budget} after session {sid} event {i}",
                stats.resident_bytes,
            );
            for other in 0..SESSIONS {
                if table.is_resident(other) == Some(false) {
                    let snap =
                        table.evicted_snapshot(other).expect("every eviction stores a snapshot");
                    Secpert::restore(&table.config().policy, &snap)
                        .expect("every stored snapshot is loadable");
                }
            }
        }
    }
    let stats = table.stats();
    assert!(stats.evictions > 0, "the budget must actually force evictions");
    assert!(stats.restores > 0, "sessions revive from snapshots, not replays: {stats:?}");
    assert_eq!(stats.fallback_replays, 0, "no snapshot may be unreadable without faults");
    assert_eq!(stats.events_total, SESSIONS * EVENTS as u64);
    assert_eq!(table.warning_counts(), reference.warning_counts());
    assert!(table.resident_high_water() >= 2, "several sessions fit the budget at once");
}
