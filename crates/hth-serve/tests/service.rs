//! End-to-end daemon tests over real loopback sockets: protocol smoke,
//! the live `/metrics` endpoint, graceful drain, and the chaos
//! guarantee that a killed connection loses at most its unacked events.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use hth_fleet::{ConnectionFault, FaultPlan};
use hth_serve::{run_load, Client, ServeConfig, ServeSummary, Server, SessionTable, TableConfig};

fn start_server(
    config: ServeConfig,
) -> (
    std::net::SocketAddr,
    Arc<SessionTable>,
    hth_serve::ServerHandle,
    std::thread::JoinHandle<ServeSummary>,
) {
    let server = Server::bind(config).expect("bind loopback");
    let addr = server.local_addr();
    let table = server.table();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("server run"));
    (addr, table, handle, join)
}

#[test]
fn smoke_sessions_stats_metrics_and_drain() {
    let (addr, _table, _handle, join) = start_server(ServeConfig::default());

    let mut client = Client::connect(addr).expect("connect");
    let streams: Vec<_> = (0..3u64).map(|s| hth_serve::synthetic_events(s, 20)).collect();
    for sid in 0..3u64 {
        client.open(sid).expect("open");
    }
    for i in 0..20 {
        for (sid, stream) in streams.iter().enumerate() {
            client.submit(sid as u64, &stream[i]).expect("submit");
        }
    }
    client.flush().expect("flush");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.events_total, 60);
    assert_eq!(stats.sessions_open, 3);
    assert_eq!(stats.sessions_resident, 3, "default budget keeps everything hot");
    assert!(stats.resident_bytes > 0);

    // Live Prometheus scrape on the same port, mid-run.
    let mut http = TcpStream::connect(addr).expect("http connect");
    http.write_all(b"GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n").expect("request");
    let mut response = String::new();
    http.read_to_string(&mut response).expect("response");
    assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
    assert!(response.contains("hth_serve_sessions_resident 3"), "{response}");
    assert!(response.contains("hth_serve_events_total 60"), "{response}");
    assert!(response.contains("hth_serve_budget_bytes"), "{response}");
    // The scrape swapped the same snapshot into the process-global
    // registry, so an in-process --metrics reader agrees with it.
    let global = hth_trace::global_metrics().snapshot();
    assert_eq!(global.gauge("hth_serve_sessions_resident"), Some(3));

    // Unknown paths 404 without disturbing the daemon.
    let mut http = TcpStream::connect(addr).expect("http connect");
    http.write_all(b"GET /nope HTTP/1.1\r\n\r\n").expect("request");
    let mut response = String::new();
    http.read_to_string(&mut response).expect("response");
    assert!(response.starts_with("HTTP/1.1 404"), "{response}");

    for sid in 0..3u64 {
        client.close(sid).expect("close");
    }
    client.shutdown().expect("shutdown");
    let summary = join.join().expect("join");
    assert_eq!(summary.stats.events_total, 60);
    assert_eq!(summary.stats.sessions_open, 0, "all sessions were closed before drain");
    assert!(summary.connections >= 1);
    assert_eq!(summary.http_requests, 2);
    assert!(summary.resident_high_water >= 3);
}

#[test]
fn loadgen_reports_rates_and_latency() {
    let (addr, _table, handle, join) = start_server(ServeConfig::default());
    let report = run_load(addr, 4, 25).expect("load run");
    assert_eq!(report.events, 100);
    assert_eq!(report.ack_latency_us.count(), 100, "every submit ack is timed");
    assert!(report.events_per_sec() > 0.0);
    assert_eq!(report.server.events_total, 100);
    handle.shutdown();
    let summary = join.join().expect("join");
    assert_eq!(summary.stats.events_total, 100);
}

/// A connection killed mid-frame loses at most its unacked events: the
/// torn frame is dropped by the server, every acked event is applied,
/// and a reconnecting client can replay from its last ack to converge
/// on exactly the uninterrupted result.
#[test]
fn killed_connection_loses_at_most_unacked_events() {
    let (addr, table, handle, join) = start_server(ServeConfig::default());
    let events = hth_serve::synthetic_events(1, 10);

    // Request 1 is Open, requests 2..=4 are submits of events 0..=2;
    // request 5 (event 3) is torn mid-frame after 6 bytes.
    let faults =
        Arc::new(FaultPlan::new().connection_on(1, 5, ConnectionFault::Disconnect { keep: 6 }));
    let mut doomed = Client::connect_with_faults(addr, faults).expect("connect");
    doomed.open(1).expect("open");
    let mut acked = 0u64;
    let mut torn_at = None;
    for (i, event) in events.iter().enumerate() {
        match doomed.submit(1, event) {
            Ok(_) => acked += 1,
            Err(_) => {
                torn_at = Some(i);
                break;
            }
        }
    }
    assert_eq!(torn_at, Some(3), "the planted fault fires on the 4th submit");
    assert_eq!(acked, 3);

    // The server applied exactly the acked prefix — nothing more.
    let mut fresh = Client::connect(addr).expect("reconnect");
    let stats = fresh.stats().expect("stats");
    assert_eq!(stats.events_total, acked, "only acked events are applied");

    // A stalled mid-frame write delays but corrupts nothing.
    let stalls =
        Arc::new(FaultPlan::new().connection_on(1, 1, ConnectionFault::Stall { millis: 30 }));
    let mut slow = Client::connect_with_faults(addr, Arc::clone(&stalls)).expect("connect");
    slow.submit(1, &events[acked as usize]).expect("stalled submit still acks");

    // Replaying from the last ack converges on the uninterrupted result.
    for event in &events[acked as usize + 1..] {
        fresh.submit(1, event).expect("replay");
    }
    let reference = SessionTable::new(TableConfig::default());
    for event in &events {
        reference.submit(1, event).expect("reference");
    }
    assert_eq!(table.warning_counts(), reference.warning_counts());
    assert_eq!(table.stats().events_total, events.len() as u64);

    handle.shutdown();
    join.join().expect("join");
}
