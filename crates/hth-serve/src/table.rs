//! The session table: lifecycle, memory budget, snapshot/restore.
//!
//! Every monitored program the daemon tracks is one *session*: a
//! [`Secpert`] engine, an in-memory event journal, and a warning
//! multiset. Sessions are created on first use and live in one of two
//! states:
//!
//! * **resident** — the engine is in memory and counted against the
//!   global hot-byte budget via [`Secpert::approx_bytes`],
//! * **evicted** — the engine was serialised by [`Secpert::snapshot`]
//!   at a quiescent point and dropped; only the snapshot bytes and the
//!   journal remain (cold state, not budgeted).
//!
//! After every request the table enforces the invariant *accounted
//! resident bytes ≤ budget* by evicting least-recently-used sessions;
//! an idle sweep additionally evicts sessions untouched for longer than
//! the configured timeout. A submit to an evicted session revives it:
//! restore from the snapshot, then replay the journal tail past the
//! snapshot's event cursor (warnings from replay are discarded — they
//! were already recorded when the events were first accepted). If the
//! snapshot is torn or unreadable the revive falls back to a fresh
//! engine and a full journal replay, which produces the same final
//! state because the engine is deterministic.
//!
//! Determinism is the contract the whole design leans on: the engine
//! snapshot suite proves evict-at-*k* + resume is byte-identical to an
//! uninterrupted run, so the table may evict *any* session at *any*
//! request boundary without changing a single warning.

use std::collections::BTreeMap;
use std::io::Write;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use harrier::SecpertEvent;
use hth_core::{
    CorrelateConfig, CorrelationReport, Correlator, DigestBuilder, PolicyConfig, Secpert,
    SessionDigest, Severity,
};
use hth_fleet::journal::{recover, JournalWriter};
use hth_fleet::{read_digest_stream, write_digest_stream, FaultPlan};
use hth_trace::{
    BundleRing, DiagLevel, FlightRecorder, Histogram, MetricsSnapshot, Trigger,
    DEFAULT_FLIGHT_CAPACITY,
};

use crate::protocol::ServeStats;
use crate::status::{SessionRow, StatusReport};
use crate::ServeError;

/// Growable in-memory journal sink shared between the writer (which
/// owns it by value) and the table (which reads it back on revive).
#[derive(Clone, Debug, Default)]
pub(crate) struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn contents(&self) -> Vec<u8> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner).clone()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner).extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Tuning for a [`SessionTable`].
#[derive(Clone, Debug)]
pub struct TableConfig {
    /// Policy every session engine is built from.
    pub policy: PolicyConfig,
    /// Global cap on resident engine bytes (as accounted by
    /// [`Secpert::approx_bytes`]); LRU eviction enforces it after every
    /// request. Zero forces full churn: every session is evicted as
    /// soon as its request completes.
    pub budget_bytes: usize,
    /// Evict sessions untouched for this long (`None` = never).
    pub idle_timeout: Option<Duration>,
    /// Fault plan consulted for torn snapshot writes.
    pub faults: Arc<FaultPlan>,
    /// Run the fleet correlator over the live digests when stats are
    /// taken (and in the drain summary). `None` keeps digest collection
    /// on but skips correlation.
    pub correlate: Option<CorrelateConfig>,
    /// Flight-recorder ring capacity (recent events retained for
    /// diagnostic bundles). Zero disables the recorder; that exists for
    /// overhead baselines, production tables keep it on.
    pub flight_capacity: usize,
}

impl Default for TableConfig {
    fn default() -> TableConfig {
        TableConfig {
            policy: PolicyConfig::default(),
            budget_bytes: 64 << 20,
            idle_timeout: None,
            faults: Arc::new(FaultPlan::new()),
            correlate: None,
            flight_capacity: DEFAULT_FLIGHT_CAPACITY,
        }
    }
}

struct SessionSlot {
    /// The engine, when resident.
    expert: Option<Secpert>,
    /// Eviction-time snapshot (present iff evicted and the write
    /// succeeded; may be torn by the fault plan).
    snapshot: Option<Vec<u8>>,
    /// Append-only event journal for this session.
    journal: JournalWriter<SharedBuf>,
    /// The journal's backing buffer, read back on revive.
    journal_buf: SharedBuf,
    /// Accounted bytes while resident (zero when evicted).
    hot_bytes: usize,
    /// Warnings this session has raised, keyed like the fleet multiset.
    warnings: BTreeMap<(Severity, String), usize>,
    /// The session's live correlation digest. Deliberately *outside*
    /// the engine: it survives eviction untouched, so the digest stream
    /// is identical whatever the memory budget did to the session.
    digest: DigestBuilder,
    /// Logical LRU clock of the last touch.
    last_touch: u64,
    /// Wall-clock of the last touch, for the idle sweep.
    last_instant: Instant,
}

struct TableState {
    slots: BTreeMap<u64, SessionSlot>,
    /// Warnings of closed sessions, folded in at close time.
    retired: BTreeMap<(Severity, String), usize>,
    /// Digests of closed sessions, folded in at close time (merged if
    /// the session id is later reused).
    retired_digests: BTreeMap<u64, SessionDigest>,
    clock: u64,
    events_total: u64,
    warnings_total: u64,
    evictions: u64,
    restores: u64,
    fallback_replays: u64,
    resident_high_water: u64,
}

/// The daemon's session registry; every method is safe to call from
/// many worker threads at once.
pub struct SessionTable {
    inner: Mutex<TableState>,
    config: TableConfig,
    /// Always-on flight recorder (`None` only at `flight_capacity: 0`).
    flight: Option<FlightRecorder>,
    /// Retained diagnostic bundles, `/bundles/<n>`-indexable.
    bundles: Arc<BundleRing>,
    /// Server-side ack latency in microseconds (decode to ack written).
    ack_latency: Mutex<Histogram>,
}

impl SessionTable {
    /// An empty table.
    pub fn new(config: TableConfig) -> SessionTable {
        SessionTable {
            flight: (config.flight_capacity > 0)
                .then(|| FlightRecorder::new(config.flight_capacity)),
            bundles: Arc::new(BundleRing::default()),
            ack_latency: Mutex::new(Histogram::default()),
            inner: Mutex::new(TableState {
                slots: BTreeMap::new(),
                retired: BTreeMap::new(),
                retired_digests: BTreeMap::new(),
                clock: 0,
                events_total: 0,
                warnings_total: 0,
                evictions: 0,
                restores: 0,
                fallback_replays: 0,
                resident_high_water: 0,
            }),
            config,
        }
    }

    /// The table's configuration.
    pub fn config(&self) -> &TableConfig {
        &self.config
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TableState> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Creates the session if it does not exist, and touches it.
    pub fn open(&self, sid: u64) -> Result<(), ServeError> {
        let mut st = self.lock();
        self.ensure_slot(&mut st, sid)?;
        self.touch(&mut st, sid);
        self.enforce(&mut st)?;
        Ok(())
    }

    /// Feeds one event to the session (creating or reviving it as
    /// needed) and returns how many warnings the event raised.
    pub fn submit(&self, sid: u64, event: &SecpertEvent) -> Result<u64, ServeError> {
        let mut st = self.lock();
        self.ensure_slot(&mut st, sid)?;
        self.revive_if_needed(&mut st, sid)?;
        let slot = st.slots.get_mut(&sid).expect("slot ensured");
        let expert = slot.expert.as_mut().expect("slot revived");
        let warnings = expert.process_event(event).map_err(ServeError::Engine)?;
        slot.journal.append(event).map_err(ServeError::Wire)?;
        slot.hot_bytes = expert.approx_bytes();
        slot.digest.observe(event);
        let raised = warnings.len() as u64;
        for w in &warnings {
            *slot.warnings.entry((w.severity, w.rule.clone())).or_default() += 1;
            slot.digest.observe_warning(w);
        }
        st.events_total += 1;
        st.warnings_total += raised;
        if let Some(flight) = &self.flight {
            flight.record(sid, event.time(), "event", event.syscall(), event.resource_name());
            for w in warnings.iter().filter(|w| w.severity == Severity::High) {
                let provenance: Vec<String> = w
                    .provenance
                    .as_ref()
                    .map(|p| p.render_tree(w))
                    .unwrap_or_default()
                    .lines()
                    .map(str::to_string)
                    .collect();
                let stats = self.snapshot_locked(&st);
                self.bundles.push(flight.capture(
                    "serve.table",
                    Trigger::Warning {
                        rule: w.rule.clone(),
                        severity: w.severity.label().to_string(),
                    },
                    stats,
                    provenance,
                ));
            }
        }
        self.touch(&mut st, sid);
        self.enforce(&mut st)?;
        Ok(raised)
    }

    /// Retires the session: folds its warnings into the retired set and
    /// frees all its state. Returns the session's total warning count.
    pub fn close(&self, sid: u64) -> Result<u64, ServeError> {
        let mut st = self.lock();
        let slot = st
            .slots
            .remove(&sid)
            .ok_or_else(|| ServeError::Protocol(format!("close of unknown session {sid}")))?;
        let total: usize = slot.warnings.values().sum();
        for (key, n) in slot.warnings {
            *st.retired.entry(key).or_default() += n;
        }
        let digest = slot.digest.finish();
        match st.retired_digests.entry(sid) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(digest);
            }
            std::collections::btree_map::Entry::Occupied(mut e) => e.get_mut().merge(&digest),
        }
        Ok(total as u64)
    }

    /// Binds a program label to the session (creating it if needed);
    /// the label rides the digest stream into the correlator, whose
    /// `shared-c2` rule keys on label diversity.
    pub fn set_label(&self, sid: u64, label: &str) -> Result<(), ServeError> {
        let mut st = self.lock();
        self.ensure_slot(&mut st, sid)?;
        st.slots.get_mut(&sid).expect("slot ensured").digest.set_label(label);
        self.touch(&mut st, sid);
        self.enforce(&mut st)?;
        Ok(())
    }

    /// Point-in-time digests of every session the table has seen:
    /// closed sessions as retired, open ones as live snapshots (merged
    /// when a closed id was reopened), in session order.
    pub fn digests(&self) -> Vec<SessionDigest> {
        let st = self.lock();
        let mut digests = st.retired_digests.clone();
        for (sid, slot) in &st.slots {
            let snapshot = slot.digest.snapshot();
            match digests.entry(*sid) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(snapshot);
                }
                std::collections::btree_map::Entry::Occupied(mut e) => e.get_mut().merge(&snapshot),
            }
        }
        digests.into_values().collect()
    }

    /// The live digests as one wire stream ([`write_digest_stream`]) —
    /// what `hth explain` consumes for fleet-level causality.
    pub fn digest_stream(&self) -> Vec<u8> {
        write_digest_stream(&self.digests())
    }

    /// Runs the fleet correlator over the live digest stream. The
    /// digests go through the wire codec on purpose: the serve path
    /// proves the same bytes `hth fleet` ships between processes.
    ///
    /// # Errors
    ///
    /// Engine failures building or running the correlator policy, wire
    /// errors if the digest stream is malformed (it cannot be — it was
    /// just written — but the decode is checked anyway).
    pub fn correlate(&self, config: &CorrelateConfig) -> Result<CorrelationReport, ServeError> {
        let mut correlator = Correlator::new(config.clone());
        for digest in read_digest_stream(&self.digest_stream()).map_err(ServeError::Wire)? {
            correlator.ingest(digest);
        }
        correlator.correlate().map_err(ServeError::Engine)
    }

    /// Evicts resident sessions idle longer than the configured
    /// timeout; returns how many were evicted.
    pub fn sweep_idle(&self) -> Result<usize, ServeError> {
        let Some(timeout) = self.config.idle_timeout else { return Ok(0) };
        let mut st = self.lock();
        let now = Instant::now();
        let stale: Vec<u64> = st
            .slots
            .iter()
            .filter(|(_, s)| s.expert.is_some() && now.duration_since(s.last_instant) >= timeout)
            .map(|(sid, _)| *sid)
            .collect();
        let count = stale.len();
        for sid in stale {
            self.evict(&mut st, sid)?;
        }
        Ok(count)
    }

    /// Point-in-time counters. When the table was configured with a
    /// correlator, this runs a correlation pass over the live digests
    /// (the count is a *result*, not a cached counter — the fleet
    /// picture changes as sessions progress).
    pub fn stats(&self) -> ServeStats {
        let mut stats = {
            let st = self.lock();
            let resident = st.slots.values().filter(|s| s.expert.is_some()).count() as u64;
            ServeStats {
                sessions_resident: resident,
                sessions_open: st.slots.len() as u64,
                events_total: st.events_total,
                warnings_total: st.warnings_total,
                evictions: st.evictions,
                restores: st.restores,
                fallback_replays: st.fallback_replays,
                resident_bytes: st.slots.values().map(|s| s.hot_bytes as u64).sum(),
                correlator_warnings: 0,
            }
        };
        if let Some(config) = &self.config.correlate {
            if let Ok(report) = self.correlate(config) {
                stats.correlator_warnings = report.warnings.len() as u64;
            }
        }
        stats
    }

    /// Highest number of simultaneously resident sessions observed.
    pub fn resident_high_water(&self) -> u64 {
        self.lock().resident_high_water
    }

    /// The aggregate warning multiset: every open session plus every
    /// closed one, keyed exactly like [`hth_fleet::warning_multiset`].
    pub fn warning_counts(&self) -> BTreeMap<(Severity, String), usize> {
        let st = self.lock();
        let mut counts = st.retired.clone();
        for slot in st.slots.values() {
            for (key, n) in &slot.warnings {
                *counts.entry(key.clone()).or_default() += n;
            }
        }
        counts
    }

    /// Whether the session's engine is currently in memory (`None` for
    /// an unknown session).
    pub fn is_resident(&self, sid: u64) -> Option<bool> {
        self.lock().slots.get(&sid).map(|s| s.expert.is_some())
    }

    /// The stored eviction snapshot of an evicted session, if any (a
    /// torn write may have been planted by the fault plan; a resident
    /// session has none).
    pub fn evicted_snapshot(&self, sid: u64) -> Option<Vec<u8>> {
        self.lock().slots.get(&sid).and_then(|s| s.snapshot.clone())
    }

    /// Folds the table's gauges, counters, and resident engines' match
    /// statistics into a metrics snapshot (the `/metrics` endpoint and
    /// the drain summary both read this).
    pub fn record_metrics(&self, metrics: &mut MetricsSnapshot) {
        let stats = self.stats();
        metrics.set_gauge("hth_serve_sessions_resident", stats.sessions_resident as i64);
        metrics.set_gauge("hth_serve_sessions_open", stats.sessions_open as i64);
        metrics.set_gauge("hth_serve_resident_bytes", stats.resident_bytes as i64);
        metrics.set_gauge("hth_serve_budget_bytes", self.config.budget_bytes as i64);
        metrics.add_counter("hth_serve_events_total", stats.events_total);
        metrics.add_counter("hth_serve_warnings_total", stats.warnings_total);
        metrics.add_counter("hth_serve_evictions_total", stats.evictions);
        metrics.add_counter("hth_serve_restores_total", stats.restores);
        metrics.add_counter("hth_serve_fallback_replays_total", stats.fallback_replays);
        metrics.add_counter("hth_serve_correlator_warnings", stats.correlator_warnings);
        metrics
            .max_gauge("hth_serve_sessions_resident_high_water", self.resident_high_water() as i64);
        metrics.merge_histogram(
            "hth_serve_ack_latency",
            &self.ack_latency.lock().unwrap_or_else(PoisonError::into_inner),
        );
        let st = self.lock();
        for slot in st.slots.values() {
            if let Some(expert) = &slot.expert {
                expert.record_metrics(metrics);
            }
        }
    }

    /// Records one server-side ack latency observation: the time from a
    /// decoded request to its ack written, in microseconds (exported as
    /// the `hth_serve_ack_latency` histogram).
    pub fn observe_ack_micros(&self, micros: u64) {
        self.ack_latency.lock().unwrap_or_else(PoisonError::into_inner).observe(micros);
    }

    /// The table's flight recorder (`None` at `flight_capacity: 0`).
    pub fn flight_recorder(&self) -> Option<&FlightRecorder> {
        self.flight.as_ref()
    }

    /// The retained diagnostic bundles (`/bundles/<n>` indexes these).
    pub fn bundle_ring(&self) -> &Arc<BundleRing> {
        &self.bundles
    }

    /// Captures a protocol-drop bundle and logs the drop: a connection
    /// is about to be poisoned by a framing or decode error, which would
    /// otherwise be silent on the server side.
    pub fn capture_protocol_drop(&self, error: &str) {
        hth_trace::global_diag().log(
            DiagLevel::Warn,
            "serve.conn",
            &format!("dropping connection: {error}"),
        );
        let Some(flight) = &self.flight else { return };
        let stats = {
            let st = self.lock();
            self.snapshot_locked(&st)
        };
        self.bundles.push(flight.capture(
            "serve.conn",
            Trigger::ProtocolDrop { error: error.to_string() },
            stats,
            Vec::new(),
        ));
    }

    /// Builds the `/statusz` view: counters, per-session rows, ack
    /// latency quantiles, and the retained bundle index.
    pub fn status_report(&self, uptime_secs: u64) -> StatusReport {
        let stats = self.stats();
        let ack = self.ack_latency.lock().unwrap_or_else(PoisonError::into_inner).clone();
        let sessions: Vec<SessionRow> = {
            let st = self.lock();
            st.slots
                .iter()
                .map(|(sid, slot)| {
                    let digest = slot.digest.digest();
                    SessionRow {
                        sid: *sid,
                        label: digest.label.clone(),
                        resident: slot.expert.is_some(),
                        bytes: slot.hot_bytes as u64,
                        events: digest.events,
                        warnings: slot.warnings.values().sum::<usize>() as u64,
                    }
                })
                .collect()
        };
        StatusReport {
            uptime_secs,
            stats,
            budget_bytes: self.config.budget_bytes as u64,
            sessions,
            ack_p50_us: ack.quantile(0.50),
            ack_p99_us: ack.quantile(0.99),
            ack_count: ack.count(),
            bundles_total: self.bundles.total(),
            bundles: self.bundles.list().iter().map(|b| b.summary()).collect(),
        }
    }

    /// A metrics snapshot built from an already-held table lock (bundle
    /// captures run inside request handling; calling
    /// [`SessionTable::record_metrics`] there would self-deadlock on the
    /// table mutex).
    fn snapshot_locked(&self, st: &TableState) -> MetricsSnapshot {
        let mut stats = MetricsSnapshot::new();
        stats.add_counter("hth_serve_events_total", st.events_total);
        stats.add_counter("hth_serve_warnings_total", st.warnings_total);
        stats.add_counter("hth_serve_evictions_total", st.evictions);
        stats.add_counter("hth_serve_restores_total", st.restores);
        stats.add_counter("hth_serve_fallback_replays_total", st.fallback_replays);
        stats.set_gauge(
            "hth_serve_sessions_resident",
            st.slots.values().filter(|s| s.expert.is_some()).count() as i64,
        );
        stats.set_gauge("hth_serve_sessions_open", st.slots.len() as i64);
        stats.merge_histogram(
            "hth_serve_ack_latency",
            &self.ack_latency.lock().unwrap_or_else(PoisonError::into_inner),
        );
        for slot in st.slots.values() {
            if let Some(expert) = &slot.expert {
                expert.record_metrics(&mut stats);
            }
        }
        stats
    }

    fn ensure_slot(&self, st: &mut TableState, sid: u64) -> Result<(), ServeError> {
        if st.slots.contains_key(&sid) {
            return Ok(());
        }
        let expert = Secpert::new(&self.config.policy).map_err(ServeError::Engine)?;
        let journal_buf = SharedBuf::default();
        let journal = JournalWriter::new(journal_buf.clone()).map_err(ServeError::Wire)?;
        let hot_bytes = expert.approx_bytes();
        st.slots.insert(
            sid,
            SessionSlot {
                expert: Some(expert),
                snapshot: None,
                journal,
                journal_buf,
                hot_bytes,
                warnings: BTreeMap::new(),
                digest: DigestBuilder::new(sid, ""),
                last_touch: 0,
                last_instant: Instant::now(),
            },
        );
        let resident = st.slots.values().filter(|s| s.expert.is_some()).count() as u64;
        st.resident_high_water = st.resident_high_water.max(resident);
        Ok(())
    }

    fn touch(&self, st: &mut TableState, sid: u64) {
        st.clock += 1;
        let clock = st.clock;
        if let Some(slot) = st.slots.get_mut(&sid) {
            slot.last_touch = clock;
            slot.last_instant = Instant::now();
        }
    }

    /// Enforces `resident bytes <= budget` by evicting LRU sessions.
    fn enforce(&self, st: &mut TableState) -> Result<(), ServeError> {
        loop {
            let resident: u64 = st.slots.values().map(|s| s.hot_bytes as u64).sum();
            if resident <= self.config.budget_bytes as u64 {
                return Ok(());
            }
            let Some(lru) = st
                .slots
                .iter()
                .filter(|(_, s)| s.expert.is_some())
                .min_by_key(|(_, s)| s.last_touch)
                .map(|(sid, _)| *sid)
            else {
                return Ok(());
            };
            self.evict(st, lru)?;
        }
    }

    /// Snapshots and drops one resident engine. A snapshot failure (or
    /// a planted torn write) leaves damaged-or-missing snapshot bytes;
    /// the revive path falls back to a full journal replay.
    fn evict(&self, st: &mut TableState, sid: u64) -> Result<(), ServeError> {
        st.evictions += 1;
        let nth = st.evictions;
        let tear = self.config.faults.snapshot_tear(nth);
        let slot = st.slots.get_mut(&sid).expect("evicting a known session");
        let expert = slot.expert.take().expect("evicting a resident session");
        slot.snapshot = match expert.snapshot() {
            Ok(mut bytes) => {
                if let Some(keep) = tear {
                    bytes.truncate(keep.min(bytes.len()));
                }
                Some(bytes)
            }
            Err(_) => None,
        };
        slot.hot_bytes = 0;
        Ok(())
    }

    fn revive_if_needed(&self, st: &mut TableState, sid: u64) -> Result<(), ServeError> {
        let slot = st.slots.get_mut(&sid).expect("slot ensured");
        if slot.expert.is_some() {
            return Ok(());
        }
        let journal_bytes = slot.journal_buf.contents();
        let (events, _report) = recover(&journal_bytes);
        // Restore from the snapshot and replay only the tail past its
        // cursor; on any failure, fall back to a full replay from a
        // fresh engine. Replay warnings are discarded in both paths:
        // they were recorded when the events were first accepted.
        let mut restored = false;
        let mut expert = match slot
            .snapshot
            .as_deref()
            .and_then(|snap| Secpert::restore(&self.config.policy, snap).ok())
        {
            Some(expert) => {
                restored = true;
                expert
            }
            None => Secpert::new(&self.config.policy).map_err(ServeError::Engine)?,
        };
        let cursor = expert.events_processed() as usize;
        for event in events.iter().skip(cursor) {
            expert.process_event(event).map_err(ServeError::Engine)?;
        }
        slot.hot_bytes = expert.approx_bytes();
        slot.expert = Some(expert);
        slot.snapshot = None;
        if restored {
            st.restores += 1;
        } else {
            st.fallback_replays += 1;
            hth_trace::global_diag().log(
                DiagLevel::Warn,
                "serve.table",
                &format!(
                    "session {sid}: torn or missing snapshot, full replay of {} events",
                    events.len()
                ),
            );
            if let Some(flight) = &self.flight {
                let stats = self.snapshot_locked(st);
                self.bundles.push(flight.capture(
                    "serve.table",
                    Trigger::RestoreFallback { session: sid },
                    stats,
                    Vec::new(),
                ));
            }
        }
        let resident = st.slots.values().filter(|s| s.expert.is_some()).count() as u64;
        st.resident_high_water = st.resident_high_water.max(resident);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harrier::{Origin, ResourceType, SourceInfo};

    fn event(i: u64) -> SecpertEvent {
        SecpertEvent::ResourceAccess {
            pid: 9,
            syscall: "SYS_open",
            resource: SourceInfo::new(ResourceType::File, format!("/var/data/{i}")),
            origin: Origin::unknown(),
            time: i,
            frequency: 1,
            address: 0x4000,
            proc_count: None,
            proc_rate: None,
            mem_total: None,
            server: None,
        }
    }

    #[test]
    fn zero_budget_churns_every_request_without_changing_results() {
        let churn = SessionTable::new(TableConfig { budget_bytes: 0, ..TableConfig::default() });
        let calm = SessionTable::new(TableConfig::default());
        for i in 0..12 {
            let a = churn.submit(1, &event(i)).expect("churn submit");
            let b = calm.submit(1, &event(i)).expect("calm submit");
            assert_eq!(a, b, "event {i}");
            assert_eq!(churn.is_resident(1), Some(false), "budget 0 evicts after every request");
        }
        assert_eq!(churn.warning_counts(), calm.warning_counts());
        let stats = churn.stats();
        assert_eq!(stats.events_total, 12);
        assert!(stats.evictions >= 12);
        assert!(stats.restores + stats.fallback_replays >= 11, "revived on every later submit");
        assert_eq!(stats.resident_bytes, 0);
    }

    #[test]
    fn close_folds_warnings_into_the_retired_multiset() {
        let table = SessionTable::new(TableConfig::default());
        table.submit(5, &event(0)).expect("submit");
        let before = table.warning_counts();
        table.close(5).expect("close");
        assert_eq!(table.warning_counts(), before, "closing loses no warnings");
        assert!(table.close(5).is_err(), "double close is an error");
        assert_eq!(table.stats().sessions_open, 0);
    }

    #[test]
    fn torn_snapshot_falls_back_to_full_replay() {
        let faults = Arc::new(FaultPlan::new().torn_snapshot(1, 7));
        let table =
            SessionTable::new(TableConfig { budget_bytes: 0, faults, ..TableConfig::default() });
        let reference = SessionTable::new(TableConfig::default());
        for i in 0..6 {
            let a = table.submit(2, &event(i)).expect("torn-path submit");
            let b = reference.submit(2, &event(i)).expect("reference submit");
            assert_eq!(a, b, "event {i}");
        }
        let stats = table.stats();
        assert!(stats.fallback_replays >= 1, "torn first snapshot forces a full replay");
        assert_eq!(table.warning_counts(), reference.warning_counts());
    }
}
