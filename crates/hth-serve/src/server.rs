//! The daemon itself: accept loop, worker pool, protocol sniffing,
//! live `/metrics`, graceful drain.
//!
//! One TCP port serves two protocols, told apart by the first bytes of
//! a connection: the fleet wire magic (`HTHW`) opens a serve-protocol
//! session, `GET ` is an HTTP scrape answered with the Prometheus text
//! exposition of the live [`SessionTable`] (the same snapshot is also
//! swapped into [`hth_trace::global_metrics`], so an in-process
//! `--metrics` reader sees exactly what the endpoint exports).
//!
//! Shutdown is graceful: a `Shutdown` request (or [`ServerHandle::
//! shutdown`]) stops the accept loop, queued connections finish their
//! requests, workers join, and [`Server::run`] returns a
//! [`ServeSummary`] carrying the final counters and the aggregate
//! warning multiset — the same shape `hth fleet` reports in batch mode.

use std::collections::{BTreeMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use hth_core::Severity;
use hth_fleet::wire;
use hth_trace::MetricsSnapshot;

use crate::protocol::{
    decode_request, encode_ack, read_frame, write_all, Ack, Request, ServeStats,
};
use crate::table::{SessionTable, TableConfig};
use crate::ServeError;

/// Configuration for [`Server::bind`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Address to bind (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Worker threads handling connections.
    pub workers: usize,
    /// Session table tuning.
    pub table: TableConfig,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig { addr: "127.0.0.1:0".into(), workers: 4, table: TableConfig::default() }
    }
}

/// What a drained server reports.
#[derive(Clone, Debug)]
pub struct ServeSummary {
    /// Final counters.
    pub stats: ServeStats,
    /// Aggregate warning multiset (open + retired sessions), keyed like
    /// [`hth_fleet::warning_multiset`].
    pub warning_counts: BTreeMap<(Severity, String), usize>,
    /// Protocol connections handled.
    pub connections: u64,
    /// HTTP scrapes answered.
    pub http_requests: u64,
    /// Highest number of simultaneously resident sessions.
    pub resident_high_water: u64,
    /// Final correlation pass over every session's digest (open and
    /// retired), when the table was configured with a correlator.
    pub correlation: Option<hth_core::CorrelationReport>,
}

/// A handle for stopping a running server from another thread.
#[derive(Clone)]
pub struct ServerHandle {
    shutdown: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// Requests a graceful drain; returns immediately.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // The accept loop blocks in accept(); a throwaway connection
        // wakes it so it can observe the flag.
        let _ = TcpStream::connect(self.addr);
    }
}

/// A bound, not-yet-running daemon.
pub struct Server {
    listener: TcpListener,
    table: Arc<SessionTable>,
    shutdown: Arc<AtomicBool>,
    workers: usize,
}

struct Shared {
    table: Arc<SessionTable>,
    shutdown: Arc<AtomicBool>,
    addr: SocketAddr,
    queue: Mutex<VecDeque<Option<TcpStream>>>,
    available: Condvar,
    connections: AtomicU64,
    http_requests: AtomicU64,
    started: Instant,
}

impl Server {
    /// Binds the listening socket; the accept loop starts in
    /// [`Server::run`].
    pub fn bind(config: ServeConfig) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(&config.addr).map_err(ServeError::Io)?;
        Ok(Server {
            listener,
            table: Arc::new(SessionTable::new(config.table)),
            shutdown: Arc::new(AtomicBool::new(false)),
            workers: config.workers.max(1),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener has an address")
    }

    /// The live session table (tests and in-process embedders).
    pub fn table(&self) -> Arc<SessionTable> {
        Arc::clone(&self.table)
    }

    /// A handle that can stop the server from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { shutdown: Arc::clone(&self.shutdown), addr: self.local_addr() }
    }

    /// Runs the accept loop until a shutdown is requested, then drains:
    /// queued connections finish, workers join, and the final summary is
    /// returned.
    pub fn run(self) -> Result<ServeSummary, ServeError> {
        let addr = self.local_addr();
        let shared = Arc::new(Shared {
            table: Arc::clone(&self.table),
            shutdown: Arc::clone(&self.shutdown),
            addr,
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            connections: AtomicU64::new(0),
            http_requests: AtomicU64::new(0),
            started: Instant::now(),
        });
        let mut handles = Vec::with_capacity(self.workers);
        for i in 0..self.workers {
            let shared = Arc::clone(&shared);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("hth-serve-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .map_err(ServeError::Io)?,
            );
        }
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let (stream, _) = match self.listener.accept() {
                Ok(pair) => pair,
                Err(_) => continue,
            };
            if self.shutdown.load(Ordering::SeqCst) {
                // The wake-up connection (or a late client); drop it.
                break;
            }
            // Opportunistic idle sweep at connection granularity.
            let _ = self.table.sweep_idle();
            let mut queue = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            queue.push_back(Some(stream));
            drop(queue);
            shared.available.notify_one();
        }
        {
            let mut queue = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            for _ in 0..self.workers {
                queue.push_back(None);
            }
        }
        shared.available.notify_all();
        for handle in handles {
            let _ = handle.join();
        }
        let correlation = match self.table.config().correlate.clone() {
            Some(config) => Some(self.table.correlate(&config)?),
            None => None,
        };
        Ok(ServeSummary {
            stats: self.table.stats(),
            warning_counts: self.table.warning_counts(),
            connections: shared.connections.load(Ordering::SeqCst),
            http_requests: shared.http_requests.load(Ordering::SeqCst),
            resident_high_water: self.table.resident_high_water(),
            correlation,
        })
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                queue = shared.available.wait(queue).unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some(stream) = job else { return };
        // A connection error poisons only that connection.
        let _ = handle_connection(stream, shared);
    }
}

/// Sniffs the protocol and dispatches. The first bytes of a connection
/// are either the fleet wire magic or an HTTP method.
fn handle_connection(mut stream: TcpStream, shared: &Shared) -> Result<(), ServeError> {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let mut sniff = [0u8; 4];
    match stream.read_exact(&mut sniff) {
        Ok(()) => {}
        // Closed before identifying itself (e.g. the shutdown wake-up).
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(()),
        Err(e) => return Err(ServeError::Io(e)),
    }
    if &sniff == b"GET " {
        shared.http_requests.fetch_add(1, Ordering::SeqCst);
        return handle_http(stream, &sniff, shared);
    }
    shared.connections.fetch_add(1, Ordering::SeqCst);
    handle_protocol(stream, sniff, shared)
}

fn handle_protocol(
    mut stream: TcpStream,
    sniffed: [u8; 4],
    shared: &Shared,
) -> Result<(), ServeError> {
    let mut header = [0u8; wire::HEADER_LEN];
    header[..4].copy_from_slice(&sniffed);
    stream.read_exact(&mut header[4..]).map_err(ServeError::Io)?;
    let version = wire::read_header_any(&header).map_err(ServeError::Wire)?;
    // The preamble names the *event-codec* version the client will
    // speak; older clients keep working, but journal or digest stream
    // headers are not a protocol opening.
    if version > wire::VERSION {
        return Err(ServeError::Wire(hth_fleet::WireError::BadVersion(version)));
    }
    let mut decoder = wire::EventDecoder::for_version(version);
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(Some(payload)) => payload,
            Ok(None) => return Ok(()),
            Err(e) => {
                // A torn frame or CRC mismatch poisons the connection
                // silently from the client's view; leave the evidence.
                shared.table.capture_protocol_drop(&e.to_string());
                return Err(e);
            }
        };
        let served_at = Instant::now();
        let request = match decode_request(&payload, &mut decoder) {
            Ok(request) => request,
            Err(e) => {
                // A well-framed but undecodable request gets a reply;
                // the connection then closes (its decoder state may be
                // out of sync with the encoder's).
                let ack = Ack::Err { message: format!("bad request: {e}") };
                let _ = write_all(&mut stream, &encode_ack(&ack));
                shared.table.capture_protocol_drop(&e.to_string());
                return Err(e);
            }
        };
        let ack = match request {
            Request::Open { session } => ack_of(shared.table.open(session).map(|()| 0)),
            Request::Submit { session, event } => ack_of(shared.table.submit(session, &event)),
            Request::Flush => {
                let swept = shared.table.sweep_idle();
                ack_of(swept.map(|n| n as u64))
            }
            Request::Close { session } => ack_of(shared.table.close(session)),
            Request::Label { session, label } => {
                ack_of(shared.table.set_label(session, &label).map(|()| 0))
            }
            Request::Stats => Ack::Stats(shared.table.stats()),
            Request::Shutdown => {
                write_all(&mut stream, &encode_ack(&Ack::Ok { value: 0 }))?;
                shared.shutdown.store(true, Ordering::SeqCst);
                let _ = TcpStream::connect(shared.addr);
                return Ok(());
            }
        };
        write_all(&mut stream, &encode_ack(&ack))?;
        // Server-side ack latency: decoded request to ack on the wire.
        shared.table.observe_ack_micros(served_at.elapsed().as_micros() as u64);
    }
}

fn ack_of(result: Result<u64, ServeError>) -> Ack {
    match result {
        Ok(value) => Ack::Ok { value },
        Err(e) => Ack::Err { message: e.to_string() },
    }
}

/// Answers one HTTP request and closes. `sniffed` is the
/// already-consumed method prefix. Routes: `/metrics` (Prometheus
/// text), `/healthz` (liveness), `/statusz` (the introspection report),
/// `/bundles` (diagnostic-bundle index), `/bundles/<n>` (one bundle as
/// JSON).
fn handle_http(mut stream: TcpStream, sniffed: &[u8], shared: &Shared) -> Result<(), ServeError> {
    let table = &shared.table;
    // Read up to the end of the request headers; we only need the
    // request line, and scrapers send small requests.
    let mut buf = Vec::with_capacity(512);
    buf.extend_from_slice(sniffed);
    let mut chunk = [0u8; 256];
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") {
        let n = stream.read(&mut chunk).map_err(ServeError::Io)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.len() > 8192 {
            break;
        }
    }
    let request_line = buf.split(|&b| b == b'\r').next().unwrap_or(&[]);
    let request_line = String::from_utf8_lossy(request_line);
    let path = request_line.split_whitespace().nth(1).unwrap_or("/");
    let (status, body) = match path {
        "/metrics" | "/" => ("200 OK", {
            let mut snapshot = MetricsSnapshot::default();
            table.record_metrics(&mut snapshot);
            // Swap (never merge: counters here are re-derived
            // totals) into the process-global registry so an
            // in-process --metrics reader agrees with the scrape.
            hth_trace::global_metrics().replace(snapshot.clone());
            snapshot.render_prometheus()
        }),
        "/healthz" => ("200 OK", String::from("ok\n")),
        "/statusz" => ("200 OK", table.status_report(shared.started.elapsed().as_secs()).render()),
        "/bundles" => ("200 OK", {
            let lines: Vec<String> =
                table.bundle_ring().list().iter().map(|b| b.summary()).collect();
            if lines.is_empty() {
                String::from("no bundles captured\n")
            } else {
                lines.join("\n") + "\n"
            }
        }),
        _ => match path
            .strip_prefix("/bundles/")
            .and_then(|n| n.parse::<u64>().ok())
            .and_then(|id| table.bundle_ring().get(id))
        {
            Some(bundle) => ("200 OK", bundle.to_json() + "\n"),
            None => ("404 Not Found", String::from("not found\n")),
        },
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes()).map_err(ServeError::Io)
}
