//! The `/statusz` introspection report: a point-in-time, human-first
//! view of the whole daemon — counters, the per-session table, ack
//! latency quantiles, and the retained diagnostic-bundle index.
//!
//! [`StatusReport`] is a plain value deliberately decoupled from the
//! live [`crate::table::SessionTable`]: the table builds one with
//! [`crate::table::SessionTable::status_report`], the HTTP handler
//! renders it, and `hth top` re-fetches and re-renders it in a loop.
//! Being a value makes the rendering pinnable by a golden test without
//! standing up a server.

use std::fmt::Write as _;

use crate::protocol::ServeStats;

/// One row of the per-session table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SessionRow {
    /// Session id.
    pub sid: u64,
    /// Program label bound via the `Label` request (empty if none).
    pub label: String,
    /// Whether the engine is resident (in memory) or evicted.
    pub resident: bool,
    /// Accounted resident engine bytes (zero when evicted).
    pub bytes: u64,
    /// Events this session has accepted.
    pub events: u64,
    /// Warnings this session has raised.
    pub warnings: u64,
}

/// Everything `/statusz` shows, as a value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StatusReport {
    /// Seconds since the server started.
    pub uptime_secs: u64,
    /// The table's point-in-time counters.
    pub stats: ServeStats,
    /// Configured resident-byte budget.
    pub budget_bytes: u64,
    /// Per-session rows, in session-id order.
    pub sessions: Vec<SessionRow>,
    /// Server-side ack latency, 50th percentile (microseconds).
    pub ack_p50_us: u64,
    /// Server-side ack latency, 99th percentile (microseconds).
    pub ack_p99_us: u64,
    /// Acks observed by the latency histogram.
    pub ack_count: u64,
    /// Diagnostic bundles ever captured (retained or evicted).
    pub bundles_total: u64,
    /// Index lines ([`hth_trace::DiagnosticBundle::summary`]) of the
    /// retained bundles, oldest first.
    pub bundles: Vec<String>,
}

impl StatusReport {
    /// The text form `/statusz` serves and `hth top` displays.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "hth-serve status  (uptime {}s)", self.uptime_secs);
        let _ = writeln!(
            out,
            "sessions  {} open, {} resident, {} / {} bytes",
            self.stats.sessions_open,
            self.stats.sessions_resident,
            self.stats.resident_bytes,
            self.budget_bytes
        );
        let _ = writeln!(
            out,
            "totals    {} events, {} warnings, {} correlator warnings",
            self.stats.events_total, self.stats.warnings_total, self.stats.correlator_warnings
        );
        let _ = writeln!(
            out,
            "lifecycle {} evictions, {} restores, {} fallback replays",
            self.stats.evictions, self.stats.restores, self.stats.fallback_replays
        );
        let _ = writeln!(
            out,
            "ack       p50 {}us  p99 {}us  ({} acks)",
            self.ack_p50_us, self.ack_p99_us, self.ack_count
        );
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "{:>8}  {:<8}  {:<16}  {:>10}  {:>8}  {:>8}",
            "sid", "state", "label", "bytes", "events", "warnings"
        );
        for row in &self.sessions {
            let _ = writeln!(
                out,
                "{:>8}  {:<8}  {:<16}  {:>10}  {:>8}  {:>8}",
                row.sid,
                if row.resident { "resident" } else { "evicted" },
                if row.label.is_empty() { "-" } else { &row.label },
                row.bytes,
                row.events,
                row.warnings
            );
        }
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "bundles   {} retained / {} captured",
            self.bundles.len(),
            self.bundles_total
        );
        for line in &self.bundles {
            let _ = writeln!(out, "  {line}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_shows_every_section() {
        let report = StatusReport {
            uptime_secs: 42,
            stats: ServeStats {
                sessions_resident: 1,
                sessions_open: 2,
                events_total: 30,
                warnings_total: 3,
                evictions: 4,
                restores: 2,
                fallback_replays: 1,
                resident_bytes: 1024,
                correlator_warnings: 1,
            },
            budget_bytes: 4096,
            sessions: vec![
                SessionRow {
                    sid: 1,
                    label: "pwsafe".into(),
                    resident: true,
                    bytes: 1024,
                    events: 20,
                    warnings: 3,
                },
                SessionRow {
                    sid: 2,
                    label: String::new(),
                    resident: false,
                    bytes: 0,
                    events: 10,
                    warnings: 0,
                },
            ],
            ack_p50_us: 127,
            ack_p99_us: 1023,
            ack_count: 30,
            bundles_total: 5,
            bundles: vec![
                "#4 restore_fallback (serve.table): session 2: torn snapshot, full replay".into(),
            ],
        };
        let text = report.render();
        assert!(text.contains("uptime 42s"), "{text}");
        assert!(text.contains("2 open, 1 resident, 1024 / 4096 bytes"), "{text}");
        assert!(text.contains("p50 127us  p99 1023us"), "{text}");
        assert!(text.contains("pwsafe"), "{text}");
        assert!(text.contains("evicted"), "{text}");
        assert!(text.contains("1 retained / 5 captured"), "{text}");
        assert!(text.contains("#4 restore_fallback"), "{text}");
    }
}
