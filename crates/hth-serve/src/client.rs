//! The protocol client: what `hth load` and the chaos suite speak.
//!
//! A [`Client`] owns one TCP connection. It writes the wire header on
//! connect, then frames requests and blocks for the matching ack
//! (requests on one connection are strictly sequential, which is what
//! keeps the per-connection interning state of the event codec in
//! sync). The client consults a [`FaultPlan`] before every request: a
//! planted [`ConnectionFault::Disconnect`] sends only a prefix of the
//! frame and closes the socket — the server must drop the torn frame,
//! so at most the unacked requests of that connection are lost — and a
//! [`ConnectionFault::Stall`] holds the frame mid-write to exercise the
//! server's blocking read path.

use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

use harrier::SecpertEvent;
use hth_fleet::wire::{self, EventEncoder};
use hth_fleet::{ConnectionFault, FaultPlan};

use crate::protocol::{decode_ack, encode_request, read_frame, Ack, Request, ServeStats};
use crate::ServeError;

/// A serve-protocol connection.
pub struct Client {
    stream: TcpStream,
    encoder: EventEncoder,
    faults: Arc<FaultPlan>,
    /// Requests sent per session id, for fault-plan coordinates.
    sent: std::collections::BTreeMap<u64, u64>,
}

impl Client {
    /// Connects and writes the protocol preamble.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ServeError> {
        Client::connect_with_faults(addr, Arc::new(FaultPlan::new()))
    }

    /// Connects with a fault plan consulted before every request.
    pub fn connect_with_faults(
        addr: impl ToSocketAddrs,
        faults: Arc<FaultPlan>,
    ) -> Result<Client, ServeError> {
        let mut stream = TcpStream::connect(addr).map_err(ServeError::Io)?;
        let _ = stream.set_nodelay(true);
        let mut header = Vec::with_capacity(wire::HEADER_LEN);
        wire::write_header(&mut header);
        stream.write_all(&header).map_err(ServeError::Io)?;
        Ok(Client {
            stream,
            encoder: EventEncoder::new(),
            faults,
            sent: std::collections::BTreeMap::new(),
        })
    }

    /// Opens (or touches) a session.
    pub fn open(&mut self, session: u64) -> Result<(), ServeError> {
        self.roundtrip(session, &Request::Open { session }).map(|_| ())
    }

    /// Submits one event; returns how many warnings it raised.
    pub fn submit(&mut self, session: u64, event: &SecpertEvent) -> Result<u64, ServeError> {
        self.roundtrip(session, &Request::Submit { session, event: event.clone() })
    }

    /// Barrier: returns once everything sent before it is applied.
    pub fn flush(&mut self) -> Result<(), ServeError> {
        self.roundtrip(0, &Request::Flush).map(|_| ())
    }

    /// Binds a program label to a session (it rides the digest stream
    /// into the fleet correlator).
    pub fn label(&mut self, session: u64, label: &str) -> Result<(), ServeError> {
        self.roundtrip(session, &Request::Label { session, label: label.to_string() }).map(|_| ())
    }

    /// Retires a session; returns its total warning count.
    pub fn close(&mut self, session: u64) -> Result<u64, ServeError> {
        self.roundtrip(session, &Request::Close { session })
    }

    /// Fetches the server's counters.
    pub fn stats(&mut self) -> Result<ServeStats, ServeError> {
        let framed = encode_request(&Request::Stats, &mut self.encoder);
        self.stream.write_all(&framed).map_err(ServeError::Io)?;
        match self.read_ack()? {
            Ack::Stats(stats) => Ok(stats),
            Ack::Err { message } => Err(ServeError::Protocol(message)),
            Ack::Ok { .. } => Err(ServeError::Protocol("expected a stats ack".into())),
        }
    }

    /// Asks the server to drain and stop.
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        self.roundtrip(0, &Request::Shutdown).map(|_| ())
    }

    fn roundtrip(&mut self, session: u64, request: &Request) -> Result<u64, ServeError> {
        let framed = encode_request(request, &mut self.encoder);
        let nth = self.sent.entry(session).or_insert(0);
        *nth += 1;
        match self.faults.connection_fault(session, *nth) {
            Some(ConnectionFault::Disconnect { keep }) => {
                let keep = keep.min(framed.len());
                self.stream.write_all(&framed[..keep]).map_err(ServeError::Io)?;
                let _ = self.stream.shutdown(std::net::Shutdown::Both);
                return Err(ServeError::Disconnected);
            }
            Some(ConnectionFault::Stall { millis }) => {
                let split = framed.len() / 2;
                self.stream.write_all(&framed[..split]).map_err(ServeError::Io)?;
                std::thread::sleep(Duration::from_millis(millis));
                self.stream.write_all(&framed[split..]).map_err(ServeError::Io)?;
            }
            None => self.stream.write_all(&framed).map_err(ServeError::Io)?,
        }
        match self.read_ack()? {
            Ack::Ok { value } => Ok(value),
            Ack::Err { message } => Err(ServeError::Protocol(message)),
            Ack::Stats(_) => Err(ServeError::Protocol("unexpected stats ack".into())),
        }
    }

    fn read_ack(&mut self) -> Result<Ack, ServeError> {
        let payload = read_frame(&mut self.stream)?.ok_or(ServeError::Disconnected)?;
        decode_ack(&payload)
    }
}

/// What one loadgen run measured.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Sessions driven.
    pub sessions: u64,
    /// Events submitted and acked.
    pub events: u64,
    /// Warnings the server reported across all acks.
    pub warnings: u64,
    /// Wall-clock of the run.
    pub elapsed: Duration,
    /// Per-submit ack latency, in microseconds.
    pub ack_latency_us: hth_trace::Histogram,
    /// Server stats sampled right after the last ack.
    pub server: ServeStats,
}

impl LoadReport {
    /// Events per second over the run.
    pub fn events_per_sec(&self) -> f64 {
        if self.elapsed.as_secs_f64() > 0.0 {
            self.events as f64 / self.elapsed.as_secs_f64()
        } else {
            0.0
        }
    }
}

/// Drives `sessions × events_per_session` synthetic submissions over
/// loopback, round-robin across sessions on one connection, measuring
/// per-ack latency. This is the `hth load` engine and the serve bench.
pub fn run_load(
    addr: impl ToSocketAddrs,
    sessions: u64,
    events_per_session: u64,
) -> Result<LoadReport, ServeError> {
    let mut client = Client::connect(addr)?;
    let mut latency = hth_trace::Histogram::default();
    let streams: Vec<Vec<SecpertEvent>> =
        (0..sessions).map(|s| crate::synthetic_events(s, events_per_session as usize)).collect();
    for sid in 0..sessions {
        client.open(sid)?;
    }
    let start = std::time::Instant::now();
    let mut events = 0u64;
    let mut warnings = 0u64;
    for i in 0..events_per_session as usize {
        for (sid, stream) in streams.iter().enumerate() {
            let sent = std::time::Instant::now();
            warnings += client.submit(sid as u64, &stream[i])?;
            latency.observe(sent.elapsed().as_micros() as u64);
            events += 1;
        }
    }
    let elapsed = start.elapsed();
    let server = client.stats()?;
    for sid in 0..sessions {
        client.close(sid)?;
    }
    Ok(LoadReport { sessions, events, warnings, elapsed, ack_latency_us: latency, server })
}
