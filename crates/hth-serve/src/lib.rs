//! # hth-serve — the long-running HTH fleet daemon
//!
//! Batch mode (`hth fleet`) analyses a corpus and exits; this crate is
//! the resident form of the same pipeline: a TCP daemon that monitors
//! many programs *concurrently and indefinitely*, under a fixed memory
//! budget, without ever changing an analysis result.
//!
//! Three layers, bottom up:
//!
//! * [`table`] — the session registry: engines created on first event,
//!   evicted (snapshot + drop) under an LRU policy when resident bytes
//!   exceed the budget or a session goes idle, revived from snapshot +
//!   journal tail on the next event. Determinism of the engine snapshot
//!   (`secpert_engine::EngineSnapshot`) makes eviction invisible: the
//!   warning stream is byte-identical to an uninterrupted run.
//! * [`protocol`] — CRC-framed requests/acks over the fleet wire event
//!   codec; one port also answers HTTP scrapes: `/metrics` (Prometheus
//!   text), `/healthz`, `/statusz` ([`status::StatusReport`], what
//!   `hth top` renders), and `/bundles[/<n>]` (diagnostic bundles from
//!   the table's always-on flight recorder).
//! * [`server`] / [`client`] — the accept-loop daemon with a bounded
//!   worker pool and graceful drain, and the client the `hth load`
//!   generator and the chaos suite use to talk to it.

#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;
pub mod status;
pub mod table;

use std::fmt;

use harrier::{Origin, ResourceType, SecpertEvent, SourceInfo};

pub use client::{run_load, Client, LoadReport};
pub use protocol::{Ack, Request, ServeStats};
pub use server::{ServeConfig, ServeSummary, Server, ServerHandle};
pub use status::{SessionRow, StatusReport};
pub use table::{SessionTable, TableConfig};

/// Anything that can go wrong between a client and the session table.
#[derive(Debug)]
pub enum ServeError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// Frame or event codec failure (torn frame, CRC mismatch, ...).
    Wire(hth_fleet::WireError),
    /// The policy engine rejected an event.
    Engine(secpert_engine::EngineError),
    /// A protocol-level violation (bad tag, oversized frame, unknown
    /// session, or a server-reported error).
    Protocol(String),
    /// The peer went away mid-conversation (including a fault-planted
    /// mid-frame disconnect).
    Disconnected,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o: {e}"),
            ServeError::Wire(e) => write!(f, "wire: {e}"),
            ServeError::Engine(e) => write!(f, "engine: {e}"),
            ServeError::Protocol(msg) => write!(f, "protocol: {msg}"),
            ServeError::Disconnected => write!(f, "peer disconnected"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> ServeError {
        ServeError::Io(e)
    }
}

impl From<hth_fleet::WireError> for ServeError {
    fn from(e: hth_fleet::WireError) -> ServeError {
        ServeError::Wire(e)
    }
}

/// A deterministic synthetic event stream for session `session`: a mix
/// of file opens, reads, and writes with session-salted paths, shaped
/// like what Harrier emits for an ordinary (non-Trojan) program. Two
/// calls with the same arguments produce identical streams, which is
/// what the loadgen, the bench, and the soak tests all rely on.
pub fn synthetic_events(session: u64, count: usize) -> Vec<SecpertEvent> {
    // SplitMix64 finalizer, same constants as the fleet fault plan.
    fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    let pid = 100 + (session as u32 % 900);
    (0..count as u64)
        .map(|i| {
            let h = mix(session.wrapping_mul(0x1000) ^ i);
            let (syscall, name) = match h % 4 {
                0 => ("SYS_open", format!("/srv/s{session}/data{}.bin", h % 13)),
                1 => ("SYS_read", format!("/srv/s{session}/data{}.bin", h % 13)),
                2 => ("SYS_write", format!("/srv/s{session}/out{}.log", h % 7)),
                _ => ("SYS_close", format!("/srv/s{session}/data{}.bin", h % 13)),
            };
            SecpertEvent::ResourceAccess {
                pid,
                syscall,
                resource: SourceInfo::new(ResourceType::File, name),
                origin: Origin::unknown(),
                time: i + 1,
                frequency: 1 + h % 3,
                address: 0x1000 + (h as u32 & 0xfff),
                proc_count: None,
                proc_rate: None,
                mem_total: None,
                server: None,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_streams_are_deterministic_and_session_salted() {
        let a = synthetic_events(3, 50);
        let b = synthetic_events(3, 50);
        let c = synthetic_events(4, 50);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 50);
    }
}
