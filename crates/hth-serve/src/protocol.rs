//! The serve wire protocol: CRC-framed requests and acks over TCP.
//!
//! A connection opens with the fleet wire header (`HTHW` + version, the
//! same preamble a journal or recorded event stream starts with), which
//! is also how the server tells a protocol client from an HTTP scrape:
//! the first bytes are either [`hth_fleet::wire::MAGIC`] or `GET `.
//!
//! After the preamble, both directions speak length-prefixed frames with
//! the journal's integrity envelope:
//!
//! ```text
//! [varint payload_len] [crc32(payload) LE u32] [payload]
//! ```
//!
//! The first payload byte is a tag. Requests:
//!
//! | tag | request  | payload after the tag                       |
//! |-----|----------|---------------------------------------------|
//! | 1   | Open     | varint session id                           |
//! | 2   | Submit   | varint session id, encoded [`SecpertEvent`]  |
//! | 3   | Flush    | —                                           |
//! | 4   | Close    | varint session id                           |
//! | 5   | Stats    | —                                           |
//! | 6   | Shutdown | —                                           |
//! | 7   | Label    | varint session id, varint length, UTF-8 label |
//!
//! Acks:
//!
//! | tag  | ack   | payload after the tag                          |
//! |------|-------|------------------------------------------------|
//! | 0x80 | Ok    | varint value (warnings raised, for Submit)     |
//! | 0x81 | Err   | varint length, UTF-8 message                   |
//! | 0x82 | Stats | the [`ServeStats`] counters as varints         |
//!
//! Events inside Submit frames use the versioned fleet event codec with
//! *per-connection* interning state ([`EventEncoder`]/[`EventDecoder`]),
//! so a long-lived connection amortises string costs exactly like a
//! journal does. Frames are hard-capped at [`MAX_FRAME_LEN`]; a frame
//! that fails its CRC or arrives truncated poisons only the connection
//! that sent it, never the sessions it was feeding.

use std::io::{Read, Write};

use harrier::SecpertEvent;
use hth_fleet::wire::{self, EventDecoder, EventEncoder, WireError, MAX_FRAME_LEN};

use crate::ServeError;

/// A request frame, decoded.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Create (or touch) a session.
    Open {
        /// Session id.
        session: u64,
    },
    /// Feed one event to a session.
    Submit {
        /// Session id.
        session: u64,
        /// The event.
        event: SecpertEvent,
    },
    /// Barrier: ack only once everything before it is applied.
    Flush,
    /// Retire a session, folding its warnings into the retired set.
    Close {
        /// Session id.
        session: u64,
    },
    /// Ask for the server's counters.
    Stats,
    /// Begin a graceful drain: stop accepting, finish queued work.
    Shutdown,
    /// Bind a program label to a session (shown in fleet digests and
    /// consumed by the correlator's label-diversity rules).
    Label {
        /// Session id.
        session: u64,
        /// The label (last writer wins).
        label: String,
    },
}

/// An ack frame, decoded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Ack {
    /// Success; `value` is request-specific (warnings raised for Submit,
    /// total session warnings for Close, zero otherwise).
    Ok {
        /// Request-specific payload.
        value: u64,
    },
    /// The request failed; the session table is unchanged.
    Err {
        /// Human-readable reason.
        message: String,
    },
    /// Counters in response to [`Request::Stats`].
    Stats(ServeStats),
}

/// Point-in-time server counters, small enough to travel in one frame.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Sessions currently resident (engine in memory).
    pub sessions_resident: u64,
    /// Sessions known (resident + evicted-but-open).
    pub sessions_open: u64,
    /// Events accepted over all sessions.
    pub events_total: u64,
    /// Warnings raised over all sessions.
    pub warnings_total: u64,
    /// Evictions performed (snapshot written, engine dropped).
    pub evictions: u64,
    /// Resumes served from a snapshot + journal tail.
    pub restores: u64,
    /// Resumes that fell back to a full journal replay (torn or
    /// unreadable snapshot).
    pub fallback_replays: u64,
    /// Bytes of resident engine state, as accounted.
    pub resident_bytes: u64,
    /// Fleet-level warnings from the correlator's latest pass over the
    /// live digests (zero when the table was built without a
    /// correlator configuration).
    pub correlator_warnings: u64,
}

const TAG_OPEN: u8 = 1;
const TAG_SUBMIT: u8 = 2;
const TAG_FLUSH: u8 = 3;
const TAG_CLOSE: u8 = 4;
const TAG_STATS: u8 = 5;
const TAG_SHUTDOWN: u8 = 6;
const TAG_LABEL: u8 = 7;
const TAG_OK: u8 = 0x80;
const TAG_ERR: u8 = 0x81;
const TAG_STATS_ACK: u8 = 0x82;

/// Wraps `payload` in the journal frame envelope.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 9);
    wire::put_varint(&mut out, payload.len() as u64);
    out.extend_from_slice(&wire::crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Reads one frame payload from `stream`. Returns `Ok(None)` on a clean
/// EOF at a frame boundary; mid-frame EOF, an oversized length or a CRC
/// mismatch are errors (the caller drops the connection, losing only
/// whatever was unacked on it).
pub fn read_frame(stream: &mut impl Read) -> Result<Option<Vec<u8>>, ServeError> {
    // Varint length, byte at a time (we cannot over-read a stream).
    let mut len: u64 = 0;
    let mut shift = 0u32;
    let mut first = true;
    loop {
        let mut byte = [0u8; 1];
        match stream.read(&mut byte) {
            Ok(0) if first => return Ok(None),
            Ok(0) => return Err(ServeError::Wire(WireError::Truncated)),
            Ok(_) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof && first => return Ok(None),
            Err(e) => return Err(ServeError::Io(e)),
        }
        first = false;
        if shift >= 64 {
            return Err(ServeError::Wire(WireError::VarintOverflow));
        }
        len |= u64::from(byte[0] & 0x7f) << shift;
        if byte[0] & 0x80 == 0 {
            break;
        }
        shift += 7;
    }
    if len > MAX_FRAME_LEN {
        return Err(ServeError::Protocol(format!("frame of {len} bytes exceeds cap")));
    }
    let mut crc = [0u8; 4];
    stream.read_exact(&mut crc).map_err(eof_as_truncated)?;
    let stored = u32::from_le_bytes(crc);
    let mut payload = vec![0u8; len as usize];
    stream.read_exact(&mut payload).map_err(eof_as_truncated)?;
    let computed = wire::crc32(&payload);
    if stored != computed {
        return Err(ServeError::Wire(WireError::Crc { stored, computed }));
    }
    Ok(Some(payload))
}

fn eof_as_truncated(e: std::io::Error) -> ServeError {
    if e.kind() == std::io::ErrorKind::UnexpectedEof {
        ServeError::Wire(WireError::Truncated)
    } else {
        ServeError::Io(e)
    }
}

/// Encodes a request into a framed byte vector, ready to write.
pub fn encode_request(req: &Request, encoder: &mut EventEncoder) -> Vec<u8> {
    let mut payload = Vec::new();
    match req {
        Request::Open { session } => {
            payload.push(TAG_OPEN);
            wire::put_varint(&mut payload, *session);
        }
        Request::Submit { session, event } => {
            payload.push(TAG_SUBMIT);
            wire::put_varint(&mut payload, *session);
            encoder.encode(event, &mut payload);
        }
        Request::Flush => payload.push(TAG_FLUSH),
        Request::Close { session } => {
            payload.push(TAG_CLOSE);
            wire::put_varint(&mut payload, *session);
        }
        Request::Stats => payload.push(TAG_STATS),
        Request::Shutdown => payload.push(TAG_SHUTDOWN),
        Request::Label { session, label } => {
            payload.push(TAG_LABEL);
            wire::put_varint(&mut payload, *session);
            wire::put_varint(&mut payload, label.len() as u64);
            payload.extend_from_slice(label.as_bytes());
        }
    }
    frame(&payload)
}

/// Decodes a request payload (the bytes inside the frame).
pub fn decode_request(payload: &[u8], decoder: &mut EventDecoder) -> Result<Request, ServeError> {
    let (&tag, rest) =
        payload.split_first().ok_or_else(|| ServeError::Protocol("empty frame".into()))?;
    let req = match tag {
        TAG_OPEN => {
            let (session, n) = wire::read_varint(rest)?;
            expect_consumed(rest, n)?;
            Request::Open { session }
        }
        TAG_SUBMIT => {
            let (session, n) = wire::read_varint(rest)?;
            let (event, used) = decoder.decode(&rest[n..])?;
            expect_consumed(rest, n + used)?;
            Request::Submit { session, event }
        }
        TAG_FLUSH => Request::Flush,
        TAG_CLOSE => {
            let (session, n) = wire::read_varint(rest)?;
            expect_consumed(rest, n)?;
            Request::Close { session }
        }
        TAG_STATS => Request::Stats,
        TAG_SHUTDOWN => Request::Shutdown,
        TAG_LABEL => {
            let (session, n) = wire::read_varint(rest)?;
            let (len, m) = wire::read_varint(&rest[n..])?;
            let start = n + m;
            let bytes = rest
                .get(start..start + len as usize)
                .ok_or(ServeError::Wire(WireError::Truncated))?;
            expect_consumed(rest, start + len as usize)?;
            let label = std::str::from_utf8(bytes)
                .map_err(|_| ServeError::Protocol("label not UTF-8".into()))?
                .to_string();
            Request::Label { session, label }
        }
        other => return Err(ServeError::Protocol(format!("unknown request tag {other:#x}"))),
    };
    if matches!(req, Request::Flush | Request::Stats | Request::Shutdown) && !rest.is_empty() {
        return Err(ServeError::Protocol("trailing bytes in request".into()));
    }
    Ok(req)
}

fn expect_consumed(rest: &[u8], used: usize) -> Result<(), ServeError> {
    if used == rest.len() {
        Ok(())
    } else {
        Err(ServeError::Protocol("trailing bytes in request".into()))
    }
}

/// Encodes an ack into a framed byte vector.
pub fn encode_ack(ack: &Ack) -> Vec<u8> {
    let mut payload = Vec::new();
    match ack {
        Ack::Ok { value } => {
            payload.push(TAG_OK);
            wire::put_varint(&mut payload, *value);
        }
        Ack::Err { message } => {
            payload.push(TAG_ERR);
            wire::put_varint(&mut payload, message.len() as u64);
            payload.extend_from_slice(message.as_bytes());
        }
        Ack::Stats(stats) => {
            payload.push(TAG_STATS_ACK);
            for v in stats.as_fields() {
                wire::put_varint(&mut payload, v);
            }
        }
    }
    frame(&payload)
}

/// Decodes an ack payload (the bytes inside the frame).
pub fn decode_ack(payload: &[u8]) -> Result<Ack, ServeError> {
    let (&tag, rest) =
        payload.split_first().ok_or_else(|| ServeError::Protocol("empty ack".into()))?;
    match tag {
        TAG_OK => {
            let (value, n) = wire::read_varint(rest)?;
            expect_consumed(rest, n)?;
            Ok(Ack::Ok { value })
        }
        TAG_ERR => {
            let (len, n) = wire::read_varint(rest)?;
            let bytes =
                rest.get(n..n + len as usize).ok_or(ServeError::Wire(WireError::Truncated))?;
            expect_consumed(rest, n + len as usize)?;
            let message = std::str::from_utf8(bytes)
                .map_err(|_| ServeError::Protocol("ack message not UTF-8".into()))?
                .to_string();
            Ok(Ack::Err { message })
        }
        TAG_STATS_ACK => {
            let mut fields = [0u64; ServeStats::FIELDS];
            let mut off = 0;
            for f in fields.iter_mut() {
                let (v, n) = wire::read_varint(&rest[off..])?;
                *f = v;
                off += n;
            }
            expect_consumed(rest, off)?;
            Ok(Ack::Stats(ServeStats::from_fields(fields)))
        }
        other => Err(ServeError::Protocol(format!("unknown ack tag {other:#x}"))),
    }
}

/// Writes `bytes` fully to the stream (a thin helper so call sites stay
/// symmetrical with [`read_frame`]).
pub fn write_all(stream: &mut impl Write, bytes: &[u8]) -> Result<(), ServeError> {
    stream.write_all(bytes).map_err(ServeError::Io)
}

impl ServeStats {
    /// Number of counters carried in a Stats ack.
    pub const FIELDS: usize = 9;

    fn as_fields(&self) -> [u64; ServeStats::FIELDS] {
        [
            self.sessions_resident,
            self.sessions_open,
            self.events_total,
            self.warnings_total,
            self.evictions,
            self.restores,
            self.fallback_replays,
            self.resident_bytes,
            self.correlator_warnings,
        ]
    }

    fn from_fields(f: [u64; ServeStats::FIELDS]) -> ServeStats {
        ServeStats {
            sessions_resident: f[0],
            sessions_open: f[1],
            events_total: f[2],
            warnings_total: f[3],
            evictions: f[4],
            restores: f[5],
            fallback_replays: f[6],
            resident_bytes: f[7],
            correlator_warnings: f[8],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harrier::{Origin, ResourceType, SourceInfo};

    fn sample_event(i: u64) -> SecpertEvent {
        SecpertEvent::ResourceAccess {
            pid: 7,
            syscall: "SYS_open",
            resource: SourceInfo::new(ResourceType::File, format!("/tmp/f{i}")),
            origin: Origin::unknown(),
            time: i,
            frequency: 1,
            address: 0x1000 + i as u32,
            proc_count: None,
            proc_rate: None,
            mem_total: None,
            server: None,
        }
    }

    #[test]
    fn requests_round_trip_through_a_stream() {
        let mut enc = EventEncoder::new();
        let requests = vec![
            Request::Open { session: 3 },
            Request::Submit { session: 3, event: sample_event(0) },
            Request::Submit { session: 3, event: sample_event(1) },
            Request::Flush,
            Request::Label { session: 3, label: "pwsafe".into() },
            Request::Close { session: 3 },
            Request::Stats,
            Request::Shutdown,
        ];
        let mut stream = Vec::new();
        for req in &requests {
            stream.extend_from_slice(&encode_request(req, &mut enc));
        }
        let mut dec = EventDecoder::new();
        let mut cursor = std::io::Cursor::new(stream);
        let mut decoded = Vec::new();
        while let Some(payload) = read_frame(&mut cursor).expect("frame") {
            decoded.push(decode_request(&payload, &mut dec).expect("request"));
        }
        assert_eq!(decoded, requests);
    }

    #[test]
    fn acks_round_trip() {
        let stats = ServeStats {
            sessions_resident: 2,
            sessions_open: 5,
            events_total: 100,
            warnings_total: 3,
            evictions: 4,
            restores: 2,
            fallback_replays: 1,
            resident_bytes: 1 << 20,
            correlator_warnings: 2,
        };
        for ack in [
            Ack::Ok { value: 0 },
            Ack::Ok { value: 42 },
            Ack::Err { message: "session table is draining".into() },
            Ack::Stats(stats),
        ] {
            let framed = encode_ack(&ack);
            let mut cursor = std::io::Cursor::new(framed);
            let payload = read_frame(&mut cursor).expect("frame").expect("payload");
            assert_eq!(decode_ack(&payload).expect("ack"), ack);
        }
    }

    #[test]
    fn corrupt_and_truncated_frames_are_rejected() {
        let mut enc = EventEncoder::new();
        let good = encode_request(&Request::Open { session: 1 }, &mut enc);
        // Flip a payload bit: CRC mismatch.
        let mut torn = good.clone();
        let last = torn.len() - 1;
        torn[last] ^= 1;
        let err = read_frame(&mut std::io::Cursor::new(torn)).unwrap_err();
        assert!(matches!(err, ServeError::Wire(WireError::Crc { .. })), "{err:?}");
        // Cut the frame mid-payload: truncated, not clean EOF.
        let cut = &good[..good.len() - 1];
        let err = read_frame(&mut std::io::Cursor::new(cut.to_vec())).unwrap_err();
        assert!(matches!(err, ServeError::Wire(WireError::Truncated)), "{err:?}");
        // Empty stream: clean EOF.
        assert!(read_frame(&mut std::io::Cursor::new(Vec::new())).expect("eof").is_none());
    }

    #[test]
    fn oversized_frames_are_capped() {
        let mut framed = Vec::new();
        wire::put_varint(&mut framed, MAX_FRAME_LEN + 1);
        framed.extend_from_slice(&[0u8; 4]);
        let err = read_frame(&mut std::io::Cursor::new(framed)).unwrap_err();
        assert!(matches!(err, ServeError::Protocol(_)), "{err:?}");
    }
}
