//! Fleet throughput bench: how analyst-pool event throughput scales
//! with shard count.
//!
//! The Table 8 exploit corpus is run once to capture its event streams;
//! the captured events are then fanned into an [`AnalystPool`] from
//! four producer threads at 1, 2 and 4 shards, measuring analysed
//! events per second. Results go to `BENCH_fleet.json` at the repo root
//! so the scaling trajectory is recorded run over run.
//!
//! Run with `cargo bench -p hth-bench --bench fleet`; `--test` runs a
//! single tiny configuration as a smoke check and writes nothing.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use harrier::SecpertEvent;
use hth_bench::json::Json;
use hth_core::{PolicyConfig, Session, SessionConfig};
use hth_fleet::{AnalystPool, Backpressure, PoolConfig};

const PRODUCERS: usize = 4;
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// Runs the exploit corpus once, inline analysis off, collecting every
/// event the sessions emit.
fn capture_corpus(scenario_cap: usize) -> Vec<SecpertEvent> {
    let events = Arc::new(Mutex::new(Vec::new()));
    for scenario in hth_workloads::exploits::scenarios().into_iter().take(scenario_cap) {
        let config =
            SessionConfig { analyze_inline: false, record_events: false, ..Default::default() };
        let mut session = Session::new(config).expect("policy loads");
        let start = (scenario.setup)(&mut session);
        let sink = Arc::clone(&events);
        session.set_event_tap(Box::new(move |event| {
            sink.lock().expect("corpus sink").push(event.clone());
        }));
        let argv: Vec<&str> = start.argv.iter().map(String::as_str).collect();
        let env: Vec<(&str, &str)> =
            start.env.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
        session.start(start.path, &argv, &env).expect("spawns");
        session.run().expect("runs");
    }
    Arc::try_unwrap(events)
        .unwrap_or_else(|_| unreachable!("sessions dropped"))
        .into_inner()
        .expect("corpus sink")
}

struct Measurement {
    shards: usize,
    events: u64,
    elapsed: Duration,
}

impl Measurement {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Fans `replicate` copies of the corpus per producer thread into a
/// fresh pool, each copy as its own session id so the Fibonacci shard
/// hash spreads the load; returns the drain-to-drain measurement.
fn measure(corpus: &Arc<Vec<SecpertEvent>>, shards: usize, replicate: usize) -> Measurement {
    let config = PoolConfig {
        shards,
        queue_capacity: 4096,
        backpressure: Backpressure::Block,
        ..PoolConfig::default()
    };
    let pool = Arc::new(AnalystPool::new(&config, &PolicyConfig::default()).expect("policy loads"));
    let start = Instant::now();
    let mut producers = Vec::with_capacity(PRODUCERS);
    for p in 0..PRODUCERS {
        let pool = Arc::clone(&pool);
        let corpus = Arc::clone(corpus);
        producers.push(std::thread::spawn(move || {
            for r in 0..replicate {
                let sid = (p * replicate + r) as u64;
                for event in corpus.iter() {
                    pool.submit(sid, event.clone());
                }
            }
        }));
    }
    for producer in producers {
        producer.join().expect("producer panicked");
    }
    let report =
        Arc::try_unwrap(pool).unwrap_or_else(|_| unreachable!("producers joined")).finish();
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    Measurement { shards, events: report.events, elapsed: start.elapsed() }
}

/// Best of three runs — pool throughput, like any timing, is noisy and
/// the fastest run is the least-perturbed one.
fn best_of(corpus: &Arc<Vec<SecpertEvent>>, shards: usize, replicate: usize) -> Measurement {
    (0..3)
        .map(|_| measure(corpus, shards, replicate))
        .max_by(|a, b| a.events_per_sec().total_cmp(&b.events_per_sec()))
        .expect("three runs")
}

fn main() {
    let test_mode = std::env::args().skip(1).any(|a| a == "--test");
    if test_mode {
        let corpus = Arc::new(capture_corpus(2));
        let m = measure(&corpus, 2, 1);
        assert_eq!(m.events, (corpus.len() * PRODUCERS) as u64);
        println!("test fleet_throughput ... ok");
        return;
    }

    let cpus = std::thread::available_parallelism().map_or(1, usize::from);
    let corpus = Arc::new(capture_corpus(usize::MAX));
    let replicate = 24;
    println!(
        "fleet_throughput: corpus {} events, {} producers x {} replays, {} cpus",
        corpus.len(),
        PRODUCERS,
        replicate,
        cpus
    );

    let mut rows = Vec::new();
    for shards in SHARD_COUNTS {
        let m = best_of(&corpus, shards, replicate);
        println!(
            "fleet_throughput/shards={:<2} {:>9} events in {:>8.2?}  ({:>10.0} events/sec)",
            m.shards,
            m.events,
            m.elapsed,
            m.events_per_sec()
        );
        rows.push(m);
    }
    let speedup = rows[rows.len() - 1].events_per_sec() / rows[0].events_per_sec();
    println!("fleet_throughput: 4-shard speedup over 1 shard: {speedup:.2}x");
    if cpus < SHARD_COUNTS[SHARD_COUNTS.len() - 1] {
        println!(
            "fleet_throughput: NOTE {cpus} cpu(s) available — shard scaling is \
             parallelism-bound; rerun on >= 4 cores for the full curve"
        );
    }

    let json = Json::Obj(vec![
        ("bench".into(), Json::Str("fleet_throughput".into())),
        ("cpus".into(), Json::Num(cpus as f64)),
        ("corpus_events".into(), Json::Num(corpus.len() as f64)),
        ("producers".into(), Json::Num(PRODUCERS as f64)),
        ("replays_per_producer".into(), Json::Num(replicate as f64)),
        (
            "shards".into(),
            Json::Arr(
                rows.iter()
                    .map(|m| {
                        Json::Obj(vec![
                            ("shards".into(), Json::Num(m.shards as f64)),
                            ("events".into(), Json::Num(m.events as f64)),
                            ("elapsed_ms".into(), Json::Num(m.elapsed.as_secs_f64() * 1e3)),
                            ("events_per_sec".into(), Json::Num(m.events_per_sec())),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("speedup_4_shards_vs_1".into(), Json::Num(speedup)),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet.json");
    std::fs::write(path, json.to_string_pretty() + "\n").expect("write BENCH_fleet.json");
    println!("wrote {path}");
}
