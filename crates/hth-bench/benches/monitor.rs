//! Criterion benches for the monitoring layers: interpreter step rate
//! under increasing instrumentation (the §9 ablation as microbenchmarks)
//! and taint-set union cost.

use criterion::{criterion_group, criterion_main, Criterion};
use emukernel::Kernel;
use harrier::{DataSource, Harrier, HarrierConfig, SourceTable, TagSet};
use hth_bench::perf::workload_source;
use hth_vm::{NullHooks, StepEvent};

fn run_program(kernel: &mut Kernel, with_harrier: Option<HarrierConfig>) -> u64 {
    let mut proc = kernel.spawn("/bench/compute", &["/bench/compute"], &[]).expect("spawns");
    let mut harrier = with_harrier.map(Harrier::new);
    if let Some(h) = harrier.as_mut() {
        h.attach(&proc);
    }
    loop {
        let step = match harrier.as_mut() {
            Some(h) => {
                let mut hooks = h.hooks(proc.pid);
                proc.core.step(&mut hooks)
            }
            None => proc.core.step(&mut NullHooks),
        };
        match step.expect("no faults") {
            StepEvent::Continue => {}
            StepEvent::Halted => break,
            StepEvent::Interrupt(0x80) => {
                let record = kernel.syscall(&mut proc);
                if let Some(h) = harrier.as_mut() {
                    let _ = h.on_syscall(&proc, &record, kernel);
                }
                if !proc.runnable() {
                    break;
                }
            }
            StepEvent::Interrupt(_) => break,
        }
    }
    proc.core.instret()
}

fn bench_interpreter(c: &mut Criterion) {
    let mut group = c.benchmark_group("interpreter");
    group.sample_size(20);
    let mut kernel = Kernel::new();
    kernel.register_binary("/bench/compute", &workload_source(50), &[]);
    group.bench_function("bare", |b| b.iter(|| run_program(&mut kernel, None)));
    group.bench_function("harrier-syscalls-only", |b| {
        b.iter(|| {
            run_program(
                &mut kernel,
                Some(HarrierConfig {
                    track_dataflow: false,
                    track_bb_freq: false,
                    ..HarrierConfig::default()
                }),
            )
        })
    });
    group.bench_function("harrier-full-dataflow", |b| {
        b.iter(|| run_program(&mut kernel, Some(HarrierConfig::default())))
    });
    group.finish();
}

fn bench_tagset(c: &mut Criterion) {
    let mut table = SourceTable::new();
    let ids: Vec<_> =
        (0..16).map(|i| table.intern(DataSource::file(format!("/file/{i}")))).collect();
    let a = TagSet::from_ids(ids[0..8].iter().copied());
    let b_set = TagSet::from_ids(ids[4..12].iter().copied());
    let mut group = c.benchmark_group("tagset");
    group.bench_function("union-overlapping-8x8", |bench| {
        bench.iter(|| a.union(&b_set));
    });
    group.bench_function("union-identical", |bench| {
        bench.iter(|| a.union(&a));
    });
    group.bench_function("union-with-empty", |bench| {
        let empty = TagSet::empty();
        bench.iter(|| a.union(&empty));
    });
    group.finish();
}

criterion_group!(benches, bench_interpreter, bench_tagset);
criterion_main!(benches);
