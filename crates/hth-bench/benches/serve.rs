//! Serve-path bench: end-to-end daemon throughput and ack latency over
//! loopback, with and without an eviction-forcing memory budget.
//!
//! Each configuration binds a fresh in-process [`Server`] on an
//! ephemeral port, drives it with the `hth load` engine ([`run_load`]:
//! one connection, round-robin submits across sessions, every ack
//! timed), then drains the daemon to collect its lifecycle counters.
//! Results go to `BENCH_serve.json` at the repo root — events/sec, p50
//! and p99 ack latency, and the resident-session high-water mark per
//! row — so serve-path regressions show up run over run.
//!
//! Run with `cargo bench -p hth-bench --bench serve`; `--test` runs one
//! tiny configuration as a smoke check and writes nothing.

use std::time::Duration;

use hth_bench::json::Json;
use hth_core::Secpert;
use hth_serve::{run_load, ServeConfig, Server, TableConfig};

/// One bench row: a daemon with this budget, driven at this load.
struct Config {
    label: &'static str,
    sessions: u64,
    events_per_session: u64,
    budget_bytes: usize,
}

struct Measurement {
    label: &'static str,
    sessions: u64,
    events: u64,
    elapsed: Duration,
    p50_us: u64,
    p99_us: u64,
    resident_high_water: u64,
    evictions: u64,
    restores: u64,
}

impl Measurement {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Sizes an eviction-forcing budget from a *grown* engine: a fresh
/// engine's accounted bytes are dominated by working-memory and token
/// state that only exists once events have flowed.
fn grown_engine_bytes(events: usize) -> usize {
    let mut probe = Secpert::new(&TableConfig::default().policy).expect("policy loads");
    for event in hth_serve::synthetic_events(0, events) {
        probe.process_event(&event).expect("probe event");
    }
    probe.approx_bytes()
}

/// Binds a daemon, runs the load engine against it, drains it, and
/// folds both sides into one measurement.
fn measure(config: &Config) -> Measurement {
    let table = TableConfig { budget_bytes: config.budget_bytes, ..TableConfig::default() };
    let server =
        Server::bind(ServeConfig { addr: "127.0.0.1:0".into(), table, ..ServeConfig::default() })
            .expect("bind loopback");
    let addr = server.local_addr();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("server run"));

    let report = run_load(addr, config.sessions, config.events_per_session).expect("load run");
    handle.shutdown();
    let summary = join.join().expect("server thread");

    Measurement {
        label: config.label,
        sessions: config.sessions,
        events: report.events,
        elapsed: report.elapsed,
        p50_us: report.ack_latency_us.quantile(0.5),
        p99_us: report.ack_latency_us.quantile(0.99),
        resident_high_water: summary.resident_high_water,
        evictions: summary.stats.evictions,
        restores: summary.stats.restores,
    }
}

/// Best of three runs — loopback round-trip timing is noisy and the
/// fastest run is the least-perturbed one.
fn best_of(config: &Config) -> Measurement {
    (0..3)
        .map(|_| measure(config))
        .max_by(|a, b| a.events_per_sec().total_cmp(&b.events_per_sec()))
        .expect("three runs")
}

fn main() {
    let test_mode = std::env::args().skip(1).any(|a| a == "--test");
    if test_mode {
        let m = measure(&Config {
            label: "smoke",
            sessions: 2,
            events_per_session: 10,
            budget_bytes: TableConfig::default().budget_bytes,
        });
        assert_eq!(m.events, 20);
        assert!(m.resident_high_water >= 2);
        println!("test serve_throughput ... ok");
        return;
    }

    let cpus = std::thread::available_parallelism().map_or(1, usize::from);
    let unbudgeted = TableConfig::default().budget_bytes;
    // A budget worth ~4 grown engines forces the 32-session row to
    // churn: most submits hit an evicted session and pay the
    // snapshot-restore revive on the serve path.
    let churn_budget = grown_engine_bytes(64) * 4;
    let configs = [
        Config {
            label: "resident_8",
            sessions: 8,
            events_per_session: 64,
            budget_bytes: unbudgeted,
        },
        Config {
            label: "resident_32",
            sessions: 32,
            events_per_session: 64,
            budget_bytes: unbudgeted,
        },
        Config {
            label: "evicting_32",
            sessions: 32,
            events_per_session: 64,
            budget_bytes: churn_budget,
        },
    ];
    println!("serve_throughput: {} cpus, churn budget {} bytes", cpus, churn_budget);

    let mut rows = Vec::new();
    for config in &configs {
        let m = best_of(config);
        println!(
            "serve_throughput/{:<12} {:>6} events in {:>8.2?}  ({:>8.0} events/sec, \
             ack p50 <= {}us p99 <= {}us, high-water {} resident, {} evictions)",
            m.label,
            m.events,
            m.elapsed,
            m.events_per_sec(),
            m.p50_us,
            m.p99_us,
            m.resident_high_water,
            m.evictions,
        );
        rows.push(m);
    }

    let json = Json::Obj(vec![
        ("bench".into(), Json::Str("serve_throughput".into())),
        ("cpus".into(), Json::Num(cpus as f64)),
        ("churn_budget_bytes".into(), Json::Num(churn_budget as f64)),
        (
            "rows".into(),
            Json::Arr(
                rows.iter()
                    .map(|m| {
                        Json::Obj(vec![
                            ("label".into(), Json::Str(m.label.into())),
                            ("sessions".into(), Json::Num(m.sessions as f64)),
                            ("events".into(), Json::Num(m.events as f64)),
                            ("elapsed_ms".into(), Json::Num(m.elapsed.as_secs_f64() * 1e3)),
                            ("events_per_sec".into(), Json::Num(m.events_per_sec())),
                            ("ack_p50_us".into(), Json::Num(m.p50_us as f64)),
                            ("ack_p99_us".into(), Json::Num(m.p99_us as f64)),
                            ("resident_high_water".into(), Json::Num(m.resident_high_water as f64)),
                            ("evictions".into(), Json::Num(m.evictions as f64)),
                            ("restores".into(), Json::Num(m.restores as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, json.to_string_pretty() + "\n").expect("write BENCH_serve.json");
    println!("wrote {path}");
}
