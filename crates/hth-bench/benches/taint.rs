//! Taint-representation micro-benchmarks: the hash-consed compressed
//! shadow (`Shadow` + `TagStore`) against the per-byte `NaiveShadow`
//! oracle on the two workload shapes the paper's §9 overhead numbers
//! are dominated by:
//!
//! * **union-heavy** — an ALU-style loop repeatedly combining a handful
//!   of live tag sets (every `add reg, reg` is a set union, §7.3.1);
//! * **memcpy-heavy** — bulk buffer tagging and range reads (`read()`
//!   into a buffer, then copy/write it out).
//!
//! Run with `cargo bench -p hth-bench --bench taint`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use harrier::{DataSource, NaiveShadow, Shadow, SourceId, SourceTable, TagRef, TagSet, TagStore};
use hth_vm::{Loc, Reg, TaintOp};

const UNION_OPS: usize = 2_000;
const BUF: u32 = 4096;
const COPIES: usize = 32;

fn sources(n: usize) -> Vec<SourceId> {
    let mut table = SourceTable::new();
    (0..n).map(|i| table.intern(DataSource::file(format!("/src{i}")))).collect()
}

/// The op mix of an inner loop: rotate through registers, combining two
/// sources into a destination, with an occasional immediate.
fn alu_ops() -> Vec<TaintOp> {
    (0..UNION_OPS)
        .map(|i| TaintOp {
            dst: Loc::Reg(Reg::ALL[i % 8]),
            srcs: [Some(Loc::Reg(Reg::ALL[(i + 1) % 8])), Some(Loc::Reg(Reg::ALL[(i + 3) % 8]))],
            imm: i % 7 == 0,
            hardware: false,
        })
        .collect()
}

fn bench_union_heavy(c: &mut Criterion) {
    let ids = sources(8);
    let ops = alu_ops();
    let mut group = c.benchmark_group("taint_union_heavy");
    group.sample_size(20);

    group.bench_function("naive", |b| {
        b.iter_batched(
            || {
                let mut shadow = NaiveShadow::new();
                for (i, reg) in Reg::ALL.into_iter().enumerate() {
                    shadow.set_reg(reg, TagSet::from_ids([ids[i % ids.len()]]));
                }
                shadow
            },
            |mut shadow| {
                for op in &ops {
                    shadow.apply(op, ids[6], ids[7]);
                }
                shadow
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("hashconsed", |b| {
        b.iter_batched(
            || {
                let mut store = TagStore::new();
                let mut shadow = Shadow::new();
                for (i, reg) in Reg::ALL.into_iter().enumerate() {
                    let tag = store.single(ids[i % ids.len()]);
                    shadow.set_reg(reg, tag);
                }
                let binary = store.single(ids[6]);
                let hardware = store.single(ids[7]);
                (store, shadow, binary, hardware)
            },
            |(mut store, mut shadow, binary, hardware)| {
                for op in &ops {
                    shadow.apply(op, binary, hardware, &mut store);
                }
                (store, shadow)
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_memcpy_heavy(c: &mut Criterion) {
    let ids = sources(4);
    let mut group = c.benchmark_group("taint_memcpy_heavy");
    group.sample_size(20);

    // Tag a page-sized source buffer, then repeatedly "copy" it: read
    // the range union and fill a destination with it, like the monitor
    // does for read()/write() pairs.
    group.bench_function("naive", |b| {
        b.iter_batched(
            NaiveShadow::new,
            |mut shadow| {
                shadow.set_range(0x1_0000, BUF, &TagSet::from_ids([ids[0], ids[1]]));
                for i in 0..COPIES as u32 {
                    let tag = shadow.range(0x1_0000, BUF);
                    shadow.set_range(0x2_0000 + i * BUF, BUF, &tag);
                }
                shadow
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("hashconsed", |b| {
        b.iter_batched(
            || (TagStore::new(), Shadow::new()),
            |(mut store, mut shadow)| {
                let src = store.from_ids([ids[0], ids[1]]);
                shadow.set_range(0x1_0000, BUF, src);
                for i in 0..COPIES as u32 {
                    let tag = shadow.range(0x1_0000, BUF, &mut store);
                    shadow.set_range(0x2_0000 + i * BUF, BUF, tag);
                }
                (store, shadow)
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

/// Sanity stats: a union-heavy run should be answered almost entirely
/// from the memo cache.
fn bench_memo_rates(c: &mut Criterion) {
    c.bench_function("taint_store_memo_warm", |b| {
        let ids = sources(8);
        let ops = alu_ops();
        let mut store = TagStore::new();
        let mut shadow = Shadow::new();
        for (i, reg) in Reg::ALL.into_iter().enumerate() {
            let tag = store.single(ids[i % ids.len()]);
            shadow.set_reg(reg, tag);
        }
        let binary = store.single(ids[6]);
        let hardware = store.single(ids[7]);
        b.iter(|| {
            for op in &ops {
                shadow.apply(op, binary, hardware, &mut store);
            }
            store.stats().memo_hits
        });
        let stats = store.stats();
        let total = stats.memo_hits + stats.memo_misses;
        eprintln!(
            "taint_store stats: {} interned sets, {}/{} memoized unions ({:.1}% hit rate)",
            stats.interned_sets,
            stats.memo_hits,
            total,
            100.0 * stats.memo_hits as f64 / total.max(1) as f64,
        );
        assert_eq!(TagRef::EMPTY, TagRef::default());
    });
}

criterion_group!(benches, bench_union_heavy, bench_memcpy_heavy, bench_memo_rates);
criterion_main!(benches);
