//! Tracing overhead bench: what the `hth-trace` instrumentation costs
//! when it is off (the common case — one relaxed atomic load per site)
//! and when it is on.
//!
//! The Table 8 exploit corpus is captured once and replayed through a
//! fresh Secpert with tracing disabled and enabled, measuring analysed
//! events per second in each mode. The disabled-path overhead is then
//! derived from first principles: (per-call cost of a disabled site) ×
//! (instrumented sites hit per event) ÷ (time per event), and the run
//! asserts it stays under the 2% budget. Results go to
//! `BENCH_trace.json` at the repo root.
//!
//! Run with `cargo bench -p hth-bench --bench trace`; `--test` runs a
//! tiny configuration as a smoke check and writes nothing.

use std::hint::black_box;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use harrier::SecpertEvent;
use hth_bench::json::Json;
use hth_core::{PolicyConfig, Secpert, Session, SessionConfig};

/// Hard ceiling on the derived disabled-path overhead.
const DISABLED_OVERHEAD_BUDGET_PCT: f64 = 2.0;

/// Runs the exploit corpus once, inline analysis off, collecting every
/// event the sessions emit.
fn capture_corpus(scenario_cap: usize) -> Vec<SecpertEvent> {
    let events = Arc::new(Mutex::new(Vec::new()));
    for scenario in hth_workloads::exploits::scenarios().into_iter().take(scenario_cap) {
        let config =
            SessionConfig { analyze_inline: false, record_events: false, ..Default::default() };
        let mut session = Session::new(config).expect("policy loads");
        let start = (scenario.setup)(&mut session);
        let sink = Arc::clone(&events);
        session.set_event_tap(Box::new(move |event| {
            sink.lock().expect("corpus sink").push(event.clone());
        }));
        let argv: Vec<&str> = start.argv.iter().map(String::as_str).collect();
        let env: Vec<(&str, &str)> =
            start.env.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
        session.start(start.path, &argv, &env).expect("spawns");
        session.run().expect("runs");
    }
    Arc::try_unwrap(events)
        .unwrap_or_else(|_| unreachable!("sessions dropped"))
        .into_inner()
        .expect("corpus sink")
}

/// Replays `replicate` copies of the corpus through one fresh Secpert;
/// returns the analysis wall time.
fn analyze(corpus: &[SecpertEvent], replicate: usize) -> Duration {
    let mut secpert = Secpert::new(&PolicyConfig::default()).expect("policy loads");
    let start = Instant::now();
    for _ in 0..replicate {
        for event in corpus {
            black_box(secpert.process_event(event).expect("analyzes"));
        }
    }
    start.elapsed()
}

/// Best of three runs — the fastest is the least-perturbed one.
fn best_of(corpus: &[SecpertEvent], replicate: usize) -> Duration {
    (0..3).map(|_| analyze(corpus, replicate)).min().expect("three runs")
}

/// Nanoseconds per call of a disabled trace site (the relaxed-load
/// early-out everything in the hot path pays when tracing is off).
fn disabled_call_cost_ns(iters: u64) -> f64 {
    hth_trace::set_enabled(false);
    let start = Instant::now();
    for _ in 0..iters {
        hth_trace::instant(black_box("trace_bench.noop"));
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn main() {
    let test_mode = std::env::args().skip(1).any(|a| a == "--test");
    if test_mode {
        let corpus = capture_corpus(2);
        hth_trace::set_enabled(false);
        analyze(&corpus, 1);
        hth_trace::set_enabled(true);
        analyze(&corpus, 1);
        hth_trace::set_enabled(false);
        let log = hth_trace::drain();
        assert!(!log.events.is_empty(), "enabled replay must record trace events");
        let per_call = disabled_call_cost_ns(100_000);
        assert!(per_call < 1_000.0, "disabled site costs {per_call:.0}ns — the gate is broken");
        println!("test trace_overhead ... ok");
        return;
    }

    let cpus = std::thread::available_parallelism().map_or(1, usize::from);
    let corpus = capture_corpus(usize::MAX);
    let replicate = 50;
    println!(
        "trace_overhead: corpus {} events x {} replays, {} cpus",
        corpus.len(),
        replicate,
        cpus
    );

    hth_trace::set_enabled(false);
    hth_trace::drain(); // discard anything earlier instrumentation recorded
    let disabled = best_of(&corpus, replicate);
    hth_trace::set_enabled(true);
    let enabled = best_of(&corpus, replicate);
    hth_trace::set_enabled(false);
    let log = hth_trace::drain();

    let total_events = (corpus.len() * replicate) as f64;
    let disabled_eps = total_events / disabled.as_secs_f64().max(1e-9);
    let enabled_eps = total_events / enabled.as_secs_f64().max(1e-9);
    // One span = two records, so records per event ≈ enabled checks per
    // event; count ring overwrites too or a full ring undercounts, and
    // divide by all three enabled best-of runs that fed the ring.
    let sites_per_event = (log.events.len() as u64 + log.dropped) as f64 / (3.0 * total_events);
    let per_call_ns = disabled_call_cost_ns(10_000_000);
    let event_ns = disabled.as_nanos() as f64 / total_events;
    let disabled_overhead_pct = per_call_ns * sites_per_event / event_ns * 100.0;
    let enabled_overhead_pct = (disabled_eps / enabled_eps - 1.0) * 100.0;

    println!("trace_overhead/disabled {disabled_eps:>12.0} events/sec");
    println!("trace_overhead/enabled  {enabled_eps:>12.0} events/sec  (+{enabled_overhead_pct:.1}% cost)");
    println!(
        "trace_overhead: {sites_per_event:.1} sites/event x {per_call_ns:.2}ns = \
         {disabled_overhead_pct:.3}% of a {event_ns:.0}ns event (budget {DISABLED_OVERHEAD_BUDGET_PCT}%)"
    );
    assert!(
        disabled_overhead_pct <= DISABLED_OVERHEAD_BUDGET_PCT,
        "disabled tracing costs {disabled_overhead_pct:.2}% — over the \
         {DISABLED_OVERHEAD_BUDGET_PCT}% budget"
    );

    let json = Json::Obj(vec![
        ("bench".into(), Json::Str("trace_overhead".into())),
        ("cpus".into(), Json::Num(cpus as f64)),
        ("corpus_events".into(), Json::Num(corpus.len() as f64)),
        ("replays".into(), Json::Num(replicate as f64)),
        ("disabled_events_per_sec".into(), Json::Num(disabled_eps)),
        ("enabled_events_per_sec".into(), Json::Num(enabled_eps)),
        ("trace_records".into(), Json::Num(log.events.len() as f64)),
        ("sites_per_event".into(), Json::Num(sites_per_event)),
        ("disabled_ns_per_site".into(), Json::Num(per_call_ns)),
        ("disabled_overhead_pct".into(), Json::Num(disabled_overhead_pct)),
        ("enabled_overhead_pct".into(), Json::Num(enabled_overhead_pct)),
        ("budget_pct".into(), Json::Num(DISABLED_OVERHEAD_BUDGET_PCT)),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_trace.json");
    std::fs::write(path, json.to_string_pretty() + "\n").expect("write BENCH_trace.json");
    println!("wrote {path}");
}
