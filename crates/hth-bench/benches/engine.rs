//! Criterion benches for the secpert-engine substrate: fact assertion,
//! match-and-fire throughput, and the policy's per-event latency.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use harrier::{Origin, ResourceType, SecpertEvent, SourceInfo};
use hth_core::{PolicyConfig, Secpert};
use secpert_engine::{Engine, Value};

fn engine_with_rule() -> Engine {
    let mut engine = Engine::new();
    engine
        .load_str(
            r#"
            (deftemplate ev (slot kind) (slot n))
            (defrule hit
              ?e <- (ev (kind open) (n ?n&:(> ?n 10)))
              =>
              (retract ?e))
            "#,
        )
        .expect("loads");
    engine
}

fn bench_assert_retract(c: &mut Criterion) {
    c.bench_function("engine/assert+match+fire+retract", |b| {
        let mut engine = engine_with_rule();
        let mut n = 0i64;
        b.iter(|| {
            n += 1;
            let fact = engine
                .fact("ev")
                .unwrap()
                .slot("kind", Value::sym("open"))
                .slot("n", 100 + n)
                .build()
                .unwrap();
            engine.assert_fact(fact).unwrap();
            engine.run(None).unwrap()
        });
    });
}

fn bench_non_matching_assert(c: &mut Criterion) {
    c.bench_function("engine/assert-non-matching", |b| {
        let mut engine = engine_with_rule();
        let mut n = 0i64;
        b.iter(|| {
            n += 1;
            let fact = engine
                .fact("ev")
                .unwrap()
                .slot("kind", Value::sym("close"))
                .slot("n", n)
                .build()
                .unwrap();
            let id = engine.assert_fact(fact).unwrap().unwrap();
            engine.retract_fact(id).unwrap();
        });
    });
}

fn bench_policy_event(c: &mut Criterion) {
    let mut group = c.benchmark_group("secpert-policy");
    group.bench_function("execve-event (warns)", |b| {
        b.iter_batched(
            || Secpert::new(&PolicyConfig::default()).expect("loads"),
            |mut secpert| {
                let event = SecpertEvent::ResourceAccess {
                    pid: 1,
                    syscall: "SYS_execve",
                    resource: SourceInfo::new(ResourceType::File, "/bin/ls"),
                    origin: Origin {
                        sources: vec![SourceInfo::new(ResourceType::Binary, "/bin/app")],
                    },
                    time: 5,
                    frequency: 3,
                    address: 0x8048000,
                    proc_count: None,
                    proc_rate: None,
                    mem_total: None,
                    server: None,
                };
                secpert.process_event(&event).unwrap().len()
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("write-event (silent)", |b| {
        let mut secpert = Secpert::new(&PolicyConfig::default()).expect("loads");
        b.iter(|| {
            let event = SecpertEvent::DataTransfer {
                pid: 1,
                syscall: "SYS_write",
                data_sources: vec![SourceInfo::new(ResourceType::File, "/etc/motd")],
                data_origin: Origin {
                    sources: vec![SourceInfo::new(ResourceType::UserInput, "USER_INPUT")],
                },
                target: SourceInfo::new(ResourceType::Console, "STDOUT"),
                target_origin: Origin::unknown(),
                time: 5,
                frequency: 3,
                address: 0,
                executable_content: false,
                server: None,
            };
            secpert.process_event(&event).unwrap().len()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_assert_retract,
    bench_non_matching_assert,
    bench_policy_event,
    bench_rule_scaling
);
criterion_main!(benches);

/// Incremental-matching ablation: per-event latency should be largely
/// independent of the number of *unrelated* rules loaded, because
/// asserts only seed-join into rules whose templates match.
fn bench_rule_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("rule-scaling");
    for extra_rules in [0usize, 32, 128] {
        let mut engine = engine_with_rule();
        for i in 0..extra_rules {
            engine
                .load_str(&format!(
                    "(deftemplate other{i} (slot x)) \
                     (defrule r{i} (other{i} (x ?v&:(> ?v 0))) => (printout t ?v))"
                ))
                .expect("inert rule loads");
        }
        group.bench_function(format!("assert+fire with {extra_rules} unrelated rules"), |b| {
            let mut n = 0i64;
            b.iter(|| {
                n += 1;
                let fact = engine
                    .fact("ev")
                    .unwrap()
                    .slot("kind", secpert_engine::Value::sym("open"))
                    .slot("n", 100 + n)
                    .build()
                    .unwrap();
                engine.assert_fact(fact).unwrap();
                engine.run(None).unwrap()
            });
        });
    }
    group.finish();
}
