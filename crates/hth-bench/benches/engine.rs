//! Criterion benches for the secpert-engine substrate: fact assertion,
//! match-and-fire throughput, the policy's per-event latency — plus the
//! working-memory scaling curve comparing the naive full-join matcher
//! against the incremental Rete network (events × resident facts).
//!
//! Run with `cargo bench -p hth-bench --bench engine`; the scaling
//! curve goes to `BENCH_engine.json` at the repo root. `--test` runs
//! every benchmark body once plus a tiny scaling smoke (naive and Rete
//! must agree exactly) and writes nothing.

use std::time::{Duration, Instant};

use criterion::{criterion_group, BatchSize, Criterion};
use harrier::{Origin, ResourceType, SecpertEvent, SourceInfo};
use hth_bench::json::Json;
use hth_core::{PolicyConfig, Secpert};
use secpert_engine::{Engine, Matcher, Value};

fn engine_with_rule() -> Engine {
    let mut engine = Engine::new();
    engine
        .load_str(
            r#"
            (deftemplate ev (slot kind) (slot n))
            (defrule hit
              ?e <- (ev (kind open) (n ?n&:(> ?n 10)))
              =>
              (retract ?e))
            "#,
        )
        .expect("loads");
    engine
}

fn bench_assert_retract(c: &mut Criterion) {
    c.bench_function("engine/assert+match+fire+retract", |b| {
        let mut engine = engine_with_rule();
        let mut n = 0i64;
        b.iter(|| {
            n += 1;
            let fact = engine
                .fact("ev")
                .unwrap()
                .slot("kind", Value::sym("open"))
                .slot("n", 100 + n)
                .build()
                .unwrap();
            engine.assert_fact(fact).unwrap();
            engine.run(None).unwrap()
        });
    });
}

fn bench_non_matching_assert(c: &mut Criterion) {
    c.bench_function("engine/assert-non-matching", |b| {
        let mut engine = engine_with_rule();
        let mut n = 0i64;
        b.iter(|| {
            n += 1;
            let fact = engine
                .fact("ev")
                .unwrap()
                .slot("kind", Value::sym("close"))
                .slot("n", n)
                .build()
                .unwrap();
            let id = engine.assert_fact(fact).unwrap().unwrap();
            engine.retract_fact(id).unwrap();
        });
    });
}

fn bench_policy_event(c: &mut Criterion) {
    let mut group = c.benchmark_group("secpert-policy");
    group.bench_function("execve-event (warns)", |b| {
        b.iter_batched(
            || Secpert::new(&PolicyConfig::default()).expect("loads"),
            |mut secpert| {
                let event = SecpertEvent::ResourceAccess {
                    pid: 1,
                    syscall: "SYS_execve",
                    resource: SourceInfo::new(ResourceType::File, "/bin/ls"),
                    origin: Origin {
                        sources: vec![SourceInfo::new(ResourceType::Binary, "/bin/app")],
                    },
                    time: 5,
                    frequency: 3,
                    address: 0x8048000,
                    proc_count: None,
                    proc_rate: None,
                    mem_total: None,
                    server: None,
                };
                secpert.process_event(&event).unwrap().len()
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("write-event (silent)", |b| {
        let mut secpert = Secpert::new(&PolicyConfig::default()).expect("loads");
        b.iter(|| {
            let event = SecpertEvent::DataTransfer {
                pid: 1,
                syscall: "SYS_write",
                data_sources: vec![SourceInfo::new(ResourceType::File, "/etc/motd")],
                data_origin: Origin {
                    sources: vec![SourceInfo::new(ResourceType::UserInput, "USER_INPUT")],
                },
                target: SourceInfo::new(ResourceType::Console, "STDOUT"),
                target_origin: Origin::unknown(),
                time: 5,
                frequency: 3,
                address: 0,
                executable_content: false,
                server: None,
                bytes: 16,
            };
            secpert.process_event(&event).unwrap().len()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_assert_retract,
    bench_non_matching_assert,
    bench_policy_event,
    bench_rule_scaling
);

fn main() {
    benches();
    wm_scaling();
}

/// Incremental-matching ablation: per-event latency should be largely
/// independent of the number of *unrelated* rules loaded, because
/// asserts only seed-join into rules whose templates match.
fn bench_rule_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("rule-scaling");
    for extra_rules in [0usize, 32, 128] {
        let mut engine = engine_with_rule();
        for i in 0..extra_rules {
            engine
                .load_str(&format!(
                    "(deftemplate other{i} (slot x)) \
                     (defrule r{i} (other{i} (x ?v&:(> ?v 0))) => (printout t ?v))"
                ))
                .expect("inert rule loads");
        }
        group.bench_function(format!("assert+fire with {extra_rules} unrelated rules"), |b| {
            let mut n = 0i64;
            b.iter(|| {
                n += 1;
                let fact = engine
                    .fact("ev")
                    .unwrap()
                    .slot("kind", secpert_engine::Value::sym("open"))
                    .slot("n", 100 + n)
                    .build()
                    .unwrap();
                engine.assert_fact(fact).unwrap();
                engine.run(None).unwrap()
            });
        });
    }
    group.finish();
}

/// The workload for the naive-vs-Rete scaling curve: a variable join
/// against a large resident template plus a `not` CE over the event
/// template. The naive matcher recomputes both per event — O(resident
/// facts) — while Rete probes the slot-value index and touches only the
/// tokens the event intersects.
const SCALING_RULES: &str = r#"
    (deftemplate session (slot id) (slot state))
    (deftemplate event (slot sid) (slot kind))
    (defrule join-open
      ?e <- (event (sid ?s) (kind open))
      (session (id ?s) (state live))
      =>
      (retract ?e))
    (defrule watch-zero
      (session (id 0) (state live))
      (not (event (sid 0) (kind close)))
      =>
      (printout t watched))
"#;

/// Builds an engine on `matcher` with `resident` live `session` facts.
fn scaling_engine(matcher: Matcher, resident: usize) -> Engine {
    let mut engine = Engine::with_matcher(matcher);
    engine.load_str(SCALING_RULES).expect("scaling rules load");
    for i in 0..resident {
        let fact = engine
            .fact("session")
            .unwrap()
            .slot("id", i as i64)
            .slot("state", Value::sym("live"))
            .build()
            .unwrap();
        engine.assert_fact(fact).unwrap();
    }
    engine.run(None).expect("initial activations drain");
    engine
}

/// Pushes `events` open-events through the engine; each assert joins
/// against the resident sessions, fires `join-open`, and is retracted
/// by the RHS. Returns (elapsed, rules fired) for equivalence checks.
fn scaling_run(engine: &mut Engine, events: usize, resident: usize) -> (Duration, usize) {
    let before = engine.fired_total();
    let start = Instant::now();
    for i in 0..events {
        let fact = engine
            .fact("event")
            .unwrap()
            .slot("sid", (i % resident) as i64)
            .slot("kind", Value::sym("open"))
            .build()
            .unwrap();
        engine.assert_fact(fact).unwrap();
        engine.run(None).unwrap();
    }
    (start.elapsed(), engine.fired_total() - before)
}

/// One point on the curve: both matchers over the same workload.
fn scaling_point(resident: usize, events: usize) -> Json {
    let mut naive = scaling_engine(Matcher::Naive, resident);
    let mut rete = scaling_engine(Matcher::Rete, resident);
    let (naive_time, naive_fired) = scaling_run(&mut naive, events, resident);
    let (rete_time, rete_fired) = scaling_run(&mut rete, events, resident);
    assert_eq!(naive_fired, rete_fired, "matchers diverged at {resident} resident facts");
    assert_eq!(naive_fired, events, "every event should fire join-open once");
    let naive_us = naive_time.as_secs_f64() * 1e6 / events as f64;
    let rete_us = rete_time.as_secs_f64() * 1e6 / events as f64;
    let speedup = naive_us / rete_us.max(1e-9);
    println!(
        "engine/wm-scaling: {resident:>6} resident facts, {events:>5} events: \
         naive {naive_us:>9.2} us/event, rete {rete_us:>7.2} us/event, speedup {speedup:>7.1}x"
    );
    Json::Obj(vec![
        ("resident_facts".into(), Json::Num(resident as f64)),
        ("events".into(), Json::Num(events as f64)),
        ("naive_us_per_event".into(), Json::Num(naive_us)),
        ("rete_us_per_event".into(), Json::Num(rete_us)),
        ("speedup".into(), Json::Num(speedup)),
    ])
}

/// Working-memory scaling curve: per-event latency for the naive
/// full-join matcher vs the incremental Rete network as resident facts
/// grow. Writes `BENCH_engine.json` at the repo root (skipped under
/// `--test`, which instead runs a tiny smoke configuration).
fn wm_scaling() {
    let test_mode = std::env::args().skip(1).any(|a| a == "--test");
    if test_mode {
        // Smoke: the equivalence asserts inside scaling_point are the test.
        scaling_point(50, 25);
        println!("test engine_wm_scaling ... ok");
        return;
    }
    let mut rows = Vec::new();
    let mut speedup_at_10k = 0.0;
    for (resident, events) in [(100usize, 4000usize), (1_000, 2000), (10_000, 400)] {
        let row = scaling_point(resident, events);
        if resident >= 10_000 {
            if let Some(Json::Num(s)) = row.get("speedup") {
                speedup_at_10k = *s;
            }
        }
        rows.push(row);
    }
    let json = Json::Obj(vec![
        ("bench".into(), Json::Str("engine_wm_scaling".into())),
        ("workload".into(), Json::Str("join + not, event assert/fire/retract cycle".into())),
        ("rows".into(), Json::Arr(rows)),
        ("speedup_at_10k".into(), Json::Num(speedup_at_10k)),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    std::fs::write(path, json.to_string_pretty() + "\n").expect("write BENCH_engine.json");
    println!("engine/wm-scaling: wrote {path}");
}
