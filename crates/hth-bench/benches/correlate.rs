//! Correlator cost model: what cross-session correlation adds on top of
//! per-session analysis.
//!
//! Two questions, two measurements:
//!
//! * **Digest build** — the per-event overhead every shard pays to keep
//!   a [`DigestBuilder`] current ([`DigestBuilder::observe`] over the
//!   coordinated campaign's recorded streams, replicated), in events
//!   per second. This is the tax on the hot path.
//! * **Correlation pass** — [`Correlator::correlate`] latency as the
//!   fleet grows (campaign digests replicated to 12, 120 and 1200
//!   sessions with distinct ids and labels), in µs per digest. This is
//!   the cost of one `stats()` / drain / `--correlate` pass, off the
//!   hot path.
//!
//! Results go to `BENCH_correlate.json` at the repo root. Run with
//! `cargo bench -p hth-bench --bench correlate`; `--test` runs a tiny
//! configuration as a smoke check and writes nothing.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use harrier::SecpertEvent;
use hth_bench::json::Json;
use hth_core::{
    digest_session, CorrelateConfig, Correlator, DigestBuilder, Session, SessionConfig,
    SessionDigest,
};

/// Runs the coordinated campaign once, collecting each session's raw
/// event stream and its finished digest.
fn capture_campaign() -> (Vec<Vec<SecpertEvent>>, Vec<SessionDigest>) {
    let mut streams = Vec::new();
    let mut digests = Vec::new();
    for (sid, scenario) in hth_workloads::coordinated::scenarios().iter().enumerate() {
        let events = Arc::new(Mutex::new(Vec::new()));
        let mut session = Session::new(SessionConfig::default()).expect("policy loads");
        let start = (scenario.setup)(&mut session);
        let sink = Arc::clone(&events);
        session.set_event_tap(Box::new(move |event| {
            sink.lock().expect("event sink").push(event.clone());
        }));
        let argv: Vec<&str> = start.argv.iter().map(String::as_str).collect();
        let env: Vec<(&str, &str)> =
            start.env.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
        session.start(start.path, &argv, &env).expect("spawns");
        session.run().expect("runs");
        digests.push(digest_session(sid as u64, scenario.id, session.events(), session.warnings()));
        drop(session);
        streams.push(
            Arc::try_unwrap(events)
                .unwrap_or_else(|_| unreachable!("tap dropped with the session"))
                .into_inner()
                .expect("event sink"),
        );
    }
    (streams, digests)
}

/// `replicas` copies of the campaign with distinct session ids and
/// labels — a fleet of `12 * replicas` sessions that still coordinates.
fn fleet_of(base: &[SessionDigest], replicas: usize) -> Vec<SessionDigest> {
    let mut fleet = Vec::with_capacity(base.len() * replicas);
    for r in 0..replicas {
        for d in base {
            let mut copy = d.clone();
            copy.session = (r * base.len()) as u64 + d.session;
            copy.label = format!("{}#{r}", d.label);
            fleet.push(copy);
        }
    }
    fleet
}

/// Measures `DigestBuilder::observe` over every campaign stream,
/// `replicate` times.
fn measure_digest_build(streams: &[Vec<SecpertEvent>], replicate: usize) -> (u64, Duration) {
    let start = Instant::now();
    let mut observed = 0u64;
    for r in 0..replicate {
        for (sid, stream) in streams.iter().enumerate() {
            let mut builder = DigestBuilder::new((r * streams.len() + sid) as u64, "bench");
            for event in stream {
                builder.observe(event);
                observed += 1;
            }
            assert!(!builder.finish().is_quiet(), "campaign sessions are never quiet");
        }
    }
    (observed, start.elapsed())
}

struct Pass {
    sessions: usize,
    warnings: usize,
    elapsed: Duration,
}

/// Measures one full correlation pass over a fleet (best of three).
fn measure_correlate(fleet: &[SessionDigest]) -> Pass {
    let mut correlator = Correlator::new(CorrelateConfig::default());
    for d in fleet {
        correlator.ingest(d.clone());
    }
    let mut best: Option<Pass> = None;
    for _ in 0..3 {
        let start = Instant::now();
        let report = correlator.correlate().expect("correlate");
        let pass = Pass {
            sessions: fleet.len(),
            warnings: report.warnings.len(),
            elapsed: start.elapsed(),
        };
        assert!(pass.warnings >= 3, "a coordinated fleet must warn");
        if best.as_ref().is_none_or(|b| pass.elapsed < b.elapsed) {
            best = Some(pass);
        }
    }
    best.expect("three runs")
}

fn main() {
    let test_mode = std::env::args().skip(1).any(|a| a == "--test");
    let (streams, digests) = capture_campaign();

    if test_mode {
        let (observed, _) = measure_digest_build(&streams, 1);
        assert_eq!(observed, streams.iter().map(Vec::len).sum::<usize>() as u64);
        let pass = measure_correlate(&digests);
        assert_eq!(pass.sessions, 12);
        println!("test correlate ... ok");
        return;
    }

    let replicate = 2000;
    let (observed, build_elapsed) = measure_digest_build(&streams, replicate);
    let events_per_sec = observed as f64 / build_elapsed.as_secs_f64().max(1e-9);
    println!(
        "digest_build: {observed} events observed in {build_elapsed:.2?} ({events_per_sec:.0} events/sec, {:.0} ns/event)",
        build_elapsed.as_secs_f64() * 1e9 / observed as f64
    );

    let mut rows = Vec::new();
    for replicas in [1usize, 10, 100] {
        let fleet = fleet_of(&digests, replicas);
        let pass = measure_correlate(&fleet);
        let us_per_digest = pass.elapsed.as_secs_f64() * 1e6 / pass.sessions as f64;
        println!(
            "correlate/sessions={:<5} {:>2} warnings in {:>8.2?}  ({:>7.1} us/digest)",
            pass.sessions, pass.warnings, pass.elapsed, us_per_digest
        );
        rows.push((pass, us_per_digest));
    }

    let json = Json::Obj(vec![
        ("bench".into(), Json::Str("correlate".into())),
        (
            "digest_build".into(),
            Json::Obj(vec![
                ("events".into(), Json::Num(observed as f64)),
                ("elapsed_ms".into(), Json::Num(build_elapsed.as_secs_f64() * 1e3)),
                ("events_per_sec".into(), Json::Num(events_per_sec)),
            ]),
        ),
        (
            "correlate".into(),
            Json::Arr(
                rows.iter()
                    .map(|(pass, us_per_digest)| {
                        Json::Obj(vec![
                            ("sessions".into(), Json::Num(pass.sessions as f64)),
                            ("warnings".into(), Json::Num(pass.warnings as f64)),
                            ("elapsed_ms".into(), Json::Num(pass.elapsed.as_secs_f64() * 1e3)),
                            ("us_per_digest".into(), Json::Num(*us_per_digest)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_correlate.json");
    std::fs::write(path, json.to_string_pretty() + "\n").expect("write BENCH_correlate.json");
    println!("wrote {path}");
}
