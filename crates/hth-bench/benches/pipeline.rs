//! Criterion benches for the full HTH pipeline: complete monitored runs
//! of representative scenarios (one benign, one Trojan, one multi-process
//! backdoor).

use criterion::{criterion_group, criterion_main, Criterion};
use hth_workloads::{exploits, micro, trusted};

fn bench_scenarios(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("trusted/ls (benign)", |b| {
        b.iter(|| {
            let scenario = &trusted::scenarios()[0];
            scenario.run().expect("runs").warnings.len()
        })
    });
    group.bench_function("micro/execve_hardcode (Low)", |b| {
        b.iter(|| {
            let scenario = &micro::exec_flow::scenarios()[1];
            scenario.run().expect("runs").warnings.len()
        })
    });
    group.bench_function("exploit/grabem (High)", |b| {
        b.iter(|| {
            let scenario = &exploits::scenarios()[3];
            scenario.run().expect("runs").warnings.len()
        })
    });
    group.bench_function("exploit/pma (multi-process backdoor)", |b| {
        b.iter(|| {
            let scenario = &exploits::scenarios()[5];
            scenario.run().expect("runs").warnings.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_scenarios);
criterion_main!(benches);
