//! Batched-pipeline bench: µs/event decomposed by stage, and the
//! batched-vs-per-event shard throughput that justifies the batch path.
//!
//! The Table 8 exploit corpus is captured once (timing the monitor —
//! emulation plus taint tracking — as the `taint` stage), encoded to an
//! in-memory journal, and then each downstream stage is timed in
//! isolation over many passes:
//!
//! * `decode`     — journal frames → [`EventBatch`] refills,
//! * `taint`      — monitor-side event production (emulation + taint),
//! * `fact_build` — [`Secpert::build_fact`]: event → engine fact,
//!   through the expert's interning tables, no assertion,
//! * `match`      — `process_batch` minus `fact_build`: alpha gate,
//!   assert, Rete propagation, rule firings, provenance,
//! * `dispatch`   — single-shard pool end-to-end minus `process_batch`:
//!   queue, lock, condvar and sink crossings.
//!
//! The headline number is single-shard pool throughput at the default
//! batch size versus `batch_size=1` (the pre-batching per-event path,
//! preserved verbatim); both runs must produce the same warning count.
//! Results go to `BENCH_pipeline.json` at the repo root.
//!
//! Run with `cargo bench -p hth-bench --bench pipeline`; `--test` runs
//! a tiny configuration as a smoke check and writes nothing.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use harrier::SecpertEvent;
use hth_bench::json::Json;
use hth_core::{PolicyConfig, Secpert, Session, SessionConfig};
use hth_fleet::{AnalystPool, Backpressure, EventBatch, JournalReader, JournalWriter, PoolConfig};

const DEFAULT_BATCH: usize = 64;

/// Pre-PR single-shard pipeline cost, measured on this machine at the
/// growth seed (commit `f59bff8`, before the batched shard path and
/// the single-CE fast match existed) with an identical harness: the
/// full Table 8 exploit corpus fanned into a one-shard pool, per-event
/// submit, queue 4096/Block, replicate 8, best of 3. Override with
/// `HTH_BASELINE_US_PER_EVENT` when re-baselining on other hardware.
const PRE_PR_US_PER_EVENT: f64 = 65.220;

/// Runs the exploit corpus once with inline analysis off, collecting
/// every event and timing the monitor-side production (the `taint`
/// stage: emulation plus dataflow tracking).
fn capture_corpus(scenario_cap: usize) -> (Vec<SecpertEvent>, Duration) {
    let events = Arc::new(Mutex::new(Vec::new()));
    let start = Instant::now();
    for scenario in hth_workloads::exploits::scenarios().into_iter().take(scenario_cap) {
        let config =
            SessionConfig { analyze_inline: false, record_events: false, ..Default::default() };
        let mut session = Session::new(config).expect("policy loads");
        let begin = (scenario.setup)(&mut session);
        let sink = Arc::clone(&events);
        session.set_event_tap(Box::new(move |event| {
            sink.lock().expect("corpus sink").push(event.clone());
        }));
        let argv: Vec<&str> = begin.argv.iter().map(String::as_str).collect();
        let env: Vec<(&str, &str)> =
            begin.env.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
        session.start(begin.path, &argv, &env).expect("spawns");
        session.run().expect("runs");
    }
    let elapsed = start.elapsed();
    let corpus = Arc::try_unwrap(events)
        .unwrap_or_else(|_| unreachable!("sessions dropped"))
        .into_inner()
        .expect("corpus sink");
    (corpus, elapsed)
}

/// Encodes the corpus into an in-memory journal.
fn encode(corpus: &[SecpertEvent]) -> Vec<u8> {
    let mut writer = JournalWriter::new(Vec::new()).expect("header");
    for event in corpus {
        writer.append(event).expect("append");
    }
    writer.finish().expect("finish")
}

/// Decodes the whole journal through a reusable [`EventBatch`],
/// returning the event count and elapsed time for one pass.
fn decode_pass(journal: &[u8], batch: &mut EventBatch) -> (u64, Duration) {
    let start = Instant::now();
    let mut reader = JournalReader::new(journal).expect("header");
    let mut events = 0u64;
    loop {
        let n = batch.refill(&mut reader, DEFAULT_BATCH).expect("decode");
        if n == 0 {
            break;
        }
        events += n as u64;
    }
    (events, start.elapsed())
}

/// One pass of fact construction over the corpus (no assertion).
fn fact_build_pass(secpert: &mut Secpert, corpus: &[SecpertEvent]) -> Duration {
    let start = Instant::now();
    for event in corpus {
        let fact = secpert.build_fact(event).expect("fact");
        std::hint::black_box(&fact);
    }
    start.elapsed()
}

/// One pass of full analysis (gate, fact, assert, match, provenance)
/// over the corpus, fed `DEFAULT_BATCH` events at a time.
fn analysis_pass(secpert: &mut Secpert, corpus: &[SecpertEvent]) -> Duration {
    let start = Instant::now();
    for run in corpus.chunks(DEFAULT_BATCH) {
        secpert.process_batch(run).expect("analysis");
    }
    start.elapsed()
}

/// Fans `replicate` copies of the corpus into a fresh single-shard
/// pool at the given batch size (batch 1 submits per event — the
/// pre-batching path) and returns (events analysed, warning count,
/// drain-to-drain elapsed).
fn pool_pass(
    corpus: &Arc<Vec<SecpertEvent>>,
    batch_size: usize,
    replicate: usize,
    flight_capacity: usize,
) -> (u64, usize, Duration) {
    let config = PoolConfig {
        shards: 1,
        queue_capacity: 4096,
        backpressure: Backpressure::Block,
        batch_size,
        flight_capacity,
        ..PoolConfig::default()
    };
    let pool = AnalystPool::new(&config, &PolicyConfig::default()).expect("policy loads");
    let start = Instant::now();
    let mut buffer: Vec<SecpertEvent> = Vec::with_capacity(batch_size);
    for r in 0..replicate {
        let sid = r as u64;
        if batch_size <= 1 {
            for event in corpus.iter() {
                pool.submit(sid, event.clone());
            }
        } else {
            for run in corpus.chunks(batch_size) {
                buffer.extend(run.iter().cloned());
                pool.submit_batch(sid, &mut buffer);
            }
        }
    }
    let report = pool.finish();
    let elapsed = start.elapsed();
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    (report.events, report.warnings.len(), elapsed)
}

fn per_event_us(elapsed: Duration, events: u64) -> f64 {
    elapsed.as_secs_f64() * 1e6 / (events as f64).max(1.0)
}

/// Best (minimum) duration over `n` runs of a pass — the fastest run
/// is the least-perturbed one.
fn best_of(n: usize, mut pass: impl FnMut() -> Duration) -> Duration {
    (0..n).map(|_| pass()).min().expect("at least one run")
}

fn main() {
    let test_mode = std::env::args().skip(1).any(|a| a == "--test");
    if test_mode {
        let (corpus, _taint) = capture_corpus(2);
        assert!(!corpus.is_empty(), "corpus capture produced no events");
        let journal = encode(&corpus);
        let mut batch = EventBatch::with_capacity(DEFAULT_BATCH);
        let (decoded, _) = decode_pass(&journal, &mut batch);
        assert_eq!(decoded, corpus.len() as u64, "decode must round-trip the corpus");
        let mut secpert = Secpert::new(&PolicyConfig::default()).expect("policy loads");
        fact_build_pass(&mut secpert, &corpus);
        let mut secpert = Secpert::new(&PolicyConfig::default()).expect("policy loads");
        analysis_pass(&mut secpert, &corpus);
        let shared = Arc::new(corpus);
        let flight_cap = PoolConfig::default().flight_capacity;
        let (batched_events, batched_warnings, _) =
            pool_pass(&shared, DEFAULT_BATCH, 1, flight_cap);
        let (serial_events, serial_warnings, _) = pool_pass(&shared, 1, 1, flight_cap);
        assert_eq!(batched_events, serial_events, "batched pool must analyse every event");
        assert_eq!(
            batched_warnings, serial_warnings,
            "batched pool must warn exactly like the per-event pool"
        );
        // Flight-recorder overhead gate, smoke edition: the corpus is
        // tiny here, so the bound is permissive (2x) — the real <= 2%
        // assertion runs in the full bench. Interleaved best-of-3
        // minimums keep a scheduler hiccup from failing the smoke.
        let mut with_flight = Duration::MAX;
        let mut without_flight = Duration::MAX;
        for _ in 0..3 {
            with_flight = with_flight.min(pool_pass(&shared, DEFAULT_BATCH, 1, flight_cap).2);
            without_flight = without_flight.min(pool_pass(&shared, DEFAULT_BATCH, 1, 0).2);
        }
        assert!(
            with_flight <= without_flight * 2,
            "flight recorder smoke gate: on {with_flight:?} vs off {without_flight:?}"
        );
        println!("test pipeline_stages ... ok");
        return;
    }

    let cpus = std::thread::available_parallelism().map_or(1, usize::from);
    let (corpus, taint_elapsed) = capture_corpus(usize::MAX);
    let events = corpus.len() as u64;
    let journal = encode(&corpus);
    println!(
        "pipeline: corpus {} events ({} journal bytes), batch {}, {} cpus",
        events,
        journal.len(),
        DEFAULT_BATCH,
        cpus
    );

    // Stage: decode.
    let mut batch = EventBatch::with_capacity(DEFAULT_BATCH);
    let decode = best_of(5, || {
        let (n, elapsed) = decode_pass(&journal, &mut batch);
        assert_eq!(n, events);
        elapsed
    });

    // Stage: fact_build. One warm-up pass populates the interning
    // tables; timed passes see the steady state the shard loop sees.
    let mut secpert = Secpert::new(&PolicyConfig::default()).expect("policy loads");
    fact_build_pass(&mut secpert, &corpus);
    let fact_build = best_of(5, || fact_build_pass(&mut secpert, &corpus));

    // Stage: match (full analysis minus fact construction). The same
    // engine absorbs every pass; the policy's cleanup rules retract
    // event facts, so working memory stays bounded.
    let mut secpert = Secpert::new(&PolicyConfig::default()).expect("policy loads");
    analysis_pass(&mut secpert, &corpus);
    let analysis = best_of(5, || analysis_pass(&mut secpert, &corpus));

    // Stage: dispatch (pool end-to-end minus analysis), plus the
    // headline batched-vs-serial throughput.
    let corpus = Arc::new(corpus);
    let replicate = 8;
    let flight_cap = PoolConfig::default().flight_capacity;
    let (batched_events, batched_warnings, batched_elapsed) = (0..3)
        .map(|_| pool_pass(&corpus, DEFAULT_BATCH, replicate, flight_cap))
        .min_by(|a, b| a.2.cmp(&b.2))
        .expect("three runs");
    let (serial_events, serial_warnings, serial_elapsed) = (0..3)
        .map(|_| pool_pass(&corpus, 1, replicate, flight_cap))
        .min_by(|a, b| a.2.cmp(&b.2))
        .expect("three runs");
    assert_eq!(batched_events, serial_events);
    assert_eq!(
        batched_warnings, serial_warnings,
        "batched pool must warn exactly like the per-event pool"
    );

    // Flight-recorder overhead: the recorder is always on in the
    // shipped configuration, so its cost must disappear into the noise
    // floor. Interleaved best-of-3 pairs (on, off, on, off, ...) keep
    // slow machine-wide perturbations from landing on only one side.
    let mut flight_on = Duration::MAX;
    let mut flight_off = Duration::MAX;
    for _ in 0..3 {
        flight_on = flight_on.min(pool_pass(&corpus, DEFAULT_BATCH, replicate, flight_cap).2);
        flight_off = flight_off.min(pool_pass(&corpus, DEFAULT_BATCH, replicate, 0).2);
    }
    let flight_on_us = per_event_us(flight_on, batched_events);
    let flight_off_us = per_event_us(flight_off, batched_events);
    let flight_overhead_pct = (flight_on_us - flight_off_us) / flight_off_us.max(1e-9) * 100.0;
    assert!(
        flight_overhead_pct <= 2.0,
        "flight recorder overhead {flight_overhead_pct:.3}% exceeds the 2% budget \
         (on {flight_on_us:.3} us/event vs off {flight_off_us:.3} us/event)"
    );

    let taint_us = per_event_us(taint_elapsed, events);
    let decode_us = per_event_us(decode, events);
    let fact_build_us = per_event_us(fact_build, events);
    let analysis_us = per_event_us(analysis, events);
    let match_us = (analysis_us - fact_build_us).max(0.0);
    let batched_us = per_event_us(batched_elapsed, batched_events);
    let serial_us = per_event_us(serial_elapsed, serial_events);
    let dispatch_us = (batched_us - analysis_us).max(0.0);
    let batched_eps = batched_events as f64 / batched_elapsed.as_secs_f64().max(1e-9);
    let serial_eps = serial_events as f64 / serial_elapsed.as_secs_f64().max(1e-9);
    let speedup = batched_eps / serial_eps.max(1e-9);
    let baseline_us = std::env::var("HTH_BASELINE_US_PER_EVENT")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(PRE_PR_US_PER_EVENT);
    let baseline_eps = 1e6 / baseline_us;
    let speedup_vs_pre_pr = batched_eps / baseline_eps.max(1e-9);

    println!("pipeline/stage decode     {decode_us:>8.3} us/event");
    println!("pipeline/stage taint      {taint_us:>8.3} us/event  (monitor-side production)");
    println!("pipeline/stage fact_build {fact_build_us:>8.3} us/event");
    println!("pipeline/stage match      {match_us:>8.3} us/event");
    println!("pipeline/stage dispatch   {dispatch_us:>8.3} us/event  (batch {DEFAULT_BATCH})");
    println!(
        "pipeline/shard batch={DEFAULT_BATCH:<3} {batched_us:>8.3} us/event  ({batched_eps:>10.0} events/sec)"
    );
    println!("pipeline/shard batch=1   {serial_us:>8.3} us/event  ({serial_eps:>10.0} events/sec)");
    println!("pipeline: batched single-shard speedup over per-event: {speedup:.2}x");
    println!(
        "pipeline: flight recorder overhead {flight_overhead_pct:.3}%  \
         (on {flight_on_us:.3} vs off {flight_off_us:.3} us/event, budget 2%)"
    );
    println!(
        "pipeline: batched single-shard speedup over pre-PR pipeline \
         ({baseline_us:.3} us/event at seed): {speedup_vs_pre_pr:.2}x"
    );

    let json = Json::Obj(vec![
        ("bench".into(), Json::Str("pipeline_stages".into())),
        ("cpus".into(), Json::Num(cpus as f64)),
        ("corpus_events".into(), Json::Num(events as f64)),
        ("journal_bytes".into(), Json::Num(journal.len() as f64)),
        ("batch_size".into(), Json::Num(DEFAULT_BATCH as f64)),
        (
            "stages_us_per_event".into(),
            Json::Obj(vec![
                ("decode".into(), Json::Num(decode_us)),
                ("taint".into(), Json::Num(taint_us)),
                ("fact_build".into(), Json::Num(fact_build_us)),
                ("match".into(), Json::Num(match_us)),
                ("dispatch".into(), Json::Num(dispatch_us)),
            ]),
        ),
        (
            "single_shard".into(),
            Json::Obj(vec![
                (
                    "batched".into(),
                    Json::Obj(vec![
                        ("batch_size".into(), Json::Num(DEFAULT_BATCH as f64)),
                        ("events".into(), Json::Num(batched_events as f64)),
                        ("warnings".into(), Json::Num(batched_warnings as f64)),
                        ("elapsed_ms".into(), Json::Num(batched_elapsed.as_secs_f64() * 1e3)),
                        ("us_per_event".into(), Json::Num(batched_us)),
                        ("events_per_sec".into(), Json::Num(batched_eps)),
                    ]),
                ),
                (
                    "per_event".into(),
                    Json::Obj(vec![
                        ("batch_size".into(), Json::Num(1.0)),
                        ("events".into(), Json::Num(serial_events as f64)),
                        ("warnings".into(), Json::Num(serial_warnings as f64)),
                        ("elapsed_ms".into(), Json::Num(serial_elapsed.as_secs_f64() * 1e3)),
                        ("us_per_event".into(), Json::Num(serial_us)),
                        ("events_per_sec".into(), Json::Num(serial_eps)),
                    ]),
                ),
            ]),
        ),
        ("speedup_batched_vs_per_event".into(), Json::Num(speedup)),
        (
            "flight_recorder".into(),
            Json::Obj(vec![
                ("capacity".into(), Json::Num(flight_cap as f64)),
                ("on_us_per_event".into(), Json::Num(flight_on_us)),
                ("off_us_per_event".into(), Json::Num(flight_off_us)),
                ("overhead_pct".into(), Json::Num(flight_overhead_pct)),
                ("budget_pct".into(), Json::Num(2.0)),
            ]),
        ),
        (
            "pre_pr_baseline".into(),
            Json::Obj(vec![
                ("commit".into(), Json::Str("f59bff8".into())),
                ("us_per_event".into(), Json::Num(baseline_us)),
                ("events_per_sec".into(), Json::Num(baseline_eps)),
                (
                    "harness".into(),
                    Json::Str(
                        "same corpus, 1 shard, per-event submit, queue 4096/Block, \
                         replicate 8, best of 3"
                            .into(),
                    ),
                ),
            ]),
        ),
        ("speedup_batched_vs_pre_pr".into(), Json::Num(speedup_vs_pre_pr)),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
    std::fs::write(path, json.to_string_pretty() + "\n").expect("write BENCH_pipeline.json");
    println!("wrote {path}");
}
