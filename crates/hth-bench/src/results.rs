//! Machine-readable experiment results (JSON), so downstream tooling
//! can diff reproduction runs without scraping text tables.

use hth_workloads::Scenario;

use crate::json::{Json, ToJson};
use crate::perf::{self, PerfRow};

/// One scenario's outcome.
#[derive(Clone, Debug)]
pub struct ScenarioOutcome {
    /// Scenario id (paper row).
    pub id: String,
    /// Paper table/section.
    pub table: String,
    /// Expected classification (debug rendering).
    pub expected: String,
    /// Observed maximum severity (`null` = silent).
    pub observed: Option<String>,
    /// Rules that fired.
    pub rules: Vec<String>,
    /// Warning count.
    pub warnings: usize,
    /// Harrier events processed.
    pub events: usize,
    /// Did the outcome match the expectation?
    pub correct: bool,
}

impl ToJson for ScenarioOutcome {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("id".into(), self.id.to_json()),
            ("table".into(), self.table.to_json()),
            ("expected".into(), self.expected.to_json()),
            ("observed".into(), self.observed.to_json()),
            ("rules".into(), self.rules.to_json()),
            ("warnings".into(), self.warnings.to_json()),
            ("events".into(), self.events.to_json()),
            ("correct".into(), self.correct.to_json()),
        ])
    }
}

/// One §9 ablation row.
#[derive(Clone, Debug)]
pub struct PerfOutcome {
    /// Configuration name.
    pub config: String,
    /// Instructions retired.
    pub instructions: u64,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Slowdown vs. the bare interpreter.
    pub slowdown: f64,
}

impl From<PerfRow> for PerfOutcome {
    fn from(row: PerfRow) -> PerfOutcome {
        PerfOutcome {
            config: row.config.to_string(),
            instructions: row.instructions,
            seconds: row.seconds,
            slowdown: row.slowdown,
        }
    }
}

impl ToJson for PerfOutcome {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("config".into(), self.config.to_json()),
            ("instructions".into(), self.instructions.to_json()),
            ("seconds".into(), self.seconds.to_json()),
            ("slowdown".into(), self.slowdown.to_json()),
        ])
    }
}

/// The complete result set of one reproduction run.
#[derive(Clone, Debug)]
pub struct RunResults {
    /// Per-scenario classification outcomes (Tables 4–8, §8.4, §10).
    pub scenarios: Vec<ScenarioOutcome>,
    /// §9 ablation.
    pub perf: Vec<PerfOutcome>,
    /// Count of correctly classified scenarios.
    pub correct: usize,
    /// Total scenarios.
    pub total: usize,
}

impl ToJson for RunResults {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("scenarios".into(), self.scenarios.to_json()),
            ("perf".into(), self.perf.to_json()),
            ("correct".into(), self.correct.to_json()),
            ("total".into(), self.total.to_json()),
        ])
    }
}

/// Runs every scenario plus a small perf ablation and collects the
/// outcomes.
pub fn collect(perf_outer: u32) -> RunResults {
    let mut scenarios = Vec::new();
    for scenario in hth_workloads::all_scenarios() {
        scenarios.push(run_one(&scenario));
    }
    let correct = scenarios.iter().filter(|s| s.correct).count();
    let total = scenarios.len();
    RunResults {
        scenarios,
        perf: perf::ablation(perf_outer).into_iter().map(PerfOutcome::from).collect(),
        correct,
        total,
    }
}

fn run_one(scenario: &Scenario) -> ScenarioOutcome {
    let result = scenario.run().expect("scenario runs");
    ScenarioOutcome {
        id: scenario.id.to_string(),
        table: scenario.group.table().to_string(),
        expected: format!("{:?}", scenario.expected),
        observed: result.max_severity().map(|s| s.label().to_string()),
        rules: result.rules_fired().iter().map(|r| r.to_string()).collect(),
        warnings: result.warnings.len(),
        events: result.events,
        correct: result.correct(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_is_serializable_and_all_correct() {
        let results = collect(20);
        assert_eq!(results.correct, results.total);
        assert!(results.total >= 50);
        let json = results.to_json().to_string_pretty();
        assert!(json.contains("\"id\": \"pma\""));
        assert!(json.contains("\"perf\""));
        let parsed = Json::parse(&json).unwrap();
        assert_eq!(parsed["total"], results.total);
    }
}
