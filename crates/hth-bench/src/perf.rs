//! §9 — performance evaluation.
//!
//! The paper reports that data-flow tracking dominates Harrier's
//! overhead (its prototype was "very naive"; DOG's 5.5× is cited as the
//! state of the art). This module reproduces the *shape*: a
//! compute-heavy workload runs under increasing monitor configurations —
//! bare interpreter, syscall-events-only, +BB frequency, +full dataflow
//! — and the slowdown relative to the bare run is reported.

use std::time::Instant;

use emukernel::Kernel;
use harrier::HarrierConfig;
use hth_core::{Session, SessionConfig};
use hth_vm::{NullHooks, StepEvent};

use crate::report::Table;

/// The compute-heavy workload: a memory-copy/arithmetic kernel with a
/// few syscalls sprinkled in (so every configuration has events to
/// process), sized by `outer` loop iterations.
pub fn workload_source(outer: u32) -> String {
    format!(
        r#"
        .equ BUF, 0x09000000
        _start:
            mov edi, {outer}        ; outer loop
        outer_loop:
            mov ecx, 0
        inner_loop:
            ; load-modify-store over a 64-byte window
            mov eax, [BUF+0]
            add eax, ecx
            mov [BUF+4], eax
            mov eax, [BUF+4]
            xor eax, 0x5a5a5a5a
            mov [BUF+8], eax
            mov eax, [BUF+8]
            imul eax, 3
            mov [BUF+12], eax
            inc ecx
            cmp ecx, 40
            jne inner_loop
            ; one syscall per outer iteration
            mov eax, 13             ; time()
            int 0x80
            dec edi
            cmp edi, 0
            jne outer_loop
            mov eax, 4              ; write a footer to stdout
            mov ebx, 1
            mov ecx, msg
            mov edx, 5
            int 0x80
            mov eax, 1
            mov ebx, 0
            int 0x80
        .data
        msg: .asciz "done\n"
        "#
    )
}

/// One ablation measurement.
#[derive(Clone, Debug)]
pub struct PerfRow {
    /// Configuration name.
    pub config: &'static str,
    /// Instructions retired.
    pub instructions: u64,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Million instructions per second.
    pub mips: f64,
    /// Slowdown relative to the bare run.
    pub slowdown: f64,
}

fn run_bare(outer: u32) -> (u64, f64) {
    let mut kernel = Kernel::new();
    kernel.register_binary("/bench/compute", &workload_source(outer), &[]);
    let mut proc = kernel.spawn("/bench/compute", &["/bench/compute"], &[]).expect("spawns");
    let start = Instant::now();
    loop {
        match proc.core.step(&mut NullHooks).expect("no faults") {
            StepEvent::Continue => {}
            StepEvent::Halted => break,
            StepEvent::Interrupt(0x80) => {
                if !{
                    kernel.syscall(&mut proc);
                    proc.runnable()
                } {
                    break;
                }
            }
            StepEvent::Interrupt(_) => break,
        }
    }
    (proc.core.instret(), start.elapsed().as_secs_f64())
}

fn run_session(outer: u32, harrier: HarrierConfig) -> (u64, f64) {
    let config = SessionConfig {
        harrier,
        max_instructions: u64::MAX / 2,
        record_events: false,
        ..SessionConfig::default()
    };
    let mut session = Session::new(config).expect("policy loads");
    session.kernel.register_binary("/bench/compute", &workload_source(outer), &[]);
    session.start("/bench/compute", &["/bench/compute"], &[]).expect("spawns");
    let start = Instant::now();
    session.run().expect("runs");
    (session.instructions(), start.elapsed().as_secs_f64())
}

/// Runs the four-configuration ablation.
pub fn ablation(outer: u32) -> Vec<PerfRow> {
    let configs: [(&'static str, Option<HarrierConfig>); 4] = [
        ("bare interpreter (no monitor)", None),
        (
            "HTH: syscall events only",
            Some(HarrierConfig {
                track_dataflow: false,
                track_bb_freq: false,
                ..HarrierConfig::default()
            }),
        ),
        (
            "HTH: + BB frequency",
            Some(HarrierConfig { track_dataflow: false, ..HarrierConfig::default() }),
        ),
        ("HTH: + full data flow", Some(HarrierConfig::default())),
    ];
    let mut rows = Vec::new();
    let mut base_seconds = None;
    for (name, harrier) in configs {
        let (instructions, seconds) = match harrier {
            None => run_bare(outer),
            Some(h) => run_session(outer, h),
        };
        let base = *base_seconds.get_or_insert(seconds);
        rows.push(PerfRow {
            config: name,
            instructions,
            seconds,
            mips: instructions as f64 / seconds / 1.0e6,
            slowdown: seconds / base,
        });
    }
    rows
}

/// Renders the ablation as a table.
pub fn perf_table(outer: u32) -> Table {
    let mut t = Table::new(
        "Section 9: Monitoring overhead ablation (slowdown vs bare interpreter)",
        &["Configuration", "Instructions", "Seconds", "MIPS", "Slowdown"],
    );
    for row in ablation(outer) {
        t.row(&[
            row.config,
            &row.instructions.to_string(),
            &format!("{:.4}", row.seconds),
            &format!("{:.2}", row.mips),
            &format!("{:.2}x", row.slowdown),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_shape_matches_paper() {
        // Small workload: check ordering, not absolute numbers.
        let rows = ablation(40);
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].slowdown, 1.0);
        // All configurations retire the same workload instructions.
        for row in &rows[1..] {
            assert_eq!(row.instructions, rows[0].instructions);
        }
        // Full dataflow must be the most expensive monitored config —
        // the paper's headline claim (§9).
        let full = rows[3].seconds;
        assert!(
            full >= rows[1].seconds && full >= rows[2].seconds,
            "dataflow should dominate: {rows:?}"
        );
    }
}
