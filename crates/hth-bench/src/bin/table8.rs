//! Regenerates Table 8 of the paper.
fn main() {
    println!("{}", hth_bench::tables::table8());
}
