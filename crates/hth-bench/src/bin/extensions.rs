//! Regenerates the §10 extension results (features beyond the paper's
//! prototype, proposed in its future-work list).
fn main() {
    println!(
        "{}",
        hth_bench::tables::run_group(
            "Section 10: future-work extensions implemented by this reproduction",
            hth_workloads::extensions::scenarios(),
        )
    );
}
