//! Regenerates the Appendix A CLIPS transcript.
fn main() {
    println!("{}", hth_bench::tables::appendix_a());
}
