//! Runs the §9 monitoring-overhead ablation.
fn main() {
    let outer: u32 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(2000);
    println!("{}", hth_bench::perf::perf_table(outer));
}
