//! Regenerates the §8.4 macro-benchmark results.
fn main() {
    println!("{}", hth_bench::tables::macro_results());
}
