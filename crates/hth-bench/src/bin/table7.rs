//! Regenerates Table 7 of the paper.
fn main() {
    println!("{}", hth_bench::tables::table7());
}
