//! Runs every experiment in paper order (Tables 1-8, macro benchmarks,
//! appendices, and a small perf ablation).
use hth_bench::json::ToJson;
use hth_bench::{perf, results, tables};

fn main() {
    // `all_results --json <path>` writes machine-readable results
    // instead of text tables.
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("--json") {
        let out = results::collect(500);
        let json = out.to_json().to_string_pretty();
        match args.get(2) {
            Some(path) => {
                std::fs::write(path, &json).expect("writable path");
                eprintln!("wrote {} scenario results to {path}", out.total);
            }
            None => println!("{json}"),
        }
        return;
    }
    println!("{}", tables::table1());
    println!(
        "{}",
        tables::run_group(
            "Table 1 models: behavioural reproductions of the cataloged malware",
            hth_workloads::table1_models::scenarios(),
        )
    );
    println!("{}", tables::table2());
    println!("{}", tables::table3());
    println!("{}", tables::table4());
    println!("{}", tables::table5());
    println!("{}", tables::table6());
    println!("{}", tables::table7());
    println!("{}", tables::table8());
    println!("{}", tables::macro_results());
    println!(
        "{}",
        tables::run_group(
            "Section 10: future-work extensions implemented by this reproduction",
            hth_workloads::extensions::scenarios(),
        )
    );
    println!("{}", tables::appendix_a());
    println!("{}", tables::secure_binary());
    println!("{}", perf::perf_table(500));
}
