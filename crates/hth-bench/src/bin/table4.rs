//! Regenerates Table 4 of the paper.
fn main() {
    println!("{}", hth_bench::tables::table4());
}
