//! Regenerates Table 6 of the paper.
fn main() {
    println!("{}", hth_bench::tables::table6());
}
