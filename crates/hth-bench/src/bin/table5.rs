//! Regenerates Table 5 of the paper.
fn main() {
    println!("{}", hth_bench::tables::table5());
}
