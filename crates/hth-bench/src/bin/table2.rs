//! Regenerates Table 2 of the paper.
fn main() {
    println!("{}", hth_bench::tables::table2());
}
