//! Regenerates Table 1 of the paper.
fn main() {
    println!("{}", hth_bench::tables::table1());
}
