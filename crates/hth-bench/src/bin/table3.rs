//! Regenerates Table 3 of the paper.
fn main() {
    println!("{}", hth_bench::tables::table3());
}
