//! Reproduces Figure 5 of the paper: the original program listing on
//! the left, and the instrumented view — with the analysis calls the
//! monitor actually performs per instruction — on the right.
//!
//! The paper shows Pin inserting `Track_DataFlow`, `Collect_BB_Frequency`
//! and `Monitor_SystemCalls` calls; here a recording hook set observes
//! the interpreter issuing exactly those callbacks.

use std::collections::BTreeMap;

use hth_vm::{asm, Core, Hooks, ImageId, Instr, StepEvent, TaintOp};

/// The paper's Figure 5 example: data moves, a branch, and a syscall.
const FIGURE5_SOURCE: &str = r"
_start:
    mov eax, edi
    jne skip
skip:
    mov ebx, 0x0
    xor edx, edx
    mov ecx, esi
    mov eax, 0x5
    int 0x80
    hlt
";

#[derive(Default)]
struct Recorder {
    /// addr → analysis calls observed before/at that instruction.
    calls: BTreeMap<u32, Vec<&'static str>>,
    current: u32,
}

impl Hooks for Recorder {
    fn on_bb(&mut self, _image: ImageId, leader: u32) {
        self.calls.entry(leader).or_default().push("Collect_BB_Frequency");
    }

    fn on_instr(&mut self, _image: ImageId, addr: u32, instr: &Instr) {
        self.current = addr;
        if matches!(instr, Instr::Int(0x80)) {
            self.calls.entry(addr).or_default().push("Monitor_SystemCalls");
        }
    }

    fn on_taint(&mut self, _image: ImageId, _op: &TaintOp) {
        self.calls.entry(self.current).or_default().push("Track_DataFlow");
    }
}

fn main() {
    let image = asm::assemble("/bench/figure5", FIGURE5_SOURCE, 0x0804_8000)
        .expect("figure 5 source assembles");
    let listing: Vec<(u32, String)> = image
        .text()
        .iter()
        .enumerate()
        .map(|(i, instr)| (image.addr_of(i), instr.to_string()))
        .collect();
    let mut core = Core::new();
    core.load_image(image);
    core.link().expect("no externs");
    core.start();
    let mut recorder = Recorder::default();
    loop {
        match core.step(&mut recorder).expect("runs") {
            StepEvent::Continue => {}
            StepEvent::Interrupt(_) => {
                // Skip kernel servicing; resume after the int.
                continue;
            }
            StepEvent::Halted => break,
        }
    }

    println!("Figure 5: Harrier instrumentation example");
    println!("==========================================\n");
    println!("{:<28}   instrumented execution", "original code");
    println!("{:<28}   ----------------------", "-------------");
    for (addr, text) in &listing {
        let mut first = true;
        if let Some(calls) = recorder.calls.get(addr) {
            // Deduplicate repeated dataflow calls for display.
            let mut seen = Vec::new();
            for call in calls {
                if !seen.contains(call) {
                    seen.push(call);
                }
            }
            for call in seen {
                if first {
                    println!("{text:<28}   Call {call}");
                    first = false;
                } else {
                    println!("{:<28}   Call {call}", "");
                }
            }
        }
        if first {
            println!("{text:<28}");
        }
    }
}
