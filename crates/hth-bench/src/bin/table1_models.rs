//! Runs the behavioural models of the Table 1 real-world malware.
fn main() {
    println!(
        "{}",
        hth_bench::tables::run_group(
            "Table 1 models: behavioural reproductions of the cataloged malware",
            hth_workloads::table1_models::scenarios(),
        )
    );
}
