//! Runs the Appendix B Secure Binary audit demonstration.
fn main() {
    println!("{}", hth_bench::tables::secure_binary());
}
