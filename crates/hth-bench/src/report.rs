//! Plain-text table rendering for the experiment binaries.

use std::fmt;

/// A simple aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (cells are stringified).
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "{}", self.title)?;
        writeln!(f, "{}", "=".repeat(self.title.len()))?;
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                write!(f, "{:width$}  ", cell, width = widths[i])?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("T", &["name", "value"]);
        t.row(&["a", "1"]);
        t.row(&["long-name", "22"]);
        let s = t.to_string();
        assert!(s.contains("long-name  22"));
        assert!(s.starts_with("T\n=\n"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(&["only-one"]);
    }
}
