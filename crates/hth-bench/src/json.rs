//! A minimal JSON value, writer, and parser.
//!
//! The build container cannot download `serde`/`serde_json`, so the
//! machine-readable results path uses this hand-rolled module instead:
//! enough JSON to serialise [`crate::results::RunResults`] and to parse
//! it back for round-trip checks.

use std::fmt::Write as _;
use std::ops::Index;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as f64; integers render without a fraction).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation (serde_json style).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a positioned message on malformed input.
    pub fn parse(src: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: src.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(value)
    }
}

impl Index<&str> for Json {
    type Output = Json;

    fn index(&self, key: &str) -> &Json {
        static NULL: Json = Json::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl PartialEq<usize> for Json {
    fn eq(&self, other: &usize) -> bool {
        matches!(self, Json::Num(n) if *n == *other as f64)
    }
}

/// Conversion into a [`Json`] value — the serialisation entry point the
/// results types implement in place of `serde::Serialize`.
pub trait ToJson {
    /// Renders `self` as a JSON value.
    fn to_json(&self) -> Json;
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::Num(*self as f64)
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::Num(*self as f64)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.bytes.get(self.pos) {
            Some(b'n') if self.eat_keyword("null") => Ok(Json::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    if self.bytes.get(self.pos) == Some(&b',') {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                self.expect(b']')?;
                Ok(Json::Arr(items))
            }
            Some(b'{') => {
                self.pos += 1;
                let mut members = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    members.push((key, self.value()?));
                    self.skip_ws();
                    if self.bytes.get(self.pos) == Some(&b',') {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                self.expect(b'}')?;
                Ok(Json::Obj(members))
            }
            Some(_) => self.number(),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // byte boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let value = Json::Obj(vec![
            ("name".into(), Json::Str("hth \"quoted\"\n".into())),
            ("count".into(), Json::Num(42.0)),
            ("ratio".into(), Json::Num(1.5)),
            ("flag".into(), Json::Bool(true)),
            ("nothing".into(), Json::Null),
            ("items".into(), Json::Arr(vec![Json::Num(1.0), Json::Str("two".into())])),
            ("empty_arr".into(), Json::Arr(vec![])),
            ("empty_obj".into(), Json::Obj(vec![])),
        ]);
        let text = value.to_string_pretty();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, value);
    }

    #[test]
    fn indexing_and_usize_eq() {
        let v = Json::parse(r#"{"total": 57, "inner": {"x": 1}}"#).unwrap();
        assert_eq!(v["total"], 57usize);
        assert_eq!(v["inner"]["x"], 1usize);
        assert_eq!(v["missing"], Json::Null);
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(42.0).to_string_pretty(), "42");
        assert_eq!(Json::Num(0.25).to_string_pretty(), "0.25");
    }

    #[test]
    fn malformed_inputs_error() {
        for bad in ["", "{", "[1,", "\"abc", "{\"a\" 1}", "tru", "1 2"] {
            assert!(Json::parse(bad).is_err(), "`{bad}` should fail");
        }
    }

    #[test]
    fn unicode_and_escapes_parse() {
        let v = Json::parse(r#""café \t \\ 中""#).unwrap();
        assert_eq!(v, Json::Str("café \t \\ 中".into()));
    }
}
