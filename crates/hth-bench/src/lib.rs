//! # hth-bench — the experiment harness
//!
//! Regenerates every table and figure of the HTH paper's evaluation.
//! Each table has a binary (`cargo run -p hth-bench --bin tableN`); the
//! `all_results` binary runs everything in order; `perf_eval` runs the
//! §9 overhead ablation. Criterion micro-benchmarks live in `benches/`.

#![warn(missing_docs)]

pub mod json;
pub mod perf;
pub mod report;
pub mod results;
pub mod tables;

pub use report::Table;
