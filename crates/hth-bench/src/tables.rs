//! Regeneration of every table in the paper's evaluation (§8).

use hth_core::{PolicyConfig, Secpert};
use hth_workloads::{exploits, macro_bench, micro, trusted, Scenario};

use crate::report::Table;

fn check(b: bool) -> &'static str {
    if b {
        "X"
    } else {
        ""
    }
}

/// Table 1: execution patterns exhibited by real-world malicious code.
pub fn table1() -> Table {
    let mut t = Table::new(
        "Table 1: Execution patterns exhibited by malicious code",
        &[
            "Exploit Name",
            "No user intervention",
            "Remotely directed",
            "Hard-coded resources",
            "Degrading performance",
        ],
    );
    for row in exploits::catalog() {
        t.row(&[
            row.name,
            check(row.no_user_intervention),
            check(row.remotely_directed),
            check(row.hardcoded_resources),
            check(row.degrading_performance),
        ]);
    }
    t
}

/// Table 2: legal (data source × resource-ID origin) combinations.
pub fn table2() -> Table {
    let mut t = Table::new(
        "Table 2: Data source combinations",
        &["Data Source", "Resource ID", "Resource ID (Origin) Data Sources"],
    );
    t.row(&["USER_INPUT", "-", "-"]);
    t.row(&["FILE", "File name", "USER_INPUT | FILE | SOCKET | BINARY"]);
    t.row(&["SOCKET", "Socket name (address)", "USER_INPUT | FILE | SOCKET | BINARY"]);
    t.row(&["BINARY", "-", "-"]);
    t.row(&["HARDWARE", "-", "-"]);
    t.row(&["(incomplete tracking)", "-", "UNKNOWN"]);
    t
}

/// Table 3: instrumentation granularity per policy input.
pub fn table3() -> Table {
    let mut t = Table::new(
        "Table 3: Information gathered at each instrumentation granularity",
        &["Policy input", "Granularity", "Information gathered"],
    );
    t.row(&["Information flow", "Instruction", "Data flow (reg/mem, mem/mem, reg/reg)"]);
    t.row(&["Information flow", "Instruction", "Hardware information (CPUID)"]);
    t.row(&["Code frequency", "Basic block", "BB execution counts (app image only)"]);
    t.row(&["Execution flow", "Instruction", "System calls (execve)"]);
    t.row(&["Resource abuse", "Instruction", "System calls (clone/fork)"]);
    t.row(&["Information flow", "Instruction", "System calls (IO read/write)"]);
    t.row(&["Information flow", "Image", "Binary load (data tagged BINARY)"]);
    t.row(&["Information flow", "Instruction", "Initial stack tagged USER_INPUT"]);
    t.row(&["Information flow", "Routine", "Short-circuit data flow (gethostbyname)"]);
    t
}

/// Runs a scenario group and renders the classification table.
pub fn run_group(title: &str, scenarios: Vec<Scenario>) -> Table {
    let mut t = Table::new(title, &["Benchmark", "Expected", "Observed", "Rules fired", "Correct"]);
    for scenario in scenarios {
        let result = scenario.run().expect("scenario must run");
        let expected = format!("{:?}", scenario.expected);
        let observed = match result.max_severity() {
            Some(sev) => format!("Warn [{sev}]"),
            None => "silent".to_string(),
        };
        let rules = result.rules_fired().join(",");
        let correct = if result.correct() { "yes" } else { "NO" };
        t.row(&[scenario.id, &expected, &observed, &rules, correct]);
    }
    t
}

/// Table 4: execution-flow micro-benchmarks.
pub fn table4() -> Table {
    run_group("Table 4: HTH Micro benchmarks - Execution Flow", micro::exec_flow::scenarios())
}

/// Table 5: resource-abuse micro-benchmarks.
pub fn table5() -> Table {
    run_group("Table 5: HTH Micro benchmarks - Resource Abuse", micro::resource::scenarios())
}

/// Table 6: information-flow micro-benchmarks.
pub fn table6() -> Table {
    run_group("Table 6: HTH Micro benchmarks - Information Flow", micro::info_flow::scenarios())
}

/// Table 7: trusted programs (false positives).
pub fn table7() -> Table {
    run_group("Table 7: HTH success in not warning on well behaved programs", trusted::scenarios())
}

/// Table 8: real exploits.
pub fn table8() -> Table {
    run_group("Table 8: HTH success detecting real exploits", exploits::scenarios())
}

/// §8.4 macro benchmarks.
pub fn macro_results() -> Table {
    run_group("Section 8.4: Macro benchmarks", macro_bench::scenarios())
}

/// Appendix A: the CLIPS fact / rule / firing transcript for the
/// hardcoded-execve example.
pub fn appendix_a() -> String {
    use harrier::{Origin, ResourceType, SecpertEvent, SourceInfo};
    let mut secpert = Secpert::new(&PolicyConfig::default()).expect("policy loads");
    let event = SecpertEvent::ResourceAccess {
        pid: 1,
        syscall: "SYS_execve",
        resource: SourceInfo::new(ResourceType::File, "/bin/ls"),
        origin: Origin {
            sources: vec![SourceInfo::new(
                ResourceType::Binary,
                "/proj/arch4/mmoffie/PIN/MicroBenchmarks/execve/execve.exe",
            )],
        },
        time: 33,
        frequency: 1,
        address: 0x8048403,
        proc_count: None,
        proc_rate: None,
        mem_total: None,
        server: None,
    };
    let warnings = secpert.process_event(&event).expect("policy evaluates");
    let mut out = String::new();
    out.push_str("Appendix A: CLIPS fact assertion and rule firing\n");
    out.push_str("------------------------------------------------\n\n");
    out.push_str("Asserted fact (paper A.1):\n");
    out.push_str(
        "  (system_call_access (system_call_name SYS_execve)\n\
         \x20                     (resource_name \"/bin/ls\") (resource_type FILE)\n\
         \x20                     (resource_origin_name \"…/execve/execve.exe\")\n\
         \x20                     (resource_origin_type BINARY)\n\
         \x20                     (time 33) (frequency 1) (address \"8048403\"))\n\n",
    );
    out.push_str("Firing trace (paper A.3):\n");
    for record in secpert.engine_mut().firings() {
        out.push_str(&format!("  {record}\n"));
    }
    out.push_str("\nWarnings:\n");
    for warning in warnings {
        out.push_str(&format!("  {warning}\n"));
    }
    out.push_str("\nTranscript:\n");
    for line in secpert.take_transcript().lines() {
        out.push_str(&format!("  {line}\n"));
    }
    out
}

/// Appendix B: the Secure Binary audit, on a trojaned and a clean image.
pub fn secure_binary() -> String {
    use harrier::audit;
    use hth_vm::asm::assemble;
    let trojan = assemble(
        "/exploits/dropper",
        r#"
        _start: hlt
        .data
        a: .asciz "/bin/sh"
        b: .asciz "lol.ifud.cc"
        c: .asciz "63.246.131.30"
        d: .asciz "./Window"
        m: .asciz "loading, please wait"
        "#,
        0x0804_8000,
    )
    .expect("assembles");
    let clean = assemble(
        "/bin/cleantool",
        "_start: hlt\n.data\nmsg: .asciz \"usage: cleantool FILE\"\n",
        0x0804_8000,
    )
    .expect("assembles");
    let mut out = String::new();
    out.push_str("Appendix B: Secure Binary audit\n");
    out.push_str("-------------------------------\n");
    for image in [trojan, clean] {
        let report = audit::audit(&image);
        out.push_str(&format!(
            "\n{} — {}\n",
            report.image,
            if report.is_secure() { "SECURE (no hardcoded resource names)" } else { "NOT secure" },
        ));
        for finding in &report.findings {
            out.push_str(&format!(
                "  {:#010x}  {:<22}  {}\n",
                finding.addr, finding.text, finding.reason
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_tables_have_paper_shapes() {
        assert_eq!(table1().len(), 9);
        assert_eq!(table2().len(), 6);
        assert_eq!(table3().len(), 9);
    }

    #[test]
    fn appendix_a_contains_firing_and_warning() {
        let out = appendix_a();
        assert!(out.contains("check_execve"), "{out}");
        assert!(out.contains("Warning [LOW]"), "{out}");
        assert!(out.contains("/bin/ls"));
    }

    #[test]
    fn secure_binary_flags_only_the_trojan() {
        let out = secure_binary();
        assert!(out.contains("/exploits/dropper — NOT secure"));
        assert!(out.contains("/bin/cleantool — SECURE"));
        assert!(out.contains("63.246.131.30"));
    }
}
