/root/repo/target/debug/examples/quickstart-20e946c420a1e17b.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-20e946c420a1e17b: examples/quickstart.rs

examples/quickstart.rs:
