/root/repo/target/debug/examples/quickstart-75b89a540f6a5122.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-75b89a540f6a5122: examples/quickstart.rs

examples/quickstart.rs:
