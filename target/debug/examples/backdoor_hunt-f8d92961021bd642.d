/root/repo/target/debug/examples/backdoor_hunt-f8d92961021bd642.d: examples/backdoor_hunt.rs

/root/repo/target/debug/examples/backdoor_hunt-f8d92961021bd642: examples/backdoor_hunt.rs

examples/backdoor_hunt.rs:
