/root/repo/target/debug/examples/false_positive_audit-fe2970fc20f91ade.d: examples/false_positive_audit.rs Cargo.toml

/root/repo/target/debug/examples/libfalse_positive_audit-fe2970fc20f91ade.rmeta: examples/false_positive_audit.rs Cargo.toml

examples/false_positive_audit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
