/root/repo/target/debug/examples/false_positive_audit-a24fbb862399e62e.d: examples/false_positive_audit.rs

/root/repo/target/debug/examples/false_positive_audit-a24fbb862399e62e: examples/false_positive_audit.rs

examples/false_positive_audit.rs:
