/root/repo/target/debug/examples/policy_authoring-c664c96a83378342.d: examples/policy_authoring.rs Cargo.toml

/root/repo/target/debug/examples/libpolicy_authoring-c664c96a83378342.rmeta: examples/policy_authoring.rs Cargo.toml

examples/policy_authoring.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
