/root/repo/target/debug/examples/cross_session-0942062b20832c81.d: examples/cross_session.rs

/root/repo/target/debug/examples/cross_session-0942062b20832c81: examples/cross_session.rs

examples/cross_session.rs:
