/root/repo/target/debug/examples/false_positive_audit-42d70a5756035ad5.d: examples/false_positive_audit.rs Cargo.toml

/root/repo/target/debug/examples/libfalse_positive_audit-42d70a5756035ad5.rmeta: examples/false_positive_audit.rs Cargo.toml

examples/false_positive_audit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
