/root/repo/target/debug/examples/backdoor_hunt-88ad53c98b73af4a.d: examples/backdoor_hunt.rs Cargo.toml

/root/repo/target/debug/examples/libbackdoor_hunt-88ad53c98b73af4a.rmeta: examples/backdoor_hunt.rs Cargo.toml

examples/backdoor_hunt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
