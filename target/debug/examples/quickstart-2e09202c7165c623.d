/root/repo/target/debug/examples/quickstart-2e09202c7165c623.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-2e09202c7165c623.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
