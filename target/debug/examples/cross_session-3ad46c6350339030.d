/root/repo/target/debug/examples/cross_session-3ad46c6350339030.d: examples/cross_session.rs

/root/repo/target/debug/examples/cross_session-3ad46c6350339030: examples/cross_session.rs

examples/cross_session.rs:
