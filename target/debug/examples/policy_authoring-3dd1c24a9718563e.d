/root/repo/target/debug/examples/policy_authoring-3dd1c24a9718563e.d: examples/policy_authoring.rs

/root/repo/target/debug/examples/policy_authoring-3dd1c24a9718563e: examples/policy_authoring.rs

examples/policy_authoring.rs:
