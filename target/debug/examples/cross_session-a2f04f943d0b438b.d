/root/repo/target/debug/examples/cross_session-a2f04f943d0b438b.d: examples/cross_session.rs Cargo.toml

/root/repo/target/debug/examples/libcross_session-a2f04f943d0b438b.rmeta: examples/cross_session.rs Cargo.toml

examples/cross_session.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
