/root/repo/target/debug/examples/cross_session-beb514ea5169a197.d: examples/cross_session.rs Cargo.toml

/root/repo/target/debug/examples/libcross_session-beb514ea5169a197.rmeta: examples/cross_session.rs Cargo.toml

examples/cross_session.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
