/root/repo/target/debug/examples/backdoor_hunt-b1a5c8ed88055620.d: examples/backdoor_hunt.rs

/root/repo/target/debug/examples/backdoor_hunt-b1a5c8ed88055620: examples/backdoor_hunt.rs

examples/backdoor_hunt.rs:
