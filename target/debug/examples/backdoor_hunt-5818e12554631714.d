/root/repo/target/debug/examples/backdoor_hunt-5818e12554631714.d: examples/backdoor_hunt.rs Cargo.toml

/root/repo/target/debug/examples/libbackdoor_hunt-5818e12554631714.rmeta: examples/backdoor_hunt.rs Cargo.toml

examples/backdoor_hunt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
