/root/repo/target/debug/examples/false_positive_audit-a766430a945305cc.d: examples/false_positive_audit.rs

/root/repo/target/debug/examples/false_positive_audit-a766430a945305cc: examples/false_positive_audit.rs

examples/false_positive_audit.rs:
