/root/repo/target/debug/examples/policy_authoring-ce960bcf8173fe07.d: examples/policy_authoring.rs

/root/repo/target/debug/examples/policy_authoring-ce960bcf8173fe07: examples/policy_authoring.rs

examples/policy_authoring.rs:
