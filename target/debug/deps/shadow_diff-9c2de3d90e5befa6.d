/root/repo/target/debug/deps/shadow_diff-9c2de3d90e5befa6.d: crates/harrier/tests/shadow_diff.rs Cargo.toml

/root/repo/target/debug/deps/libshadow_diff-9c2de3d90e5befa6.rmeta: crates/harrier/tests/shadow_diff.rs Cargo.toml

crates/harrier/tests/shadow_diff.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
