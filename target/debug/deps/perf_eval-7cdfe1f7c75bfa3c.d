/root/repo/target/debug/deps/perf_eval-7cdfe1f7c75bfa3c.d: crates/hth-bench/src/bin/perf_eval.rs

/root/repo/target/debug/deps/perf_eval-7cdfe1f7c75bfa3c: crates/hth-bench/src/bin/perf_eval.rs

crates/hth-bench/src/bin/perf_eval.rs:
