/root/repo/target/debug/deps/proptests-05443cdc6776e980.d: crates/secpert-engine/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-05443cdc6776e980.rmeta: crates/secpert-engine/tests/proptests.rs Cargo.toml

crates/secpert-engine/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
