/root/repo/target/debug/deps/robustness-4f43e7b5ec133a9d.d: crates/secpert-engine/tests/robustness.rs

/root/repo/target/debug/deps/robustness-4f43e7b5ec133a9d: crates/secpert-engine/tests/robustness.rs

crates/secpert-engine/tests/robustness.rs:
