/root/repo/target/debug/deps/perf_eval-9fd2b004ca988f40.d: crates/hth-bench/src/bin/perf_eval.rs

/root/repo/target/debug/deps/perf_eval-9fd2b004ca988f40: crates/hth-bench/src/bin/perf_eval.rs

crates/hth-bench/src/bin/perf_eval.rs:
