/root/repo/target/debug/deps/hth_core-871d228fd1b22878.d: crates/hth-core/src/lib.rs crates/hth-core/src/cross_session.rs crates/hth-core/src/policy.rs crates/hth-core/src/secpert.rs crates/hth-core/src/session.rs crates/hth-core/src/warning.rs Cargo.toml

/root/repo/target/debug/deps/libhth_core-871d228fd1b22878.rmeta: crates/hth-core/src/lib.rs crates/hth-core/src/cross_session.rs crates/hth-core/src/policy.rs crates/hth-core/src/secpert.rs crates/hth-core/src/session.rs crates/hth-core/src/warning.rs Cargo.toml

crates/hth-core/src/lib.rs:
crates/hth-core/src/cross_session.rs:
crates/hth-core/src/policy.rs:
crates/hth-core/src/secpert.rs:
crates/hth-core/src/session.rs:
crates/hth-core/src/warning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
