/root/repo/target/debug/deps/table7-5a1dc9130271593e.d: crates/hth-bench/src/bin/table7.rs Cargo.toml

/root/repo/target/debug/deps/libtable7-5a1dc9130271593e.rmeta: crates/hth-bench/src/bin/table7.rs Cargo.toml

crates/hth-bench/src/bin/table7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
