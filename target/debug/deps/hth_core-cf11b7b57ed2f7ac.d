/root/repo/target/debug/deps/hth_core-cf11b7b57ed2f7ac.d: crates/hth-core/src/lib.rs crates/hth-core/src/cross_session.rs crates/hth-core/src/policy.rs crates/hth-core/src/secpert.rs crates/hth-core/src/session.rs crates/hth-core/src/warning.rs

/root/repo/target/debug/deps/libhth_core-cf11b7b57ed2f7ac.rlib: crates/hth-core/src/lib.rs crates/hth-core/src/cross_session.rs crates/hth-core/src/policy.rs crates/hth-core/src/secpert.rs crates/hth-core/src/session.rs crates/hth-core/src/warning.rs

/root/repo/target/debug/deps/libhth_core-cf11b7b57ed2f7ac.rmeta: crates/hth-core/src/lib.rs crates/hth-core/src/cross_session.rs crates/hth-core/src/policy.rs crates/hth-core/src/secpert.rs crates/hth-core/src/session.rs crates/hth-core/src/warning.rs

crates/hth-core/src/lib.rs:
crates/hth-core/src/cross_session.rs:
crates/hth-core/src/policy.rs:
crates/hth-core/src/secpert.rs:
crates/hth-core/src/session.rs:
crates/hth-core/src/warning.rs:
