/root/repo/target/debug/deps/hth_cli-8ffdf37038ae2be4.d: crates/hth-cli/src/lib.rs

/root/repo/target/debug/deps/libhth_cli-8ffdf37038ae2be4.rlib: crates/hth-cli/src/lib.rs

/root/repo/target/debug/deps/libhth_cli-8ffdf37038ae2be4.rmeta: crates/hth-cli/src/lib.rs

crates/hth-cli/src/lib.rs:
