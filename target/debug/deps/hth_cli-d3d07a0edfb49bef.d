/root/repo/target/debug/deps/hth_cli-d3d07a0edfb49bef.d: crates/hth-cli/src/lib.rs

/root/repo/target/debug/deps/libhth_cli-d3d07a0edfb49bef.rlib: crates/hth-cli/src/lib.rs

/root/repo/target/debug/deps/libhth_cli-d3d07a0edfb49bef.rmeta: crates/hth-cli/src/lib.rs

crates/hth-cli/src/lib.rs:
