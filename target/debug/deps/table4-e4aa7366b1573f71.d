/root/repo/target/debug/deps/table4-e4aa7366b1573f71.d: crates/hth-bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-e4aa7366b1573f71: crates/hth-bench/src/bin/table4.rs

crates/hth-bench/src/bin/table4.rs:
