/root/repo/target/debug/deps/table5-ea855a0ab115c823.d: crates/hth-bench/src/bin/table5.rs Cargo.toml

/root/repo/target/debug/deps/libtable5-ea855a0ab115c823.rmeta: crates/hth-bench/src/bin/table5.rs Cargo.toml

crates/hth-bench/src/bin/table5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
