/root/repo/target/debug/deps/secure_binary-c2ddf7adfb6f8a75.d: crates/hth-bench/src/bin/secure_binary.rs Cargo.toml

/root/repo/target/debug/deps/libsecure_binary-c2ddf7adfb6f8a75.rmeta: crates/hth-bench/src/bin/secure_binary.rs Cargo.toml

crates/hth-bench/src/bin/secure_binary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
