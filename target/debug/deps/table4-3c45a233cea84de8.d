/root/repo/target/debug/deps/table4-3c45a233cea84de8.d: crates/hth-bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-3c45a233cea84de8: crates/hth-bench/src/bin/table4.rs

crates/hth-bench/src/bin/table4.rs:
