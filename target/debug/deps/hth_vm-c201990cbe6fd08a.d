/root/repo/target/debug/deps/hth_vm-c201990cbe6fd08a.d: crates/hth-vm/src/lib.rs crates/hth-vm/src/asm.rs crates/hth-vm/src/bb.rs crates/hth-vm/src/disasm.rs crates/hth-vm/src/image.rs crates/hth-vm/src/isa.rs crates/hth-vm/src/machine.rs crates/hth-vm/src/mem.rs

/root/repo/target/debug/deps/hth_vm-c201990cbe6fd08a: crates/hth-vm/src/lib.rs crates/hth-vm/src/asm.rs crates/hth-vm/src/bb.rs crates/hth-vm/src/disasm.rs crates/hth-vm/src/image.rs crates/hth-vm/src/isa.rs crates/hth-vm/src/machine.rs crates/hth-vm/src/mem.rs

crates/hth-vm/src/lib.rs:
crates/hth-vm/src/asm.rs:
crates/hth-vm/src/bb.rs:
crates/hth-vm/src/disasm.rs:
crates/hth-vm/src/image.rs:
crates/hth-vm/src/isa.rs:
crates/hth-vm/src/machine.rs:
crates/hth-vm/src/mem.rs:
