/root/repo/target/debug/deps/criterion_shim-50d8d478b5433e4d.d: crates/criterion-shim/src/lib.rs

/root/repo/target/debug/deps/criterion_shim-50d8d478b5433e4d: crates/criterion-shim/src/lib.rs

crates/criterion-shim/src/lib.rs:
