/root/repo/target/debug/deps/full_pipeline-faf8737253a80eae.d: tests/full_pipeline.rs

/root/repo/target/debug/deps/full_pipeline-faf8737253a80eae: tests/full_pipeline.rs

tests/full_pipeline.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
