/root/repo/target/debug/deps/prop_kernel-5e3ba3003b9915d2.d: crates/emukernel/tests/prop_kernel.rs Cargo.toml

/root/repo/target/debug/deps/libprop_kernel-5e3ba3003b9915d2.rmeta: crates/emukernel/tests/prop_kernel.rs Cargo.toml

crates/emukernel/tests/prop_kernel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
