/root/repo/target/debug/deps/prop_taint-3a5b9f9250b8bf83.d: crates/harrier/tests/prop_taint.rs

/root/repo/target/debug/deps/prop_taint-3a5b9f9250b8bf83: crates/harrier/tests/prop_taint.rs

crates/harrier/tests/prop_taint.rs:
