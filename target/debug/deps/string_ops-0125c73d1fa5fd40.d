/root/repo/target/debug/deps/string_ops-0125c73d1fa5fd40.d: crates/hth-vm/tests/string_ops.rs

/root/repo/target/debug/deps/string_ops-0125c73d1fa5fd40: crates/hth-vm/tests/string_ops.rs

crates/hth-vm/tests/string_ops.rs:
