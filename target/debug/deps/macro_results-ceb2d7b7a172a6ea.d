/root/repo/target/debug/deps/macro_results-ceb2d7b7a172a6ea.d: crates/hth-bench/src/bin/macro_results.rs Cargo.toml

/root/repo/target/debug/deps/libmacro_results-ceb2d7b7a172a6ea.rmeta: crates/hth-bench/src/bin/macro_results.rs Cargo.toml

crates/hth-bench/src/bin/macro_results.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
