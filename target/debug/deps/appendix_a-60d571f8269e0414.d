/root/repo/target/debug/deps/appendix_a-60d571f8269e0414.d: crates/hth-bench/src/bin/appendix_a.rs Cargo.toml

/root/repo/target/debug/deps/libappendix_a-60d571f8269e0414.rmeta: crates/hth-bench/src/bin/appendix_a.rs Cargo.toml

crates/hth-bench/src/bin/appendix_a.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
