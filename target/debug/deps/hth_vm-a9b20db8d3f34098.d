/root/repo/target/debug/deps/hth_vm-a9b20db8d3f34098.d: crates/hth-vm/src/lib.rs crates/hth-vm/src/asm.rs crates/hth-vm/src/bb.rs crates/hth-vm/src/disasm.rs crates/hth-vm/src/image.rs crates/hth-vm/src/isa.rs crates/hth-vm/src/machine.rs crates/hth-vm/src/mem.rs Cargo.toml

/root/repo/target/debug/deps/libhth_vm-a9b20db8d3f34098.rmeta: crates/hth-vm/src/lib.rs crates/hth-vm/src/asm.rs crates/hth-vm/src/bb.rs crates/hth-vm/src/disasm.rs crates/hth-vm/src/image.rs crates/hth-vm/src/isa.rs crates/hth-vm/src/machine.rs crates/hth-vm/src/mem.rs Cargo.toml

crates/hth-vm/src/lib.rs:
crates/hth-vm/src/asm.rs:
crates/hth-vm/src/bb.rs:
crates/hth-vm/src/disasm.rs:
crates/hth-vm/src/image.rs:
crates/hth-vm/src/isa.rs:
crates/hth-vm/src/machine.rs:
crates/hth-vm/src/mem.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
