/root/repo/target/debug/deps/harrier-718717d4cb2df09f.d: crates/harrier/src/lib.rs crates/harrier/src/audit.rs crates/harrier/src/events.rs crates/harrier/src/freq.rs crates/harrier/src/monitor.rs crates/harrier/src/naive.rs crates/harrier/src/shadow.rs crates/harrier/src/tag.rs

/root/repo/target/debug/deps/libharrier-718717d4cb2df09f.rlib: crates/harrier/src/lib.rs crates/harrier/src/audit.rs crates/harrier/src/events.rs crates/harrier/src/freq.rs crates/harrier/src/monitor.rs crates/harrier/src/naive.rs crates/harrier/src/shadow.rs crates/harrier/src/tag.rs

/root/repo/target/debug/deps/libharrier-718717d4cb2df09f.rmeta: crates/harrier/src/lib.rs crates/harrier/src/audit.rs crates/harrier/src/events.rs crates/harrier/src/freq.rs crates/harrier/src/monitor.rs crates/harrier/src/naive.rs crates/harrier/src/shadow.rs crates/harrier/src/tag.rs

crates/harrier/src/lib.rs:
crates/harrier/src/audit.rs:
crates/harrier/src/events.rs:
crates/harrier/src/freq.rs:
crates/harrier/src/monitor.rs:
crates/harrier/src/naive.rs:
crates/harrier/src/shadow.rs:
crates/harrier/src/tag.rs:
