/root/repo/target/debug/deps/table7-40c1550a3c2ec156.d: crates/hth-bench/src/bin/table7.rs Cargo.toml

/root/repo/target/debug/deps/libtable7-40c1550a3c2ec156.rmeta: crates/hth-bench/src/bin/table7.rs Cargo.toml

crates/hth-bench/src/bin/table7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
