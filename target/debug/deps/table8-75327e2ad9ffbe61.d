/root/repo/target/debug/deps/table8-75327e2ad9ffbe61.d: crates/hth-bench/src/bin/table8.rs

/root/repo/target/debug/deps/table8-75327e2ad9ffbe61: crates/hth-bench/src/bin/table8.rs

crates/hth-bench/src/bin/table8.rs:
