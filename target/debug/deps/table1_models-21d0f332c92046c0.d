/root/repo/target/debug/deps/table1_models-21d0f332c92046c0.d: crates/hth-bench/src/bin/table1_models.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_models-21d0f332c92046c0.rmeta: crates/hth-bench/src/bin/table1_models.rs Cargo.toml

crates/hth-bench/src/bin/table1_models.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
