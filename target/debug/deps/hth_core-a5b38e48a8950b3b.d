/root/repo/target/debug/deps/hth_core-a5b38e48a8950b3b.d: crates/hth-core/src/lib.rs crates/hth-core/src/cross_session.rs crates/hth-core/src/policy.rs crates/hth-core/src/secpert.rs crates/hth-core/src/session.rs crates/hth-core/src/warning.rs

/root/repo/target/debug/deps/libhth_core-a5b38e48a8950b3b.rlib: crates/hth-core/src/lib.rs crates/hth-core/src/cross_session.rs crates/hth-core/src/policy.rs crates/hth-core/src/secpert.rs crates/hth-core/src/session.rs crates/hth-core/src/warning.rs

/root/repo/target/debug/deps/libhth_core-a5b38e48a8950b3b.rmeta: crates/hth-core/src/lib.rs crates/hth-core/src/cross_session.rs crates/hth-core/src/policy.rs crates/hth-core/src/secpert.rs crates/hth-core/src/session.rs crates/hth-core/src/warning.rs

crates/hth-core/src/lib.rs:
crates/hth-core/src/cross_session.rs:
crates/hth-core/src/policy.rs:
crates/hth-core/src/secpert.rs:
crates/hth-core/src/session.rs:
crates/hth-core/src/warning.rs:
