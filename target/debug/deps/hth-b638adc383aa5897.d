/root/repo/target/debug/deps/hth-b638adc383aa5897.d: crates/hth-cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libhth-b638adc383aa5897.rmeta: crates/hth-cli/src/main.rs Cargo.toml

crates/hth-cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
