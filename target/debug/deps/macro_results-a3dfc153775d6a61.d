/root/repo/target/debug/deps/macro_results-a3dfc153775d6a61.d: crates/hth-bench/src/bin/macro_results.rs

/root/repo/target/debug/deps/macro_results-a3dfc153775d6a61: crates/hth-bench/src/bin/macro_results.rs

crates/hth-bench/src/bin/macro_results.rs:
