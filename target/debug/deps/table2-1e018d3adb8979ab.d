/root/repo/target/debug/deps/table2-1e018d3adb8979ab.d: crates/hth-bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-1e018d3adb8979ab: crates/hth-bench/src/bin/table2.rs

crates/hth-bench/src/bin/table2.rs:
