/root/repo/target/debug/deps/hth_cli-d670f0acbea5d609.d: crates/hth-cli/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhth_cli-d670f0acbea5d609.rmeta: crates/hth-cli/src/lib.rs Cargo.toml

crates/hth-cli/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
