/root/repo/target/debug/deps/modify-7db93ae9523f9039.d: crates/secpert-engine/tests/modify.rs

/root/repo/target/debug/deps/modify-7db93ae9523f9039: crates/secpert-engine/tests/modify.rs

crates/secpert-engine/tests/modify.rs:
