/root/repo/target/debug/deps/engine-5610a54fb6635808.d: crates/hth-bench/benches/engine.rs Cargo.toml

/root/repo/target/debug/deps/libengine-5610a54fb6635808.rmeta: crates/hth-bench/benches/engine.rs Cargo.toml

crates/hth-bench/benches/engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
