/root/repo/target/debug/deps/table2-2b15328aab7b42f4.d: crates/hth-bench/src/bin/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-2b15328aab7b42f4.rmeta: crates/hth-bench/src/bin/table2.rs Cargo.toml

crates/hth-bench/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
