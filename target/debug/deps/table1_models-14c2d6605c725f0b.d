/root/repo/target/debug/deps/table1_models-14c2d6605c725f0b.d: crates/hth-bench/src/bin/table1_models.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_models-14c2d6605c725f0b.rmeta: crates/hth-bench/src/bin/table1_models.rs Cargo.toml

crates/hth-bench/src/bin/table1_models.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
