/root/repo/target/debug/deps/table4-a465a425a0f11f66.d: crates/hth-bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-a465a425a0f11f66: crates/hth-bench/src/bin/table4.rs

crates/hth-bench/src/bin/table4.rs:
