/root/repo/target/debug/deps/hth-6b37e0bddc99ddf3.d: crates/hth-cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libhth-6b37e0bddc99ddf3.rmeta: crates/hth-cli/src/main.rs Cargo.toml

crates/hth-cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
