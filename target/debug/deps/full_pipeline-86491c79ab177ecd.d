/root/repo/target/debug/deps/full_pipeline-86491c79ab177ecd.d: tests/full_pipeline.rs

/root/repo/target/debug/deps/full_pipeline-86491c79ab177ecd: tests/full_pipeline.rs

tests/full_pipeline.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
