/root/repo/target/debug/deps/table2-2327bb273ad9d094.d: crates/hth-bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-2327bb273ad9d094: crates/hth-bench/src/bin/table2.rs

crates/hth-bench/src/bin/table2.rs:
