/root/repo/target/debug/deps/prop_taint-4238105c562af497.d: crates/harrier/tests/prop_taint.rs

/root/repo/target/debug/deps/prop_taint-4238105c562af497: crates/harrier/tests/prop_taint.rs

crates/harrier/tests/prop_taint.rs:
