/root/repo/target/debug/deps/hth_bench-4a25afe1e6d24e23.d: crates/hth-bench/src/lib.rs crates/hth-bench/src/json.rs crates/hth-bench/src/perf.rs crates/hth-bench/src/report.rs crates/hth-bench/src/results.rs crates/hth-bench/src/tables.rs Cargo.toml

/root/repo/target/debug/deps/libhth_bench-4a25afe1e6d24e23.rmeta: crates/hth-bench/src/lib.rs crates/hth-bench/src/json.rs crates/hth-bench/src/perf.rs crates/hth-bench/src/report.rs crates/hth-bench/src/results.rs crates/hth-bench/src/tables.rs Cargo.toml

crates/hth-bench/src/lib.rs:
crates/hth-bench/src/json.rs:
crates/hth-bench/src/perf.rs:
crates/hth-bench/src/report.rs:
crates/hth-bench/src/results.rs:
crates/hth-bench/src/tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
