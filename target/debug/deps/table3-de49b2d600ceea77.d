/root/repo/target/debug/deps/table3-de49b2d600ceea77.d: crates/hth-bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-de49b2d600ceea77: crates/hth-bench/src/bin/table3.rs

crates/hth-bench/src/bin/table3.rs:
