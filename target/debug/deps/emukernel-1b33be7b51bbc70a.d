/root/repo/target/debug/deps/emukernel-1b33be7b51bbc70a.d: crates/emukernel/src/lib.rs crates/emukernel/src/kernel.rs crates/emukernel/src/net.rs crates/emukernel/src/process.rs crates/emukernel/src/vfs.rs

/root/repo/target/debug/deps/libemukernel-1b33be7b51bbc70a.rlib: crates/emukernel/src/lib.rs crates/emukernel/src/kernel.rs crates/emukernel/src/net.rs crates/emukernel/src/process.rs crates/emukernel/src/vfs.rs

/root/repo/target/debug/deps/libemukernel-1b33be7b51bbc70a.rmeta: crates/emukernel/src/lib.rs crates/emukernel/src/kernel.rs crates/emukernel/src/net.rs crates/emukernel/src/process.rs crates/emukernel/src/vfs.rs

crates/emukernel/src/lib.rs:
crates/emukernel/src/kernel.rs:
crates/emukernel/src/net.rs:
crates/emukernel/src/process.rs:
crates/emukernel/src/vfs.rs:
