/root/repo/target/debug/deps/table1_models-45930148fffe1e63.d: crates/hth-bench/src/bin/table1_models.rs

/root/repo/target/debug/deps/table1_models-45930148fffe1e63: crates/hth-bench/src/bin/table1_models.rs

crates/hth-bench/src/bin/table1_models.rs:
