/root/repo/target/debug/deps/harrier-4700c9f6fcb079e7.d: crates/harrier/src/lib.rs crates/harrier/src/audit.rs crates/harrier/src/events.rs crates/harrier/src/freq.rs crates/harrier/src/monitor.rs crates/harrier/src/shadow.rs crates/harrier/src/tag.rs

/root/repo/target/debug/deps/libharrier-4700c9f6fcb079e7.rlib: crates/harrier/src/lib.rs crates/harrier/src/audit.rs crates/harrier/src/events.rs crates/harrier/src/freq.rs crates/harrier/src/monitor.rs crates/harrier/src/shadow.rs crates/harrier/src/tag.rs

/root/repo/target/debug/deps/libharrier-4700c9f6fcb079e7.rmeta: crates/harrier/src/lib.rs crates/harrier/src/audit.rs crates/harrier/src/events.rs crates/harrier/src/freq.rs crates/harrier/src/monitor.rs crates/harrier/src/shadow.rs crates/harrier/src/tag.rs

crates/harrier/src/lib.rs:
crates/harrier/src/audit.rs:
crates/harrier/src/events.rs:
crates/harrier/src/freq.rs:
crates/harrier/src/monitor.rs:
crates/harrier/src/shadow.rs:
crates/harrier/src/tag.rs:
