/root/repo/target/debug/deps/string_ops-72d1d9064ffdc48b.d: crates/hth-vm/tests/string_ops.rs Cargo.toml

/root/repo/target/debug/deps/libstring_ops-72d1d9064ffdc48b.rmeta: crates/hth-vm/tests/string_ops.rs Cargo.toml

crates/hth-vm/tests/string_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
