/root/repo/target/debug/deps/shadow_diff-3642f4beb2ae1e04.d: crates/harrier/tests/shadow_diff.rs

/root/repo/target/debug/deps/shadow_diff-3642f4beb2ae1e04: crates/harrier/tests/shadow_diff.rs

crates/harrier/tests/shadow_diff.rs:
