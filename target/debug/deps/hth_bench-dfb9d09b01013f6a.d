/root/repo/target/debug/deps/hth_bench-dfb9d09b01013f6a.d: crates/hth-bench/src/lib.rs crates/hth-bench/src/json.rs crates/hth-bench/src/perf.rs crates/hth-bench/src/report.rs crates/hth-bench/src/results.rs crates/hth-bench/src/tables.rs

/root/repo/target/debug/deps/libhth_bench-dfb9d09b01013f6a.rlib: crates/hth-bench/src/lib.rs crates/hth-bench/src/json.rs crates/hth-bench/src/perf.rs crates/hth-bench/src/report.rs crates/hth-bench/src/results.rs crates/hth-bench/src/tables.rs

/root/repo/target/debug/deps/libhth_bench-dfb9d09b01013f6a.rmeta: crates/hth-bench/src/lib.rs crates/hth-bench/src/json.rs crates/hth-bench/src/perf.rs crates/hth-bench/src/report.rs crates/hth-bench/src/results.rs crates/hth-bench/src/tables.rs

crates/hth-bench/src/lib.rs:
crates/hth-bench/src/json.rs:
crates/hth-bench/src/perf.rs:
crates/hth-bench/src/report.rs:
crates/hth-bench/src/results.rs:
crates/hth-bench/src/tables.rs:
