/root/repo/target/debug/deps/hth-ad33792a26bfc005.d: src/lib.rs

/root/repo/target/debug/deps/hth-ad33792a26bfc005: src/lib.rs

src/lib.rs:
