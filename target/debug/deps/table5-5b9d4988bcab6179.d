/root/repo/target/debug/deps/table5-5b9d4988bcab6179.d: crates/hth-bench/src/bin/table5.rs

/root/repo/target/debug/deps/table5-5b9d4988bcab6179: crates/hth-bench/src/bin/table5.rs

crates/hth-bench/src/bin/table5.rs:
