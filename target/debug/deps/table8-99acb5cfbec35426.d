/root/repo/target/debug/deps/table8-99acb5cfbec35426.d: crates/hth-bench/src/bin/table8.rs

/root/repo/target/debug/deps/table8-99acb5cfbec35426: crates/hth-bench/src/bin/table8.rs

crates/hth-bench/src/bin/table8.rs:
