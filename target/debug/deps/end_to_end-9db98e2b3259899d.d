/root/repo/target/debug/deps/end_to_end-9db98e2b3259899d.d: crates/harrier/tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-9db98e2b3259899d: crates/harrier/tests/end_to_end.rs

crates/harrier/tests/end_to_end.rs:
