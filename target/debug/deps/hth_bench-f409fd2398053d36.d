/root/repo/target/debug/deps/hth_bench-f409fd2398053d36.d: crates/hth-bench/src/lib.rs crates/hth-bench/src/json.rs crates/hth-bench/src/perf.rs crates/hth-bench/src/report.rs crates/hth-bench/src/results.rs crates/hth-bench/src/tables.rs

/root/repo/target/debug/deps/libhth_bench-f409fd2398053d36.rlib: crates/hth-bench/src/lib.rs crates/hth-bench/src/json.rs crates/hth-bench/src/perf.rs crates/hth-bench/src/report.rs crates/hth-bench/src/results.rs crates/hth-bench/src/tables.rs

/root/repo/target/debug/deps/libhth_bench-f409fd2398053d36.rmeta: crates/hth-bench/src/lib.rs crates/hth-bench/src/json.rs crates/hth-bench/src/perf.rs crates/hth-bench/src/report.rs crates/hth-bench/src/results.rs crates/hth-bench/src/tables.rs

crates/hth-bench/src/lib.rs:
crates/hth-bench/src/json.rs:
crates/hth-bench/src/perf.rs:
crates/hth-bench/src/report.rs:
crates/hth-bench/src/results.rs:
crates/hth-bench/src/tables.rs:
