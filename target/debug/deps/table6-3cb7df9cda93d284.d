/root/repo/target/debug/deps/table6-3cb7df9cda93d284.d: crates/hth-bench/src/bin/table6.rs

/root/repo/target/debug/deps/table6-3cb7df9cda93d284: crates/hth-bench/src/bin/table6.rs

crates/hth-bench/src/bin/table6.rs:
