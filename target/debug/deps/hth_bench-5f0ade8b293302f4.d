/root/repo/target/debug/deps/hth_bench-5f0ade8b293302f4.d: crates/hth-bench/src/lib.rs crates/hth-bench/src/json.rs crates/hth-bench/src/perf.rs crates/hth-bench/src/report.rs crates/hth-bench/src/results.rs crates/hth-bench/src/tables.rs

/root/repo/target/debug/deps/hth_bench-5f0ade8b293302f4: crates/hth-bench/src/lib.rs crates/hth-bench/src/json.rs crates/hth-bench/src/perf.rs crates/hth-bench/src/report.rs crates/hth-bench/src/results.rs crates/hth-bench/src/tables.rs

crates/hth-bench/src/lib.rs:
crates/hth-bench/src/json.rs:
crates/hth-bench/src/perf.rs:
crates/hth-bench/src/report.rs:
crates/hth-bench/src/results.rs:
crates/hth-bench/src/tables.rs:
