/root/repo/target/debug/deps/hth-89e4fa240aacea59.d: src/lib.rs

/root/repo/target/debug/deps/libhth-89e4fa240aacea59.rlib: src/lib.rs

/root/repo/target/debug/deps/libhth-89e4fa240aacea59.rmeta: src/lib.rs

src/lib.rs:
