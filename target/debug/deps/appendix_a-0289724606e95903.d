/root/repo/target/debug/deps/appendix_a-0289724606e95903.d: crates/hth-bench/src/bin/appendix_a.rs Cargo.toml

/root/repo/target/debug/deps/libappendix_a-0289724606e95903.rmeta: crates/hth-bench/src/bin/appendix_a.rs Cargo.toml

crates/hth-bench/src/bin/appendix_a.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
