/root/repo/target/debug/deps/criterion_shim-bb6d39fa605b4b62.d: crates/criterion-shim/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion_shim-bb6d39fa605b4b62.rmeta: crates/criterion-shim/src/lib.rs Cargo.toml

crates/criterion-shim/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
