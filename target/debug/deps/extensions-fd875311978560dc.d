/root/repo/target/debug/deps/extensions-fd875311978560dc.d: crates/hth-bench/src/bin/extensions.rs

/root/repo/target/debug/deps/extensions-fd875311978560dc: crates/hth-bench/src/bin/extensions.rs

crates/hth-bench/src/bin/extensions.rs:
