/root/repo/target/debug/deps/appendix_a-1fecaa018637e3d6.d: crates/hth-bench/src/bin/appendix_a.rs Cargo.toml

/root/repo/target/debug/deps/libappendix_a-1fecaa018637e3d6.rmeta: crates/hth-bench/src/bin/appendix_a.rs Cargo.toml

crates/hth-bench/src/bin/appendix_a.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
