/root/repo/target/debug/deps/hth-f5a1c458c6336926.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhth-f5a1c458c6336926.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
