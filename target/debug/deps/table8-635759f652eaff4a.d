/root/repo/target/debug/deps/table8-635759f652eaff4a.d: crates/hth-bench/src/bin/table8.rs Cargo.toml

/root/repo/target/debug/deps/libtable8-635759f652eaff4a.rmeta: crates/hth-bench/src/bin/table8.rs Cargo.toml

crates/hth-bench/src/bin/table8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
