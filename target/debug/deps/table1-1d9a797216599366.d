/root/repo/target/debug/deps/table1-1d9a797216599366.d: crates/hth-bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-1d9a797216599366: crates/hth-bench/src/bin/table1.rs

crates/hth-bench/src/bin/table1.rs:
