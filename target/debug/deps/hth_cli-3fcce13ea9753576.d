/root/repo/target/debug/deps/hth_cli-3fcce13ea9753576.d: crates/hth-cli/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhth_cli-3fcce13ea9753576.rmeta: crates/hth-cli/src/lib.rs Cargo.toml

crates/hth-cli/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
