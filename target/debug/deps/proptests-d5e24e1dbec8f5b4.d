/root/repo/target/debug/deps/proptests-d5e24e1dbec8f5b4.d: crates/hth-vm/tests/proptests.rs

/root/repo/target/debug/deps/proptests-d5e24e1dbec8f5b4: crates/hth-vm/tests/proptests.rs

crates/hth-vm/tests/proptests.rs:
