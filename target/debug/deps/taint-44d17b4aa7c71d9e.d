/root/repo/target/debug/deps/taint-44d17b4aa7c71d9e.d: crates/hth-bench/benches/taint.rs Cargo.toml

/root/repo/target/debug/deps/libtaint-44d17b4aa7c71d9e.rmeta: crates/hth-bench/benches/taint.rs Cargo.toml

crates/hth-bench/benches/taint.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
