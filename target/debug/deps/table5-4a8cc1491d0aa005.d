/root/repo/target/debug/deps/table5-4a8cc1491d0aa005.d: crates/hth-bench/src/bin/table5.rs Cargo.toml

/root/repo/target/debug/deps/libtable5-4a8cc1491d0aa005.rmeta: crates/hth-bench/src/bin/table5.rs Cargo.toml

crates/hth-bench/src/bin/table5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
