/root/repo/target/debug/deps/robustness-c4373ac4ac9dba43.d: crates/secpert-engine/tests/robustness.rs Cargo.toml

/root/repo/target/debug/deps/librobustness-c4373ac4ac9dba43.rmeta: crates/secpert-engine/tests/robustness.rs Cargo.toml

crates/secpert-engine/tests/robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
