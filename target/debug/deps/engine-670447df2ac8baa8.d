/root/repo/target/debug/deps/engine-670447df2ac8baa8.d: crates/hth-bench/benches/engine.rs Cargo.toml

/root/repo/target/debug/deps/libengine-670447df2ac8baa8.rmeta: crates/hth-bench/benches/engine.rs Cargo.toml

crates/hth-bench/benches/engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
