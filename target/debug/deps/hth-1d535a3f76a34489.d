/root/repo/target/debug/deps/hth-1d535a3f76a34489.d: crates/hth-cli/src/main.rs

/root/repo/target/debug/deps/hth-1d535a3f76a34489: crates/hth-cli/src/main.rs

crates/hth-cli/src/main.rs:
