/root/repo/target/debug/deps/proptest_shim-c778926dd7d921f5.d: crates/proptest-shim/src/lib.rs crates/proptest-shim/src/collection.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_shim-c778926dd7d921f5.rmeta: crates/proptest-shim/src/lib.rs crates/proptest-shim/src/collection.rs Cargo.toml

crates/proptest-shim/src/lib.rs:
crates/proptest-shim/src/collection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
