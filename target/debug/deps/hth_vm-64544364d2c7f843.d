/root/repo/target/debug/deps/hth_vm-64544364d2c7f843.d: crates/hth-vm/src/lib.rs crates/hth-vm/src/asm.rs crates/hth-vm/src/bb.rs crates/hth-vm/src/disasm.rs crates/hth-vm/src/image.rs crates/hth-vm/src/isa.rs crates/hth-vm/src/machine.rs crates/hth-vm/src/mem.rs

/root/repo/target/debug/deps/libhth_vm-64544364d2c7f843.rlib: crates/hth-vm/src/lib.rs crates/hth-vm/src/asm.rs crates/hth-vm/src/bb.rs crates/hth-vm/src/disasm.rs crates/hth-vm/src/image.rs crates/hth-vm/src/isa.rs crates/hth-vm/src/machine.rs crates/hth-vm/src/mem.rs

/root/repo/target/debug/deps/libhth_vm-64544364d2c7f843.rmeta: crates/hth-vm/src/lib.rs crates/hth-vm/src/asm.rs crates/hth-vm/src/bb.rs crates/hth-vm/src/disasm.rs crates/hth-vm/src/image.rs crates/hth-vm/src/isa.rs crates/hth-vm/src/machine.rs crates/hth-vm/src/mem.rs

crates/hth-vm/src/lib.rs:
crates/hth-vm/src/asm.rs:
crates/hth-vm/src/bb.rs:
crates/hth-vm/src/disasm.rs:
crates/hth-vm/src/image.rs:
crates/hth-vm/src/isa.rs:
crates/hth-vm/src/machine.rs:
crates/hth-vm/src/mem.rs:
