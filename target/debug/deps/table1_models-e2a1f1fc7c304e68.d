/root/repo/target/debug/deps/table1_models-e2a1f1fc7c304e68.d: crates/hth-bench/src/bin/table1_models.rs

/root/repo/target/debug/deps/table1_models-e2a1f1fc7c304e68: crates/hth-bench/src/bin/table1_models.rs

crates/hth-bench/src/bin/table1_models.rs:
