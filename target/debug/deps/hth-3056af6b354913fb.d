/root/repo/target/debug/deps/hth-3056af6b354913fb.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhth-3056af6b354913fb.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
