/root/repo/target/debug/deps/emukernel-15417cb78078098e.d: crates/emukernel/src/lib.rs crates/emukernel/src/kernel.rs crates/emukernel/src/net.rs crates/emukernel/src/process.rs crates/emukernel/src/vfs.rs

/root/repo/target/debug/deps/emukernel-15417cb78078098e: crates/emukernel/src/lib.rs crates/emukernel/src/kernel.rs crates/emukernel/src/net.rs crates/emukernel/src/process.rs crates/emukernel/src/vfs.rs

crates/emukernel/src/lib.rs:
crates/emukernel/src/kernel.rs:
crates/emukernel/src/net.rs:
crates/emukernel/src/process.rs:
crates/emukernel/src/vfs.rs:
