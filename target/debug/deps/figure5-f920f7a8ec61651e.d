/root/repo/target/debug/deps/figure5-f920f7a8ec61651e.d: crates/hth-bench/src/bin/figure5.rs Cargo.toml

/root/repo/target/debug/deps/libfigure5-f920f7a8ec61651e.rmeta: crates/hth-bench/src/bin/figure5.rs Cargo.toml

crates/hth-bench/src/bin/figure5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
