/root/repo/target/debug/deps/perf_eval-8fbe39a959391aed.d: crates/hth-bench/src/bin/perf_eval.rs Cargo.toml

/root/repo/target/debug/deps/libperf_eval-8fbe39a959391aed.rmeta: crates/hth-bench/src/bin/perf_eval.rs Cargo.toml

crates/hth-bench/src/bin/perf_eval.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
