/root/repo/target/debug/deps/extensions-47dc9849b7335a41.d: crates/hth-bench/src/bin/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-47dc9849b7335a41.rmeta: crates/hth-bench/src/bin/extensions.rs Cargo.toml

crates/hth-bench/src/bin/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
