/root/repo/target/debug/deps/all_results-754d83b7ec66f78b.d: crates/hth-bench/src/bin/all_results.rs

/root/repo/target/debug/deps/all_results-754d83b7ec66f78b: crates/hth-bench/src/bin/all_results.rs

crates/hth-bench/src/bin/all_results.rs:
