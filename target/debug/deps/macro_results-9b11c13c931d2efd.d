/root/repo/target/debug/deps/macro_results-9b11c13c931d2efd.d: crates/hth-bench/src/bin/macro_results.rs Cargo.toml

/root/repo/target/debug/deps/libmacro_results-9b11c13c931d2efd.rmeta: crates/hth-bench/src/bin/macro_results.rs Cargo.toml

crates/hth-bench/src/bin/macro_results.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
