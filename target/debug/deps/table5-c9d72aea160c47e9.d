/root/repo/target/debug/deps/table5-c9d72aea160c47e9.d: crates/hth-bench/src/bin/table5.rs

/root/repo/target/debug/deps/table5-c9d72aea160c47e9: crates/hth-bench/src/bin/table5.rs

crates/hth-bench/src/bin/table5.rs:
