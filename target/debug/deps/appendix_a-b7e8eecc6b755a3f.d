/root/repo/target/debug/deps/appendix_a-b7e8eecc6b755a3f.d: crates/hth-bench/src/bin/appendix_a.rs

/root/repo/target/debug/deps/appendix_a-b7e8eecc6b755a3f: crates/hth-bench/src/bin/appendix_a.rs

crates/hth-bench/src/bin/appendix_a.rs:
