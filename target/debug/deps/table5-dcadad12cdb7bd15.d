/root/repo/target/debug/deps/table5-dcadad12cdb7bd15.d: crates/hth-bench/src/bin/table5.rs Cargo.toml

/root/repo/target/debug/deps/libtable5-dcadad12cdb7bd15.rmeta: crates/hth-bench/src/bin/table5.rs Cargo.toml

crates/hth-bench/src/bin/table5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
