/root/repo/target/debug/deps/all_results-fdb5d922fc075b48.d: crates/hth-bench/src/bin/all_results.rs

/root/repo/target/debug/deps/all_results-fdb5d922fc075b48: crates/hth-bench/src/bin/all_results.rs

crates/hth-bench/src/bin/all_results.rs:
