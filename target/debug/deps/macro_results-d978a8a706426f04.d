/root/repo/target/debug/deps/macro_results-d978a8a706426f04.d: crates/hth-bench/src/bin/macro_results.rs

/root/repo/target/debug/deps/macro_results-d978a8a706426f04: crates/hth-bench/src/bin/macro_results.rs

crates/hth-bench/src/bin/macro_results.rs:
