/root/repo/target/debug/deps/hth_core-8e54515dae11466d.d: crates/hth-core/src/lib.rs crates/hth-core/src/cross_session.rs crates/hth-core/src/policy.rs crates/hth-core/src/secpert.rs crates/hth-core/src/session.rs crates/hth-core/src/warning.rs

/root/repo/target/debug/deps/hth_core-8e54515dae11466d: crates/hth-core/src/lib.rs crates/hth-core/src/cross_session.rs crates/hth-core/src/policy.rs crates/hth-core/src/secpert.rs crates/hth-core/src/session.rs crates/hth-core/src/warning.rs

crates/hth-core/src/lib.rs:
crates/hth-core/src/cross_session.rs:
crates/hth-core/src/policy.rs:
crates/hth-core/src/secpert.rs:
crates/hth-core/src/session.rs:
crates/hth-core/src/warning.rs:
