/root/repo/target/debug/deps/table8-944b1d4d93de74bf.d: crates/hth-bench/src/bin/table8.rs Cargo.toml

/root/repo/target/debug/deps/libtable8-944b1d4d93de74bf.rmeta: crates/hth-bench/src/bin/table8.rs Cargo.toml

crates/hth-bench/src/bin/table8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
