/root/repo/target/debug/deps/perf_eval-a22ee3f795ca3bf0.d: crates/hth-bench/src/bin/perf_eval.rs

/root/repo/target/debug/deps/perf_eval-a22ee3f795ca3bf0: crates/hth-bench/src/bin/perf_eval.rs

crates/hth-bench/src/bin/perf_eval.rs:
