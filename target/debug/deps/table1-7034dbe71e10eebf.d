/root/repo/target/debug/deps/table1-7034dbe71e10eebf.d: crates/hth-bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-7034dbe71e10eebf: crates/hth-bench/src/bin/table1.rs

crates/hth-bench/src/bin/table1.rs:
