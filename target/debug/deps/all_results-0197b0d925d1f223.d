/root/repo/target/debug/deps/all_results-0197b0d925d1f223.d: crates/hth-bench/src/bin/all_results.rs Cargo.toml

/root/repo/target/debug/deps/liball_results-0197b0d925d1f223.rmeta: crates/hth-bench/src/bin/all_results.rs Cargo.toml

crates/hth-bench/src/bin/all_results.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
