/root/repo/target/debug/deps/secure_binary-6ce68b19fa207eb8.d: crates/hth-bench/src/bin/secure_binary.rs

/root/repo/target/debug/deps/secure_binary-6ce68b19fa207eb8: crates/hth-bench/src/bin/secure_binary.rs

crates/hth-bench/src/bin/secure_binary.rs:
