/root/repo/target/debug/deps/pipeline-eced7fbf71e1a614.d: crates/hth-bench/benches/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-eced7fbf71e1a614.rmeta: crates/hth-bench/benches/pipeline.rs Cargo.toml

crates/hth-bench/benches/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
