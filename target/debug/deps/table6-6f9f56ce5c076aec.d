/root/repo/target/debug/deps/table6-6f9f56ce5c076aec.d: crates/hth-bench/src/bin/table6.rs Cargo.toml

/root/repo/target/debug/deps/libtable6-6f9f56ce5c076aec.rmeta: crates/hth-bench/src/bin/table6.rs Cargo.toml

crates/hth-bench/src/bin/table6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
