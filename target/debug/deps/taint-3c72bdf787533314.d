/root/repo/target/debug/deps/taint-3c72bdf787533314.d: crates/hth-bench/benches/taint.rs

/root/repo/target/debug/deps/taint-3c72bdf787533314: crates/hth-bench/benches/taint.rs

crates/hth-bench/benches/taint.rs:
