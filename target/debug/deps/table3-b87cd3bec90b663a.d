/root/repo/target/debug/deps/table3-b87cd3bec90b663a.d: crates/hth-bench/src/bin/table3.rs Cargo.toml

/root/repo/target/debug/deps/libtable3-b87cd3bec90b663a.rmeta: crates/hth-bench/src/bin/table3.rs Cargo.toml

crates/hth-bench/src/bin/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
