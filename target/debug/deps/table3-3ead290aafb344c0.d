/root/repo/target/debug/deps/table3-3ead290aafb344c0.d: crates/hth-bench/src/bin/table3.rs Cargo.toml

/root/repo/target/debug/deps/libtable3-3ead290aafb344c0.rmeta: crates/hth-bench/src/bin/table3.rs Cargo.toml

crates/hth-bench/src/bin/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
