/root/repo/target/debug/deps/modify-54ce9057833d7e07.d: crates/secpert-engine/tests/modify.rs Cargo.toml

/root/repo/target/debug/deps/libmodify-54ce9057833d7e07.rmeta: crates/secpert-engine/tests/modify.rs Cargo.toml

crates/secpert-engine/tests/modify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
