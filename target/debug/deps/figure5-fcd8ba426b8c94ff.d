/root/repo/target/debug/deps/figure5-fcd8ba426b8c94ff.d: crates/hth-bench/src/bin/figure5.rs

/root/repo/target/debug/deps/figure5-fcd8ba426b8c94ff: crates/hth-bench/src/bin/figure5.rs

crates/hth-bench/src/bin/figure5.rs:
