/root/repo/target/debug/deps/monitor-d05093e26279a0e1.d: crates/hth-bench/benches/monitor.rs Cargo.toml

/root/repo/target/debug/deps/libmonitor-d05093e26279a0e1.rmeta: crates/hth-bench/benches/monitor.rs Cargo.toml

crates/hth-bench/benches/monitor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
