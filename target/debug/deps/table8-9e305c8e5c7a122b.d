/root/repo/target/debug/deps/table8-9e305c8e5c7a122b.d: crates/hth-bench/src/bin/table8.rs

/root/repo/target/debug/deps/table8-9e305c8e5c7a122b: crates/hth-bench/src/bin/table8.rs

crates/hth-bench/src/bin/table8.rs:
