/root/repo/target/debug/deps/table1-1de0c64e5cf2f9b2.d: crates/hth-bench/src/bin/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-1de0c64e5cf2f9b2.rmeta: crates/hth-bench/src/bin/table1.rs Cargo.toml

crates/hth-bench/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
