/root/repo/target/debug/deps/monitor-f974070a0d286baa.d: crates/hth-bench/benches/monitor.rs Cargo.toml

/root/repo/target/debug/deps/libmonitor-f974070a0d286baa.rmeta: crates/hth-bench/benches/monitor.rs Cargo.toml

crates/hth-bench/benches/monitor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
