/root/repo/target/debug/deps/full_pipeline-e55208bbd2e54b70.d: tests/full_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libfull_pipeline-e55208bbd2e54b70.rmeta: tests/full_pipeline.rs Cargo.toml

tests/full_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
