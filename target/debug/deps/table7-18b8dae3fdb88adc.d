/root/repo/target/debug/deps/table7-18b8dae3fdb88adc.d: crates/hth-bench/src/bin/table7.rs

/root/repo/target/debug/deps/table7-18b8dae3fdb88adc: crates/hth-bench/src/bin/table7.rs

crates/hth-bench/src/bin/table7.rs:
