/root/repo/target/debug/deps/hth_cli-357d479702a46bd7.d: crates/hth-cli/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhth_cli-357d479702a46bd7.rmeta: crates/hth-cli/src/lib.rs Cargo.toml

crates/hth-cli/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
