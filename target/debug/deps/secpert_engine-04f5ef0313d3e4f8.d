/root/repo/target/debug/deps/secpert_engine-04f5ef0313d3e4f8.d: crates/secpert-engine/src/lib.rs crates/secpert-engine/src/builtins.rs crates/secpert-engine/src/engine.rs crates/secpert-engine/src/error.rs crates/secpert-engine/src/explain.rs crates/secpert-engine/src/expr.rs crates/secpert-engine/src/fact.rs crates/secpert-engine/src/parser/mod.rs crates/secpert-engine/src/parser/lexer.rs crates/secpert-engine/src/parser/reader.rs crates/secpert-engine/src/pattern.rs crates/secpert-engine/src/rule.rs crates/secpert-engine/src/template.rs crates/secpert-engine/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libsecpert_engine-04f5ef0313d3e4f8.rmeta: crates/secpert-engine/src/lib.rs crates/secpert-engine/src/builtins.rs crates/secpert-engine/src/engine.rs crates/secpert-engine/src/error.rs crates/secpert-engine/src/explain.rs crates/secpert-engine/src/expr.rs crates/secpert-engine/src/fact.rs crates/secpert-engine/src/parser/mod.rs crates/secpert-engine/src/parser/lexer.rs crates/secpert-engine/src/parser/reader.rs crates/secpert-engine/src/pattern.rs crates/secpert-engine/src/rule.rs crates/secpert-engine/src/template.rs crates/secpert-engine/src/value.rs Cargo.toml

crates/secpert-engine/src/lib.rs:
crates/secpert-engine/src/builtins.rs:
crates/secpert-engine/src/engine.rs:
crates/secpert-engine/src/error.rs:
crates/secpert-engine/src/explain.rs:
crates/secpert-engine/src/expr.rs:
crates/secpert-engine/src/fact.rs:
crates/secpert-engine/src/parser/mod.rs:
crates/secpert-engine/src/parser/lexer.rs:
crates/secpert-engine/src/parser/reader.rs:
crates/secpert-engine/src/pattern.rs:
crates/secpert-engine/src/rule.rs:
crates/secpert-engine/src/template.rs:
crates/secpert-engine/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
