/root/repo/target/debug/deps/proptests-0e32f417c794f9e6.d: crates/secpert-engine/tests/proptests.rs

/root/repo/target/debug/deps/proptests-0e32f417c794f9e6: crates/secpert-engine/tests/proptests.rs

crates/secpert-engine/tests/proptests.rs:
