/root/repo/target/debug/deps/table4-8fb6aff46d4ce6c7.d: crates/hth-bench/src/bin/table4.rs Cargo.toml

/root/repo/target/debug/deps/libtable4-8fb6aff46d4ce6c7.rmeta: crates/hth-bench/src/bin/table4.rs Cargo.toml

crates/hth-bench/src/bin/table4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
