/root/repo/target/debug/deps/table7-e769d9ea8dd30d35.d: crates/hth-bench/src/bin/table7.rs

/root/repo/target/debug/deps/table7-e769d9ea8dd30d35: crates/hth-bench/src/bin/table7.rs

crates/hth-bench/src/bin/table7.rs:
