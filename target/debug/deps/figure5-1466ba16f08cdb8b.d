/root/repo/target/debug/deps/figure5-1466ba16f08cdb8b.d: crates/hth-bench/src/bin/figure5.rs Cargo.toml

/root/repo/target/debug/deps/libfigure5-1466ba16f08cdb8b.rmeta: crates/hth-bench/src/bin/figure5.rs Cargo.toml

crates/hth-bench/src/bin/figure5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
