/root/repo/target/debug/deps/emukernel-ded7b0b96536685e.d: crates/emukernel/src/lib.rs crates/emukernel/src/kernel.rs crates/emukernel/src/net.rs crates/emukernel/src/process.rs crates/emukernel/src/vfs.rs Cargo.toml

/root/repo/target/debug/deps/libemukernel-ded7b0b96536685e.rmeta: crates/emukernel/src/lib.rs crates/emukernel/src/kernel.rs crates/emukernel/src/net.rs crates/emukernel/src/process.rs crates/emukernel/src/vfs.rs Cargo.toml

crates/emukernel/src/lib.rs:
crates/emukernel/src/kernel.rs:
crates/emukernel/src/net.rs:
crates/emukernel/src/process.rs:
crates/emukernel/src/vfs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
