/root/repo/target/debug/deps/harrier-7c468790c44369b3.d: crates/harrier/src/lib.rs crates/harrier/src/audit.rs crates/harrier/src/events.rs crates/harrier/src/freq.rs crates/harrier/src/monitor.rs crates/harrier/src/shadow.rs crates/harrier/src/tag.rs Cargo.toml

/root/repo/target/debug/deps/libharrier-7c468790c44369b3.rmeta: crates/harrier/src/lib.rs crates/harrier/src/audit.rs crates/harrier/src/events.rs crates/harrier/src/freq.rs crates/harrier/src/monitor.rs crates/harrier/src/shadow.rs crates/harrier/src/tag.rs Cargo.toml

crates/harrier/src/lib.rs:
crates/harrier/src/audit.rs:
crates/harrier/src/events.rs:
crates/harrier/src/freq.rs:
crates/harrier/src/monitor.rs:
crates/harrier/src/shadow.rs:
crates/harrier/src/tag.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
