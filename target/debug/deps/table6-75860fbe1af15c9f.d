/root/repo/target/debug/deps/table6-75860fbe1af15c9f.d: crates/hth-bench/src/bin/table6.rs Cargo.toml

/root/repo/target/debug/deps/libtable6-75860fbe1af15c9f.rmeta: crates/hth-bench/src/bin/table6.rs Cargo.toml

crates/hth-bench/src/bin/table6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
