/root/repo/target/debug/deps/proptest_shim-88933d3bb8996d01.d: crates/proptest-shim/src/lib.rs crates/proptest-shim/src/collection.rs

/root/repo/target/debug/deps/libproptest_shim-88933d3bb8996d01.rlib: crates/proptest-shim/src/lib.rs crates/proptest-shim/src/collection.rs

/root/repo/target/debug/deps/libproptest_shim-88933d3bb8996d01.rmeta: crates/proptest-shim/src/lib.rs crates/proptest-shim/src/collection.rs

crates/proptest-shim/src/lib.rs:
crates/proptest-shim/src/collection.rs:
