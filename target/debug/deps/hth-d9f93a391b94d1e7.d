/root/repo/target/debug/deps/hth-d9f93a391b94d1e7.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhth-d9f93a391b94d1e7.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
