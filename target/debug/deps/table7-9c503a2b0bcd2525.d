/root/repo/target/debug/deps/table7-9c503a2b0bcd2525.d: crates/hth-bench/src/bin/table7.rs Cargo.toml

/root/repo/target/debug/deps/libtable7-9c503a2b0bcd2525.rmeta: crates/hth-bench/src/bin/table7.rs Cargo.toml

crates/hth-bench/src/bin/table7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
