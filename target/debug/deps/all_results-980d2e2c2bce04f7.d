/root/repo/target/debug/deps/all_results-980d2e2c2bce04f7.d: crates/hth-bench/src/bin/all_results.rs

/root/repo/target/debug/deps/all_results-980d2e2c2bce04f7: crates/hth-bench/src/bin/all_results.rs

crates/hth-bench/src/bin/all_results.rs:
