/root/repo/target/debug/deps/proptest_shim-35ff5b0e55d97b2a.d: crates/proptest-shim/src/lib.rs crates/proptest-shim/src/collection.rs

/root/repo/target/debug/deps/proptest_shim-35ff5b0e55d97b2a: crates/proptest-shim/src/lib.rs crates/proptest-shim/src/collection.rs

crates/proptest-shim/src/lib.rs:
crates/proptest-shim/src/collection.rs:
