/root/repo/target/debug/deps/secure_binary-40ac0bc145aa73d5.d: crates/hth-bench/src/bin/secure_binary.rs Cargo.toml

/root/repo/target/debug/deps/libsecure_binary-40ac0bc145aa73d5.rmeta: crates/hth-bench/src/bin/secure_binary.rs Cargo.toml

crates/hth-bench/src/bin/secure_binary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
