/root/repo/target/debug/deps/table5-36ab18ada453f27d.d: crates/hth-bench/src/bin/table5.rs

/root/repo/target/debug/deps/table5-36ab18ada453f27d: crates/hth-bench/src/bin/table5.rs

crates/hth-bench/src/bin/table5.rs:
