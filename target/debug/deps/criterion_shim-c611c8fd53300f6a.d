/root/repo/target/debug/deps/criterion_shim-c611c8fd53300f6a.d: crates/criterion-shim/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion_shim-c611c8fd53300f6a.rmeta: crates/criterion-shim/src/lib.rs Cargo.toml

crates/criterion-shim/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
