/root/repo/target/debug/deps/prop_kernel-818096017577659a.d: crates/emukernel/tests/prop_kernel.rs

/root/repo/target/debug/deps/prop_kernel-818096017577659a: crates/emukernel/tests/prop_kernel.rs

crates/emukernel/tests/prop_kernel.rs:
