/root/repo/target/debug/deps/table2-ee8448aa71aa40d7.d: crates/hth-bench/src/bin/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-ee8448aa71aa40d7.rmeta: crates/hth-bench/src/bin/table2.rs Cargo.toml

crates/hth-bench/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
