/root/repo/target/debug/deps/table6-af7b0db9c66dfb09.d: crates/hth-bench/src/bin/table6.rs

/root/repo/target/debug/deps/table6-af7b0db9c66dfb09: crates/hth-bench/src/bin/table6.rs

crates/hth-bench/src/bin/table6.rs:
