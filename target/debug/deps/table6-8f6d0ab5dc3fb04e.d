/root/repo/target/debug/deps/table6-8f6d0ab5dc3fb04e.d: crates/hth-bench/src/bin/table6.rs Cargo.toml

/root/repo/target/debug/deps/libtable6-8f6d0ab5dc3fb04e.rmeta: crates/hth-bench/src/bin/table6.rs Cargo.toml

crates/hth-bench/src/bin/table6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
