/root/repo/target/debug/deps/full_pipeline-bf2995311f1130e5.d: tests/full_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libfull_pipeline-bf2995311f1130e5.rmeta: tests/full_pipeline.rs Cargo.toml

tests/full_pipeline.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
