/root/repo/target/debug/deps/table2-1de8e08dc2bdc6a5.d: crates/hth-bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-1de8e08dc2bdc6a5: crates/hth-bench/src/bin/table2.rs

crates/hth-bench/src/bin/table2.rs:
