/root/repo/target/debug/deps/appendix_a-64dca5c81a393c8b.d: crates/hth-bench/src/bin/appendix_a.rs

/root/repo/target/debug/deps/appendix_a-64dca5c81a393c8b: crates/hth-bench/src/bin/appendix_a.rs

crates/hth-bench/src/bin/appendix_a.rs:
