/root/repo/target/debug/deps/table1-81b179208ab0f1b2.d: crates/hth-bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-81b179208ab0f1b2: crates/hth-bench/src/bin/table1.rs

crates/hth-bench/src/bin/table1.rs:
