/root/repo/target/debug/deps/functions_and_strategy-c31b592da87b7f0f.d: crates/secpert-engine/tests/functions_and_strategy.rs

/root/repo/target/debug/deps/functions_and_strategy-c31b592da87b7f0f: crates/secpert-engine/tests/functions_and_strategy.rs

crates/secpert-engine/tests/functions_and_strategy.rs:
