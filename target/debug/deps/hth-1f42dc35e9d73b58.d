/root/repo/target/debug/deps/hth-1f42dc35e9d73b58.d: crates/hth-cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libhth-1f42dc35e9d73b58.rmeta: crates/hth-cli/src/main.rs Cargo.toml

crates/hth-cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
