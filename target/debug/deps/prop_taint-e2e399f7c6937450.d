/root/repo/target/debug/deps/prop_taint-e2e399f7c6937450.d: crates/harrier/tests/prop_taint.rs Cargo.toml

/root/repo/target/debug/deps/libprop_taint-e2e399f7c6937450.rmeta: crates/harrier/tests/prop_taint.rs Cargo.toml

crates/harrier/tests/prop_taint.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
