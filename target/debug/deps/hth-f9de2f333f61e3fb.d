/root/repo/target/debug/deps/hth-f9de2f333f61e3fb.d: crates/hth-cli/src/main.rs

/root/repo/target/debug/deps/hth-f9de2f333f61e3fb: crates/hth-cli/src/main.rs

crates/hth-cli/src/main.rs:
