/root/repo/target/debug/deps/harrier-7e7db57c9bbe71fa.d: crates/harrier/src/lib.rs crates/harrier/src/audit.rs crates/harrier/src/events.rs crates/harrier/src/freq.rs crates/harrier/src/monitor.rs crates/harrier/src/shadow.rs crates/harrier/src/tag.rs Cargo.toml

/root/repo/target/debug/deps/libharrier-7e7db57c9bbe71fa.rmeta: crates/harrier/src/lib.rs crates/harrier/src/audit.rs crates/harrier/src/events.rs crates/harrier/src/freq.rs crates/harrier/src/monitor.rs crates/harrier/src/shadow.rs crates/harrier/src/tag.rs Cargo.toml

crates/harrier/src/lib.rs:
crates/harrier/src/audit.rs:
crates/harrier/src/events.rs:
crates/harrier/src/freq.rs:
crates/harrier/src/monitor.rs:
crates/harrier/src/shadow.rs:
crates/harrier/src/tag.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
