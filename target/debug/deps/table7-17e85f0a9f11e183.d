/root/repo/target/debug/deps/table7-17e85f0a9f11e183.d: crates/hth-bench/src/bin/table7.rs Cargo.toml

/root/repo/target/debug/deps/libtable7-17e85f0a9f11e183.rmeta: crates/hth-bench/src/bin/table7.rs Cargo.toml

crates/hth-bench/src/bin/table7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
