/root/repo/target/debug/deps/end_to_end-873e343fb497ef51.d: crates/harrier/tests/end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end-873e343fb497ef51.rmeta: crates/harrier/tests/end_to_end.rs Cargo.toml

crates/harrier/tests/end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
