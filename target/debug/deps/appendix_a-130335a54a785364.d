/root/repo/target/debug/deps/appendix_a-130335a54a785364.d: crates/hth-bench/src/bin/appendix_a.rs

/root/repo/target/debug/deps/appendix_a-130335a54a785364: crates/hth-bench/src/bin/appendix_a.rs

crates/hth-bench/src/bin/appendix_a.rs:
