/root/repo/target/debug/deps/prop_taint-197bf065638f583a.d: crates/harrier/tests/prop_taint.rs Cargo.toml

/root/repo/target/debug/deps/libprop_taint-197bf065638f583a.rmeta: crates/harrier/tests/prop_taint.rs Cargo.toml

crates/harrier/tests/prop_taint.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
