/root/repo/target/debug/deps/table1-2e78a0a2bda36732.d: crates/hth-bench/src/bin/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-2e78a0a2bda36732.rmeta: crates/hth-bench/src/bin/table1.rs Cargo.toml

crates/hth-bench/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
