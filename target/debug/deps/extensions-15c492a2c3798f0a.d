/root/repo/target/debug/deps/extensions-15c492a2c3798f0a.d: crates/hth-bench/src/bin/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-15c492a2c3798f0a.rmeta: crates/hth-bench/src/bin/extensions.rs Cargo.toml

crates/hth-bench/src/bin/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
