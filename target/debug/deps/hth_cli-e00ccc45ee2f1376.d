/root/repo/target/debug/deps/hth_cli-e00ccc45ee2f1376.d: crates/hth-cli/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhth_cli-e00ccc45ee2f1376.rmeta: crates/hth-cli/src/lib.rs Cargo.toml

crates/hth-cli/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
