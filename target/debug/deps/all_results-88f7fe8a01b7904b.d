/root/repo/target/debug/deps/all_results-88f7fe8a01b7904b.d: crates/hth-bench/src/bin/all_results.rs Cargo.toml

/root/repo/target/debug/deps/liball_results-88f7fe8a01b7904b.rmeta: crates/hth-bench/src/bin/all_results.rs Cargo.toml

crates/hth-bench/src/bin/all_results.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
