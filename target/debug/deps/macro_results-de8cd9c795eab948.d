/root/repo/target/debug/deps/macro_results-de8cd9c795eab948.d: crates/hth-bench/src/bin/macro_results.rs Cargo.toml

/root/repo/target/debug/deps/libmacro_results-de8cd9c795eab948.rmeta: crates/hth-bench/src/bin/macro_results.rs Cargo.toml

crates/hth-bench/src/bin/macro_results.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
