/root/repo/target/debug/deps/harrier-0d54ef99aa49b002.d: crates/harrier/src/lib.rs crates/harrier/src/audit.rs crates/harrier/src/events.rs crates/harrier/src/freq.rs crates/harrier/src/monitor.rs crates/harrier/src/naive.rs crates/harrier/src/shadow.rs crates/harrier/src/tag.rs Cargo.toml

/root/repo/target/debug/deps/libharrier-0d54ef99aa49b002.rmeta: crates/harrier/src/lib.rs crates/harrier/src/audit.rs crates/harrier/src/events.rs crates/harrier/src/freq.rs crates/harrier/src/monitor.rs crates/harrier/src/naive.rs crates/harrier/src/shadow.rs crates/harrier/src/tag.rs Cargo.toml

crates/harrier/src/lib.rs:
crates/harrier/src/audit.rs:
crates/harrier/src/events.rs:
crates/harrier/src/freq.rs:
crates/harrier/src/monitor.rs:
crates/harrier/src/naive.rs:
crates/harrier/src/shadow.rs:
crates/harrier/src/tag.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
