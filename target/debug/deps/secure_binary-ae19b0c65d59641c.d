/root/repo/target/debug/deps/secure_binary-ae19b0c65d59641c.d: crates/hth-bench/src/bin/secure_binary.rs

/root/repo/target/debug/deps/secure_binary-ae19b0c65d59641c: crates/hth-bench/src/bin/secure_binary.rs

crates/hth-bench/src/bin/secure_binary.rs:
