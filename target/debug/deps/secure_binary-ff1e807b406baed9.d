/root/repo/target/debug/deps/secure_binary-ff1e807b406baed9.d: crates/hth-bench/src/bin/secure_binary.rs Cargo.toml

/root/repo/target/debug/deps/libsecure_binary-ff1e807b406baed9.rmeta: crates/hth-bench/src/bin/secure_binary.rs Cargo.toml

crates/hth-bench/src/bin/secure_binary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
