/root/repo/target/debug/deps/end_to_end-51f334d08785e1d2.d: crates/harrier/tests/end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end-51f334d08785e1d2.rmeta: crates/harrier/tests/end_to_end.rs Cargo.toml

crates/harrier/tests/end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
