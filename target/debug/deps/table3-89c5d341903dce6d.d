/root/repo/target/debug/deps/table3-89c5d341903dce6d.d: crates/hth-bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-89c5d341903dce6d: crates/hth-bench/src/bin/table3.rs

crates/hth-bench/src/bin/table3.rs:
