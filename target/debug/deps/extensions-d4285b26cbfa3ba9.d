/root/repo/target/debug/deps/extensions-d4285b26cbfa3ba9.d: crates/hth-bench/src/bin/extensions.rs

/root/repo/target/debug/deps/extensions-d4285b26cbfa3ba9: crates/hth-bench/src/bin/extensions.rs

crates/hth-bench/src/bin/extensions.rs:
