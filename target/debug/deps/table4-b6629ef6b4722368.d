/root/repo/target/debug/deps/table4-b6629ef6b4722368.d: crates/hth-bench/src/bin/table4.rs Cargo.toml

/root/repo/target/debug/deps/libtable4-b6629ef6b4722368.rmeta: crates/hth-bench/src/bin/table4.rs Cargo.toml

crates/hth-bench/src/bin/table4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
