/root/repo/target/debug/deps/pipeline-da5b098de4f25c2d.d: crates/hth-bench/benches/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-da5b098de4f25c2d.rmeta: crates/hth-bench/benches/pipeline.rs Cargo.toml

crates/hth-bench/benches/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
