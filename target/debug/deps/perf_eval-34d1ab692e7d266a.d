/root/repo/target/debug/deps/perf_eval-34d1ab692e7d266a.d: crates/hth-bench/src/bin/perf_eval.rs Cargo.toml

/root/repo/target/debug/deps/libperf_eval-34d1ab692e7d266a.rmeta: crates/hth-bench/src/bin/perf_eval.rs Cargo.toml

crates/hth-bench/src/bin/perf_eval.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
