/root/repo/target/debug/deps/table1-56111c6be5c54e43.d: crates/hth-bench/src/bin/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-56111c6be5c54e43.rmeta: crates/hth-bench/src/bin/table1.rs Cargo.toml

crates/hth-bench/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
