/root/repo/target/debug/deps/table3-6fba1099a1af05e1.d: crates/hth-bench/src/bin/table3.rs Cargo.toml

/root/repo/target/debug/deps/libtable3-6fba1099a1af05e1.rmeta: crates/hth-bench/src/bin/table3.rs Cargo.toml

crates/hth-bench/src/bin/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
