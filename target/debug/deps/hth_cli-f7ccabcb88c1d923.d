/root/repo/target/debug/deps/hth_cli-f7ccabcb88c1d923.d: crates/hth-cli/src/lib.rs

/root/repo/target/debug/deps/hth_cli-f7ccabcb88c1d923: crates/hth-cli/src/lib.rs

crates/hth-cli/src/lib.rs:
