/root/repo/target/debug/deps/end_to_end-56f2deaec8d78545.d: crates/harrier/tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-56f2deaec8d78545: crates/harrier/tests/end_to_end.rs

crates/harrier/tests/end_to_end.rs:
