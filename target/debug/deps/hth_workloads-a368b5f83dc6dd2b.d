/root/repo/target/debug/deps/hth_workloads-a368b5f83dc6dd2b.d: crates/hth-workloads/src/lib.rs crates/hth-workloads/src/exploits.rs crates/hth-workloads/src/extensions.rs crates/hth-workloads/src/libc.rs crates/hth-workloads/src/macro_bench.rs crates/hth-workloads/src/micro/mod.rs crates/hth-workloads/src/micro/exec_flow.rs crates/hth-workloads/src/micro/info_flow.rs crates/hth-workloads/src/micro/resource.rs crates/hth-workloads/src/scenario.rs crates/hth-workloads/src/table1_models.rs crates/hth-workloads/src/trusted.rs Cargo.toml

/root/repo/target/debug/deps/libhth_workloads-a368b5f83dc6dd2b.rmeta: crates/hth-workloads/src/lib.rs crates/hth-workloads/src/exploits.rs crates/hth-workloads/src/extensions.rs crates/hth-workloads/src/libc.rs crates/hth-workloads/src/macro_bench.rs crates/hth-workloads/src/micro/mod.rs crates/hth-workloads/src/micro/exec_flow.rs crates/hth-workloads/src/micro/info_flow.rs crates/hth-workloads/src/micro/resource.rs crates/hth-workloads/src/scenario.rs crates/hth-workloads/src/table1_models.rs crates/hth-workloads/src/trusted.rs Cargo.toml

crates/hth-workloads/src/lib.rs:
crates/hth-workloads/src/exploits.rs:
crates/hth-workloads/src/extensions.rs:
crates/hth-workloads/src/libc.rs:
crates/hth-workloads/src/macro_bench.rs:
crates/hth-workloads/src/micro/mod.rs:
crates/hth-workloads/src/micro/exec_flow.rs:
crates/hth-workloads/src/micro/info_flow.rs:
crates/hth-workloads/src/micro/resource.rs:
crates/hth-workloads/src/scenario.rs:
crates/hth-workloads/src/table1_models.rs:
crates/hth-workloads/src/trusted.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
