/root/repo/target/debug/deps/perf_eval-3cc2e83a6d082fec.d: crates/hth-bench/src/bin/perf_eval.rs Cargo.toml

/root/repo/target/debug/deps/libperf_eval-3cc2e83a6d082fec.rmeta: crates/hth-bench/src/bin/perf_eval.rs Cargo.toml

crates/hth-bench/src/bin/perf_eval.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
