/root/repo/target/debug/deps/figure5-ac2311ee19f1da41.d: crates/hth-bench/src/bin/figure5.rs

/root/repo/target/debug/deps/figure5-ac2311ee19f1da41: crates/hth-bench/src/bin/figure5.rs

crates/hth-bench/src/bin/figure5.rs:
