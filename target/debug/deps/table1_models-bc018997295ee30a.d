/root/repo/target/debug/deps/table1_models-bc018997295ee30a.d: crates/hth-bench/src/bin/table1_models.rs

/root/repo/target/debug/deps/table1_models-bc018997295ee30a: crates/hth-bench/src/bin/table1_models.rs

crates/hth-bench/src/bin/table1_models.rs:
