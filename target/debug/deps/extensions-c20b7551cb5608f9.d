/root/repo/target/debug/deps/extensions-c20b7551cb5608f9.d: crates/hth-bench/src/bin/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-c20b7551cb5608f9.rmeta: crates/hth-bench/src/bin/extensions.rs Cargo.toml

crates/hth-bench/src/bin/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
