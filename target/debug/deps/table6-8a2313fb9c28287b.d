/root/repo/target/debug/deps/table6-8a2313fb9c28287b.d: crates/hth-bench/src/bin/table6.rs

/root/repo/target/debug/deps/table6-8a2313fb9c28287b: crates/hth-bench/src/bin/table6.rs

crates/hth-bench/src/bin/table6.rs:
