/root/repo/target/debug/deps/proptest_shim-a5adcae2282088f0.d: crates/proptest-shim/src/lib.rs crates/proptest-shim/src/collection.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_shim-a5adcae2282088f0.rmeta: crates/proptest-shim/src/lib.rs crates/proptest-shim/src/collection.rs Cargo.toml

crates/proptest-shim/src/lib.rs:
crates/proptest-shim/src/collection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
