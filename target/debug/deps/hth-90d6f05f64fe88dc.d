/root/repo/target/debug/deps/hth-90d6f05f64fe88dc.d: src/lib.rs

/root/repo/target/debug/deps/hth-90d6f05f64fe88dc: src/lib.rs

src/lib.rs:
