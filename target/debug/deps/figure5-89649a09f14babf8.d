/root/repo/target/debug/deps/figure5-89649a09f14babf8.d: crates/hth-bench/src/bin/figure5.rs

/root/repo/target/debug/deps/figure5-89649a09f14babf8: crates/hth-bench/src/bin/figure5.rs

crates/hth-bench/src/bin/figure5.rs:
