/root/repo/target/debug/deps/figure5-90349644ba444a49.d: crates/hth-bench/src/bin/figure5.rs Cargo.toml

/root/repo/target/debug/deps/libfigure5-90349644ba444a49.rmeta: crates/hth-bench/src/bin/figure5.rs Cargo.toml

crates/hth-bench/src/bin/figure5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
