/root/repo/target/debug/deps/macro_results-550dd331071f6087.d: crates/hth-bench/src/bin/macro_results.rs

/root/repo/target/debug/deps/macro_results-550dd331071f6087: crates/hth-bench/src/bin/macro_results.rs

crates/hth-bench/src/bin/macro_results.rs:
