/root/repo/target/debug/deps/hth_bench-63d280e37ca85e1a.d: crates/hth-bench/src/lib.rs crates/hth-bench/src/json.rs crates/hth-bench/src/perf.rs crates/hth-bench/src/report.rs crates/hth-bench/src/results.rs crates/hth-bench/src/tables.rs Cargo.toml

/root/repo/target/debug/deps/libhth_bench-63d280e37ca85e1a.rmeta: crates/hth-bench/src/lib.rs crates/hth-bench/src/json.rs crates/hth-bench/src/perf.rs crates/hth-bench/src/report.rs crates/hth-bench/src/results.rs crates/hth-bench/src/tables.rs Cargo.toml

crates/hth-bench/src/lib.rs:
crates/hth-bench/src/json.rs:
crates/hth-bench/src/perf.rs:
crates/hth-bench/src/report.rs:
crates/hth-bench/src/results.rs:
crates/hth-bench/src/tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
