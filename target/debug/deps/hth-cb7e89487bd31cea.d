/root/repo/target/debug/deps/hth-cb7e89487bd31cea.d: crates/hth-cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libhth-cb7e89487bd31cea.rmeta: crates/hth-cli/src/main.rs Cargo.toml

crates/hth-cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
