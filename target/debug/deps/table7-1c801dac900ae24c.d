/root/repo/target/debug/deps/table7-1c801dac900ae24c.d: crates/hth-bench/src/bin/table7.rs

/root/repo/target/debug/deps/table7-1c801dac900ae24c: crates/hth-bench/src/bin/table7.rs

crates/hth-bench/src/bin/table7.rs:
