/root/repo/target/debug/deps/functions_and_strategy-5ae3d4c1527d0b79.d: crates/secpert-engine/tests/functions_and_strategy.rs Cargo.toml

/root/repo/target/debug/deps/libfunctions_and_strategy-5ae3d4c1527d0b79.rmeta: crates/secpert-engine/tests/functions_and_strategy.rs Cargo.toml

crates/secpert-engine/tests/functions_and_strategy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
