/root/repo/target/debug/deps/hth_core-9ddd9274c7d0cfb2.d: crates/hth-core/src/lib.rs crates/hth-core/src/cross_session.rs crates/hth-core/src/policy.rs crates/hth-core/src/secpert.rs crates/hth-core/src/session.rs crates/hth-core/src/warning.rs

/root/repo/target/debug/deps/hth_core-9ddd9274c7d0cfb2: crates/hth-core/src/lib.rs crates/hth-core/src/cross_session.rs crates/hth-core/src/policy.rs crates/hth-core/src/secpert.rs crates/hth-core/src/session.rs crates/hth-core/src/warning.rs

crates/hth-core/src/lib.rs:
crates/hth-core/src/cross_session.rs:
crates/hth-core/src/policy.rs:
crates/hth-core/src/secpert.rs:
crates/hth-core/src/session.rs:
crates/hth-core/src/warning.rs:
