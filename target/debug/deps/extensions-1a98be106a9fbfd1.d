/root/repo/target/debug/deps/extensions-1a98be106a9fbfd1.d: crates/hth-bench/src/bin/extensions.rs

/root/repo/target/debug/deps/extensions-1a98be106a9fbfd1: crates/hth-bench/src/bin/extensions.rs

crates/hth-bench/src/bin/extensions.rs:
