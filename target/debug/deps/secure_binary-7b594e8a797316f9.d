/root/repo/target/debug/deps/secure_binary-7b594e8a797316f9.d: crates/hth-bench/src/bin/secure_binary.rs

/root/repo/target/debug/deps/secure_binary-7b594e8a797316f9: crates/hth-bench/src/bin/secure_binary.rs

crates/hth-bench/src/bin/secure_binary.rs:
