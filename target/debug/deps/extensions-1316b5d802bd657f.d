/root/repo/target/debug/deps/extensions-1316b5d802bd657f.d: crates/hth-bench/src/bin/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-1316b5d802bd657f.rmeta: crates/hth-bench/src/bin/extensions.rs Cargo.toml

crates/hth-bench/src/bin/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
