/root/repo/target/debug/deps/hth-5c0facf91cf80229.d: src/lib.rs

/root/repo/target/debug/deps/libhth-5c0facf91cf80229.rlib: src/lib.rs

/root/repo/target/debug/deps/libhth-5c0facf91cf80229.rmeta: src/lib.rs

src/lib.rs:
