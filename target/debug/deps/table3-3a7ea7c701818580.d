/root/repo/target/debug/deps/table3-3a7ea7c701818580.d: crates/hth-bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-3a7ea7c701818580: crates/hth-bench/src/bin/table3.rs

crates/hth-bench/src/bin/table3.rs:
