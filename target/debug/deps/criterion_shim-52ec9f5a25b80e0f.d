/root/repo/target/debug/deps/criterion_shim-52ec9f5a25b80e0f.d: crates/criterion-shim/src/lib.rs

/root/repo/target/debug/deps/libcriterion_shim-52ec9f5a25b80e0f.rlib: crates/criterion-shim/src/lib.rs

/root/repo/target/debug/deps/libcriterion_shim-52ec9f5a25b80e0f.rmeta: crates/criterion-shim/src/lib.rs

crates/criterion-shim/src/lib.rs:
