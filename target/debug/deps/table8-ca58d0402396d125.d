/root/repo/target/debug/deps/table8-ca58d0402396d125.d: crates/hth-bench/src/bin/table8.rs Cargo.toml

/root/repo/target/debug/deps/libtable8-ca58d0402396d125.rmeta: crates/hth-bench/src/bin/table8.rs Cargo.toml

crates/hth-bench/src/bin/table8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
