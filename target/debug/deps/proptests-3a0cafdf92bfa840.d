/root/repo/target/debug/deps/proptests-3a0cafdf92bfa840.d: crates/hth-vm/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-3a0cafdf92bfa840.rmeta: crates/hth-vm/tests/proptests.rs Cargo.toml

crates/hth-vm/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
