/root/repo/target/debug/deps/hth_cli-2470e7521da328a3.d: crates/hth-cli/src/lib.rs

/root/repo/target/debug/deps/hth_cli-2470e7521da328a3: crates/hth-cli/src/lib.rs

crates/hth-cli/src/lib.rs:
