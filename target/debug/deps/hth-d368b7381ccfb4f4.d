/root/repo/target/debug/deps/hth-d368b7381ccfb4f4.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhth-d368b7381ccfb4f4.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
