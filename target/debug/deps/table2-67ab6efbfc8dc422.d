/root/repo/target/debug/deps/table2-67ab6efbfc8dc422.d: crates/hth-bench/src/bin/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-67ab6efbfc8dc422.rmeta: crates/hth-bench/src/bin/table2.rs Cargo.toml

crates/hth-bench/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
