/root/repo/target/debug/deps/macro_results-da369a870ef0977b.d: crates/hth-bench/src/bin/macro_results.rs Cargo.toml

/root/repo/target/debug/deps/libmacro_results-da369a870ef0977b.rmeta: crates/hth-bench/src/bin/macro_results.rs Cargo.toml

crates/hth-bench/src/bin/macro_results.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
