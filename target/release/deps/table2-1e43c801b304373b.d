/root/repo/target/release/deps/table2-1e43c801b304373b.d: crates/hth-bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-1e43c801b304373b: crates/hth-bench/src/bin/table2.rs

crates/hth-bench/src/bin/table2.rs:
