/root/repo/target/release/deps/table1-980e2fbb805200df.d: crates/hth-bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-980e2fbb805200df: crates/hth-bench/src/bin/table1.rs

crates/hth-bench/src/bin/table1.rs:
