/root/repo/target/release/deps/appendix_a-251066bc57804b07.d: crates/hth-bench/src/bin/appendix_a.rs

/root/repo/target/release/deps/appendix_a-251066bc57804b07: crates/hth-bench/src/bin/appendix_a.rs

crates/hth-bench/src/bin/appendix_a.rs:
