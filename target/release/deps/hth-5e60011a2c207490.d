/root/repo/target/release/deps/hth-5e60011a2c207490.d: crates/hth-cli/src/main.rs

/root/repo/target/release/deps/hth-5e60011a2c207490: crates/hth-cli/src/main.rs

crates/hth-cli/src/main.rs:
