/root/repo/target/release/deps/macro_results-dde89dbd8856fb94.d: crates/hth-bench/src/bin/macro_results.rs

/root/repo/target/release/deps/macro_results-dde89dbd8856fb94: crates/hth-bench/src/bin/macro_results.rs

crates/hth-bench/src/bin/macro_results.rs:
