/root/repo/target/release/deps/hth_vm-5ace993737525d71.d: crates/hth-vm/src/lib.rs crates/hth-vm/src/asm.rs crates/hth-vm/src/bb.rs crates/hth-vm/src/disasm.rs crates/hth-vm/src/image.rs crates/hth-vm/src/isa.rs crates/hth-vm/src/machine.rs crates/hth-vm/src/mem.rs

/root/repo/target/release/deps/libhth_vm-5ace993737525d71.rlib: crates/hth-vm/src/lib.rs crates/hth-vm/src/asm.rs crates/hth-vm/src/bb.rs crates/hth-vm/src/disasm.rs crates/hth-vm/src/image.rs crates/hth-vm/src/isa.rs crates/hth-vm/src/machine.rs crates/hth-vm/src/mem.rs

/root/repo/target/release/deps/libhth_vm-5ace993737525d71.rmeta: crates/hth-vm/src/lib.rs crates/hth-vm/src/asm.rs crates/hth-vm/src/bb.rs crates/hth-vm/src/disasm.rs crates/hth-vm/src/image.rs crates/hth-vm/src/isa.rs crates/hth-vm/src/machine.rs crates/hth-vm/src/mem.rs

crates/hth-vm/src/lib.rs:
crates/hth-vm/src/asm.rs:
crates/hth-vm/src/bb.rs:
crates/hth-vm/src/disasm.rs:
crates/hth-vm/src/image.rs:
crates/hth-vm/src/isa.rs:
crates/hth-vm/src/machine.rs:
crates/hth-vm/src/mem.rs:
