/root/repo/target/release/deps/hth-f017e91f25807efc.d: src/lib.rs

/root/repo/target/release/deps/libhth-f017e91f25807efc.rlib: src/lib.rs

/root/repo/target/release/deps/libhth-f017e91f25807efc.rmeta: src/lib.rs

src/lib.rs:
