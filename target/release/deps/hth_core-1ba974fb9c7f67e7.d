/root/repo/target/release/deps/hth_core-1ba974fb9c7f67e7.d: crates/hth-core/src/lib.rs crates/hth-core/src/cross_session.rs crates/hth-core/src/policy.rs crates/hth-core/src/secpert.rs crates/hth-core/src/session.rs crates/hth-core/src/warning.rs

/root/repo/target/release/deps/libhth_core-1ba974fb9c7f67e7.rlib: crates/hth-core/src/lib.rs crates/hth-core/src/cross_session.rs crates/hth-core/src/policy.rs crates/hth-core/src/secpert.rs crates/hth-core/src/session.rs crates/hth-core/src/warning.rs

/root/repo/target/release/deps/libhth_core-1ba974fb9c7f67e7.rmeta: crates/hth-core/src/lib.rs crates/hth-core/src/cross_session.rs crates/hth-core/src/policy.rs crates/hth-core/src/secpert.rs crates/hth-core/src/session.rs crates/hth-core/src/warning.rs

crates/hth-core/src/lib.rs:
crates/hth-core/src/cross_session.rs:
crates/hth-core/src/policy.rs:
crates/hth-core/src/secpert.rs:
crates/hth-core/src/session.rs:
crates/hth-core/src/warning.rs:
