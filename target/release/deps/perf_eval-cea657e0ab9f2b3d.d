/root/repo/target/release/deps/perf_eval-cea657e0ab9f2b3d.d: crates/hth-bench/src/bin/perf_eval.rs

/root/repo/target/release/deps/perf_eval-cea657e0ab9f2b3d: crates/hth-bench/src/bin/perf_eval.rs

crates/hth-bench/src/bin/perf_eval.rs:
