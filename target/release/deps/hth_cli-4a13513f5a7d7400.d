/root/repo/target/release/deps/hth_cli-4a13513f5a7d7400.d: crates/hth-cli/src/lib.rs

/root/repo/target/release/deps/libhth_cli-4a13513f5a7d7400.rlib: crates/hth-cli/src/lib.rs

/root/repo/target/release/deps/libhth_cli-4a13513f5a7d7400.rmeta: crates/hth-cli/src/lib.rs

crates/hth-cli/src/lib.rs:
