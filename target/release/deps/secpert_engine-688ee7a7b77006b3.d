/root/repo/target/release/deps/secpert_engine-688ee7a7b77006b3.d: crates/secpert-engine/src/lib.rs crates/secpert-engine/src/builtins.rs crates/secpert-engine/src/engine.rs crates/secpert-engine/src/error.rs crates/secpert-engine/src/explain.rs crates/secpert-engine/src/expr.rs crates/secpert-engine/src/fact.rs crates/secpert-engine/src/parser/mod.rs crates/secpert-engine/src/parser/lexer.rs crates/secpert-engine/src/parser/reader.rs crates/secpert-engine/src/pattern.rs crates/secpert-engine/src/rule.rs crates/secpert-engine/src/template.rs crates/secpert-engine/src/value.rs

/root/repo/target/release/deps/libsecpert_engine-688ee7a7b77006b3.rlib: crates/secpert-engine/src/lib.rs crates/secpert-engine/src/builtins.rs crates/secpert-engine/src/engine.rs crates/secpert-engine/src/error.rs crates/secpert-engine/src/explain.rs crates/secpert-engine/src/expr.rs crates/secpert-engine/src/fact.rs crates/secpert-engine/src/parser/mod.rs crates/secpert-engine/src/parser/lexer.rs crates/secpert-engine/src/parser/reader.rs crates/secpert-engine/src/pattern.rs crates/secpert-engine/src/rule.rs crates/secpert-engine/src/template.rs crates/secpert-engine/src/value.rs

/root/repo/target/release/deps/libsecpert_engine-688ee7a7b77006b3.rmeta: crates/secpert-engine/src/lib.rs crates/secpert-engine/src/builtins.rs crates/secpert-engine/src/engine.rs crates/secpert-engine/src/error.rs crates/secpert-engine/src/explain.rs crates/secpert-engine/src/expr.rs crates/secpert-engine/src/fact.rs crates/secpert-engine/src/parser/mod.rs crates/secpert-engine/src/parser/lexer.rs crates/secpert-engine/src/parser/reader.rs crates/secpert-engine/src/pattern.rs crates/secpert-engine/src/rule.rs crates/secpert-engine/src/template.rs crates/secpert-engine/src/value.rs

crates/secpert-engine/src/lib.rs:
crates/secpert-engine/src/builtins.rs:
crates/secpert-engine/src/engine.rs:
crates/secpert-engine/src/error.rs:
crates/secpert-engine/src/explain.rs:
crates/secpert-engine/src/expr.rs:
crates/secpert-engine/src/fact.rs:
crates/secpert-engine/src/parser/mod.rs:
crates/secpert-engine/src/parser/lexer.rs:
crates/secpert-engine/src/parser/reader.rs:
crates/secpert-engine/src/pattern.rs:
crates/secpert-engine/src/rule.rs:
crates/secpert-engine/src/template.rs:
crates/secpert-engine/src/value.rs:
