/root/repo/target/release/deps/table4-0eb04b9beb4a9a66.d: crates/hth-bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-0eb04b9beb4a9a66: crates/hth-bench/src/bin/table4.rs

crates/hth-bench/src/bin/table4.rs:
