/root/repo/target/release/deps/figure5-636a6072f7bf81b6.d: crates/hth-bench/src/bin/figure5.rs

/root/repo/target/release/deps/figure5-636a6072f7bf81b6: crates/hth-bench/src/bin/figure5.rs

crates/hth-bench/src/bin/figure5.rs:
