/root/repo/target/release/deps/secure_binary-ee5a90fe4bef066c.d: crates/hth-bench/src/bin/secure_binary.rs

/root/repo/target/release/deps/secure_binary-ee5a90fe4bef066c: crates/hth-bench/src/bin/secure_binary.rs

crates/hth-bench/src/bin/secure_binary.rs:
