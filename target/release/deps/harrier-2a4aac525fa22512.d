/root/repo/target/release/deps/harrier-2a4aac525fa22512.d: crates/harrier/src/lib.rs crates/harrier/src/audit.rs crates/harrier/src/events.rs crates/harrier/src/freq.rs crates/harrier/src/monitor.rs crates/harrier/src/shadow.rs crates/harrier/src/tag.rs

/root/repo/target/release/deps/libharrier-2a4aac525fa22512.rlib: crates/harrier/src/lib.rs crates/harrier/src/audit.rs crates/harrier/src/events.rs crates/harrier/src/freq.rs crates/harrier/src/monitor.rs crates/harrier/src/shadow.rs crates/harrier/src/tag.rs

/root/repo/target/release/deps/libharrier-2a4aac525fa22512.rmeta: crates/harrier/src/lib.rs crates/harrier/src/audit.rs crates/harrier/src/events.rs crates/harrier/src/freq.rs crates/harrier/src/monitor.rs crates/harrier/src/shadow.rs crates/harrier/src/tag.rs

crates/harrier/src/lib.rs:
crates/harrier/src/audit.rs:
crates/harrier/src/events.rs:
crates/harrier/src/freq.rs:
crates/harrier/src/monitor.rs:
crates/harrier/src/shadow.rs:
crates/harrier/src/tag.rs:
