/root/repo/target/release/deps/table7-5b13157cd185e5f2.d: crates/hth-bench/src/bin/table7.rs

/root/repo/target/release/deps/table7-5b13157cd185e5f2: crates/hth-bench/src/bin/table7.rs

crates/hth-bench/src/bin/table7.rs:
