/root/repo/target/release/deps/criterion_shim-56f7e2ee4b3296b5.d: crates/criterion-shim/src/lib.rs

/root/repo/target/release/deps/libcriterion_shim-56f7e2ee4b3296b5.rlib: crates/criterion-shim/src/lib.rs

/root/repo/target/release/deps/libcriterion_shim-56f7e2ee4b3296b5.rmeta: crates/criterion-shim/src/lib.rs

crates/criterion-shim/src/lib.rs:
