/root/repo/target/release/deps/harrier-8111c56fed7b6cae.d: crates/harrier/src/lib.rs crates/harrier/src/audit.rs crates/harrier/src/events.rs crates/harrier/src/freq.rs crates/harrier/src/monitor.rs crates/harrier/src/naive.rs crates/harrier/src/shadow.rs crates/harrier/src/tag.rs

/root/repo/target/release/deps/libharrier-8111c56fed7b6cae.rlib: crates/harrier/src/lib.rs crates/harrier/src/audit.rs crates/harrier/src/events.rs crates/harrier/src/freq.rs crates/harrier/src/monitor.rs crates/harrier/src/naive.rs crates/harrier/src/shadow.rs crates/harrier/src/tag.rs

/root/repo/target/release/deps/libharrier-8111c56fed7b6cae.rmeta: crates/harrier/src/lib.rs crates/harrier/src/audit.rs crates/harrier/src/events.rs crates/harrier/src/freq.rs crates/harrier/src/monitor.rs crates/harrier/src/naive.rs crates/harrier/src/shadow.rs crates/harrier/src/tag.rs

crates/harrier/src/lib.rs:
crates/harrier/src/audit.rs:
crates/harrier/src/events.rs:
crates/harrier/src/freq.rs:
crates/harrier/src/monitor.rs:
crates/harrier/src/naive.rs:
crates/harrier/src/shadow.rs:
crates/harrier/src/tag.rs:
