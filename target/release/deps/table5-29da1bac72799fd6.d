/root/repo/target/release/deps/table5-29da1bac72799fd6.d: crates/hth-bench/src/bin/table5.rs

/root/repo/target/release/deps/table5-29da1bac72799fd6: crates/hth-bench/src/bin/table5.rs

crates/hth-bench/src/bin/table5.rs:
