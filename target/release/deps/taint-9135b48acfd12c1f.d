/root/repo/target/release/deps/taint-9135b48acfd12c1f.d: crates/hth-bench/benches/taint.rs

/root/repo/target/release/deps/taint-9135b48acfd12c1f: crates/hth-bench/benches/taint.rs

crates/hth-bench/benches/taint.rs:
