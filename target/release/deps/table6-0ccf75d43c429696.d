/root/repo/target/release/deps/table6-0ccf75d43c429696.d: crates/hth-bench/src/bin/table6.rs

/root/repo/target/release/deps/table6-0ccf75d43c429696: crates/hth-bench/src/bin/table6.rs

crates/hth-bench/src/bin/table6.rs:
