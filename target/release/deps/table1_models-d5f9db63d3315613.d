/root/repo/target/release/deps/table1_models-d5f9db63d3315613.d: crates/hth-bench/src/bin/table1_models.rs

/root/repo/target/release/deps/table1_models-d5f9db63d3315613: crates/hth-bench/src/bin/table1_models.rs

crates/hth-bench/src/bin/table1_models.rs:
