/root/repo/target/release/deps/hth_core-4d34e2a02b162eee.d: crates/hth-core/src/lib.rs crates/hth-core/src/cross_session.rs crates/hth-core/src/policy.rs crates/hth-core/src/secpert.rs crates/hth-core/src/session.rs crates/hth-core/src/warning.rs

/root/repo/target/release/deps/libhth_core-4d34e2a02b162eee.rlib: crates/hth-core/src/lib.rs crates/hth-core/src/cross_session.rs crates/hth-core/src/policy.rs crates/hth-core/src/secpert.rs crates/hth-core/src/session.rs crates/hth-core/src/warning.rs

/root/repo/target/release/deps/libhth_core-4d34e2a02b162eee.rmeta: crates/hth-core/src/lib.rs crates/hth-core/src/cross_session.rs crates/hth-core/src/policy.rs crates/hth-core/src/secpert.rs crates/hth-core/src/session.rs crates/hth-core/src/warning.rs

crates/hth-core/src/lib.rs:
crates/hth-core/src/cross_session.rs:
crates/hth-core/src/policy.rs:
crates/hth-core/src/secpert.rs:
crates/hth-core/src/session.rs:
crates/hth-core/src/warning.rs:
