/root/repo/target/release/deps/table8-d5c4e790c18096a3.d: crates/hth-bench/src/bin/table8.rs

/root/repo/target/release/deps/table8-d5c4e790c18096a3: crates/hth-bench/src/bin/table8.rs

crates/hth-bench/src/bin/table8.rs:
