/root/repo/target/release/deps/hth_bench-b91403366a9cd64f.d: crates/hth-bench/src/lib.rs crates/hth-bench/src/json.rs crates/hth-bench/src/perf.rs crates/hth-bench/src/report.rs crates/hth-bench/src/results.rs crates/hth-bench/src/tables.rs

/root/repo/target/release/deps/libhth_bench-b91403366a9cd64f.rlib: crates/hth-bench/src/lib.rs crates/hth-bench/src/json.rs crates/hth-bench/src/perf.rs crates/hth-bench/src/report.rs crates/hth-bench/src/results.rs crates/hth-bench/src/tables.rs

/root/repo/target/release/deps/libhth_bench-b91403366a9cd64f.rmeta: crates/hth-bench/src/lib.rs crates/hth-bench/src/json.rs crates/hth-bench/src/perf.rs crates/hth-bench/src/report.rs crates/hth-bench/src/results.rs crates/hth-bench/src/tables.rs

crates/hth-bench/src/lib.rs:
crates/hth-bench/src/json.rs:
crates/hth-bench/src/perf.rs:
crates/hth-bench/src/report.rs:
crates/hth-bench/src/results.rs:
crates/hth-bench/src/tables.rs:
