/root/repo/target/release/deps/all_results-439f62a44c75de2f.d: crates/hth-bench/src/bin/all_results.rs

/root/repo/target/release/deps/all_results-439f62a44c75de2f: crates/hth-bench/src/bin/all_results.rs

crates/hth-bench/src/bin/all_results.rs:
