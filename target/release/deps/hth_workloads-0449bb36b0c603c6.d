/root/repo/target/release/deps/hth_workloads-0449bb36b0c603c6.d: crates/hth-workloads/src/lib.rs crates/hth-workloads/src/exploits.rs crates/hth-workloads/src/extensions.rs crates/hth-workloads/src/libc.rs crates/hth-workloads/src/macro_bench.rs crates/hth-workloads/src/micro/mod.rs crates/hth-workloads/src/micro/exec_flow.rs crates/hth-workloads/src/micro/info_flow.rs crates/hth-workloads/src/micro/resource.rs crates/hth-workloads/src/scenario.rs crates/hth-workloads/src/table1_models.rs crates/hth-workloads/src/trusted.rs

/root/repo/target/release/deps/libhth_workloads-0449bb36b0c603c6.rlib: crates/hth-workloads/src/lib.rs crates/hth-workloads/src/exploits.rs crates/hth-workloads/src/extensions.rs crates/hth-workloads/src/libc.rs crates/hth-workloads/src/macro_bench.rs crates/hth-workloads/src/micro/mod.rs crates/hth-workloads/src/micro/exec_flow.rs crates/hth-workloads/src/micro/info_flow.rs crates/hth-workloads/src/micro/resource.rs crates/hth-workloads/src/scenario.rs crates/hth-workloads/src/table1_models.rs crates/hth-workloads/src/trusted.rs

/root/repo/target/release/deps/libhth_workloads-0449bb36b0c603c6.rmeta: crates/hth-workloads/src/lib.rs crates/hth-workloads/src/exploits.rs crates/hth-workloads/src/extensions.rs crates/hth-workloads/src/libc.rs crates/hth-workloads/src/macro_bench.rs crates/hth-workloads/src/micro/mod.rs crates/hth-workloads/src/micro/exec_flow.rs crates/hth-workloads/src/micro/info_flow.rs crates/hth-workloads/src/micro/resource.rs crates/hth-workloads/src/scenario.rs crates/hth-workloads/src/table1_models.rs crates/hth-workloads/src/trusted.rs

crates/hth-workloads/src/lib.rs:
crates/hth-workloads/src/exploits.rs:
crates/hth-workloads/src/extensions.rs:
crates/hth-workloads/src/libc.rs:
crates/hth-workloads/src/macro_bench.rs:
crates/hth-workloads/src/micro/mod.rs:
crates/hth-workloads/src/micro/exec_flow.rs:
crates/hth-workloads/src/micro/info_flow.rs:
crates/hth-workloads/src/micro/resource.rs:
crates/hth-workloads/src/scenario.rs:
crates/hth-workloads/src/table1_models.rs:
crates/hth-workloads/src/trusted.rs:
