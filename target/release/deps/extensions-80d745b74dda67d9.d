/root/repo/target/release/deps/extensions-80d745b74dda67d9.d: crates/hth-bench/src/bin/extensions.rs

/root/repo/target/release/deps/extensions-80d745b74dda67d9: crates/hth-bench/src/bin/extensions.rs

crates/hth-bench/src/bin/extensions.rs:
