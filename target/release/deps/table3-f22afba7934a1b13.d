/root/repo/target/release/deps/table3-f22afba7934a1b13.d: crates/hth-bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-f22afba7934a1b13: crates/hth-bench/src/bin/table3.rs

crates/hth-bench/src/bin/table3.rs:
