/root/repo/target/release/deps/emukernel-a0516f1c704b6c91.d: crates/emukernel/src/lib.rs crates/emukernel/src/kernel.rs crates/emukernel/src/net.rs crates/emukernel/src/process.rs crates/emukernel/src/vfs.rs

/root/repo/target/release/deps/libemukernel-a0516f1c704b6c91.rlib: crates/emukernel/src/lib.rs crates/emukernel/src/kernel.rs crates/emukernel/src/net.rs crates/emukernel/src/process.rs crates/emukernel/src/vfs.rs

/root/repo/target/release/deps/libemukernel-a0516f1c704b6c91.rmeta: crates/emukernel/src/lib.rs crates/emukernel/src/kernel.rs crates/emukernel/src/net.rs crates/emukernel/src/process.rs crates/emukernel/src/vfs.rs

crates/emukernel/src/lib.rs:
crates/emukernel/src/kernel.rs:
crates/emukernel/src/net.rs:
crates/emukernel/src/process.rs:
crates/emukernel/src/vfs.rs:
