/root/repo/target/release/deps/proptest_shim-a305bd2c418abf1d.d: crates/proptest-shim/src/lib.rs crates/proptest-shim/src/collection.rs

/root/repo/target/release/deps/libproptest_shim-a305bd2c418abf1d.rlib: crates/proptest-shim/src/lib.rs crates/proptest-shim/src/collection.rs

/root/repo/target/release/deps/libproptest_shim-a305bd2c418abf1d.rmeta: crates/proptest-shim/src/lib.rs crates/proptest-shim/src/collection.rs

crates/proptest-shim/src/lib.rs:
crates/proptest-shim/src/collection.rs:
