/root/repo/target/release/examples/quickstart-8cca3c5d88fc9afa.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-8cca3c5d88fc9afa: examples/quickstart.rs

examples/quickstart.rs:
