//! Cross-session hunting (paper §10, items 3 and 6): correlate behaviour
//! *across* monitored runs — a dropper in one session, the execution of
//! its payload in another, and two bots sharing a command-and-control
//! host — and then the full fleet correlator: the coordinated
//! twelve-session campaign whose members are individually (near-)
//! silent and only damn each other in aggregate.
//!
//! Run with `cargo run --example cross_session`.

use hth::hth_core::{digest_session, CorrelateConfig, Correlator};
use hth::hth_workloads::coordinated;
use hth::{Session, SessionConfig, SessionHistory};

const DOWNLOADER: &str = r#"
_start:
    mov eax, 5          ; open("/tmp/update", O_CREAT|O_WRONLY)
    mov ebx, path
    mov ecx, 0x41
    int 0x80
    mov esi, eax
    mov eax, 4          ; write the payload
    mov ebx, esi
    mov ecx, payload
    mov edx, 8
    int 0x80
    mov eax, 1
    mov ebx, 0
    int 0x80
.data
path:    .asciz "/tmp/update"
payload: .asciz "PAYLOAD"
"#;

const LAUNCHER: &str = r"
_start:
    mov ebp, esp
    mov ebx, [ebp+8]    ; argv[1] — the user names the file!
    mov eax, 11         ; execve
    int 0x80
    hlt
";

const BOT: &str = r"
_start:
    mov eax, 102
    mov ebx, 1
    mov ecx, sockargs
    int 0x80
    mov esi, eax
    mov [connargs], esi
    mov eax, 102        ; beacon to the hardcoded C2
    mov ebx, 3
    mov ecx, connargs
    int 0x80
    mov eax, 1
    mov ebx, 0
    int 0x80
.data
sockargs: .long 2, 1, 0
addr:     .word 2
port:     .word 6667
ip:       .long 0x0a0000c2
connargs: .long 0, addr, 8
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut history = SessionHistory::new();

    // --- Session 1: the dropper plants /tmp/update (High on its own,
    //     but the interesting part is what the history remembers). ---
    let mut s1 = Session::new(SessionConfig::default())?;
    s1.kernel.register_binary("/bin/downloader", DOWNLOADER, &[]);
    s1.start("/bin/downloader", &["/bin/downloader"], &[])?;
    s1.run()?;
    history.absorb(&s1, "/bin/downloader");
    println!("session 1: downloader ran; history remembers {} drop(s)", history.drops().count());

    // --- Session 2: a different program executes the dropped file. The
    //     file name comes from the *user*, so the single-session policy
    //     is silent — only the cross-session rule sees the pattern. ---
    let mut s2 = Session::new(SessionConfig::default())?;
    history.arm(&mut s2)?;
    s2.kernel.register_binary("/bin/launcher", LAUNCHER, &[]);
    s2.start("/bin/launcher", &["/bin/launcher", "/tmp/update"], &[])?;
    s2.run()?;
    println!("\nsession 2: launcher executed /tmp/update");
    for warning in s2.warnings() {
        println!("  [{}] {}", warning.severity, warning.message);
    }

    // --- Sessions 3 and 4: two unrelated programs beacon to the same
    //     hardcoded host — the §10 bot-network correlation. ---
    for bot in ["/bin/bot-a", "/bin/bot-b"] {
        let mut s = Session::new(SessionConfig::default())?;
        s.kernel.net.add_host("c2.example", 0x0a00_00c2);
        s.kernel.net.add_peer(
            hth::emukernel::Endpoint { ip: 0x0a00_00c2, port: 6667 },
            hth::emukernel::Peer::default(),
        );
        s.kernel.register_binary(bot, BOT, &[]);
        s.start(bot, &[bot], &[])?;
        s.run()?;
        history.absorb(&s, bot);
    }
    println!("\nsessions 3+4: two bots beaconed");
    for report in history.shared_c2(2) {
        println!(
            "  BOTNET: {} is contacted (hardcoded) by {}",
            report.endpoint,
            report.programs.join(" and "),
        );
    }

    // --- The fleet correlator at scale: run the coordinated campaign
    //     (4 bots sharing a C2, 4 droppers planting one artifact, 4
    //     leakers slicing exfil under every per-session threshold),
    //     digest each session, and let the correlator Secpert judge
    //     the fleet as a whole. This is what `hth fleet --correlate`
    //     does over the sharded analyst pool. ---
    let mut correlator = Correlator::new(CorrelateConfig::default());
    for (sid, scenario) in coordinated::scenarios().iter().enumerate() {
        let mut session = Session::new(SessionConfig::default())?;
        let start = (scenario.setup)(&mut session);
        let argv: Vec<&str> = start.argv.iter().map(String::as_str).collect();
        let env: Vec<(&str, &str)> =
            start.env.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
        session.start(start.path, &argv, &env)?;
        session.run()?;
        correlator.ingest(digest_session(
            sid as u64,
            scenario.id,
            session.events(),
            session.warnings(),
        ));
    }
    let report = correlator.correlate().map_err(|e| e.to_string())?;
    println!("\nthe campaign, correlated:");
    print!("{}", report.render());
    let c2 =
        report.warnings.iter().find(|w| w.rule == "shared_c2").expect("the campaign shares a C2");
    println!("\nthe shared_c2 causal tree (fleet-level `hth explain`):");
    if let Some(provenance) = &c2.provenance {
        print!("{}", provenance.render_tree(c2));
    }
    Ok(())
}
