//! Cross-session hunting (paper §10, items 3 and 6): correlate behaviour
//! *across* monitored runs — a dropper in one session, the execution of
//! its payload in another, and two bots sharing a command-and-control
//! host.
//!
//! Run with `cargo run --example cross_session`.

use hth::{Session, SessionConfig, SessionHistory};

const DOWNLOADER: &str = r#"
_start:
    mov eax, 5          ; open("/tmp/update", O_CREAT|O_WRONLY)
    mov ebx, path
    mov ecx, 0x41
    int 0x80
    mov esi, eax
    mov eax, 4          ; write the payload
    mov ebx, esi
    mov ecx, payload
    mov edx, 8
    int 0x80
    mov eax, 1
    mov ebx, 0
    int 0x80
.data
path:    .asciz "/tmp/update"
payload: .asciz "PAYLOAD"
"#;

const LAUNCHER: &str = r"
_start:
    mov ebp, esp
    mov ebx, [ebp+8]    ; argv[1] — the user names the file!
    mov eax, 11         ; execve
    int 0x80
    hlt
";

const BOT: &str = r"
_start:
    mov eax, 102
    mov ebx, 1
    mov ecx, sockargs
    int 0x80
    mov esi, eax
    mov [connargs], esi
    mov eax, 102        ; beacon to the hardcoded C2
    mov ebx, 3
    mov ecx, connargs
    int 0x80
    mov eax, 1
    mov ebx, 0
    int 0x80
.data
sockargs: .long 2, 1, 0
addr:     .word 2
port:     .word 6667
ip:       .long 0x0a0000c2
connargs: .long 0, addr, 8
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut history = SessionHistory::new();

    // --- Session 1: the dropper plants /tmp/update (High on its own,
    //     but the interesting part is what the history remembers). ---
    let mut s1 = Session::new(SessionConfig::default())?;
    s1.kernel.register_binary("/bin/downloader", DOWNLOADER, &[]);
    s1.start("/bin/downloader", &["/bin/downloader"], &[])?;
    s1.run()?;
    history.absorb(&s1, "/bin/downloader");
    println!("session 1: downloader ran; history remembers {} drop(s)", history.drops().count());

    // --- Session 2: a different program executes the dropped file. The
    //     file name comes from the *user*, so the single-session policy
    //     is silent — only the cross-session rule sees the pattern. ---
    let mut s2 = Session::new(SessionConfig::default())?;
    history.arm(&mut s2)?;
    s2.kernel.register_binary("/bin/launcher", LAUNCHER, &[]);
    s2.start("/bin/launcher", &["/bin/launcher", "/tmp/update"], &[])?;
    s2.run()?;
    println!("\nsession 2: launcher executed /tmp/update");
    for warning in s2.warnings() {
        println!("  [{}] {}", warning.severity, warning.message);
    }

    // --- Sessions 3 and 4: two unrelated programs beacon to the same
    //     hardcoded host — the §10 bot-network correlation. ---
    for bot in ["/bin/bot-a", "/bin/bot-b"] {
        let mut s = Session::new(SessionConfig::default())?;
        s.kernel.net.add_host("c2.example", 0x0a00_00c2);
        s.kernel.net.add_peer(
            hth::emukernel::Endpoint { ip: 0x0a00_00c2, port: 6667 },
            hth::emukernel::Peer::default(),
        );
        s.kernel.register_binary(bot, BOT, &[]);
        s.start(bot, &[bot], &[])?;
        s.run()?;
        history.absorb(&s, bot);
    }
    println!("\nsessions 3+4: two bots beaconed");
    for report in history.shared_c2(2) {
        println!(
            "  BOTNET: {} is contacted (hardcoded) by {}",
            report.endpoint,
            report.programs.join(" and "),
        );
    }
    Ok(())
}
