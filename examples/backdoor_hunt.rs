//! Backdoor hunt: run the paper's `pma` (Poor Man's Access) scenario —
//! a daemon that bridges a remote attacker to a shell through two FIFOs
//! — and watch HTH expose every stage of the backdoor.
//!
//! Run with `cargo run --example backdoor_hunt`.

use hth::hth_workloads::exploits;
use hth::Severity;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The workload catalog ships every Table 8 exploit; pick pma.
    let scenario = exploits::scenarios()
        .into_iter()
        .find(|s| s.id == "pma")
        .expect("pma is in the Table 8 set");

    println!("scenario : {}", scenario.id);
    println!("models   : {}", scenario.description);
    println!("paper    : {}\n", scenario.paper_note);

    let result = scenario.run()?;

    println!("--- warnings ({} total) ---", result.warnings.len());
    for warning in &result.warnings {
        println!("[{}] {}", warning.severity, warning.rule);
        for part in warning.message.split(" | ") {
            println!("      {part}");
        }
    }

    let highs = result.warnings.iter().filter(|w| w.severity == Severity::High).count();
    println!("\n{} High-severity warnings — the backdoor is exposed:", highs);
    println!(" * the hardcoded shell prompt written into the FIFO (dropper pattern),");
    println!(" * attacker bytes relayed from the socket into the shell pipe,");
    println!(" * results served back over the hardcoded LocalHost:11111 server.");
    println!("\nThe `system(\"csh -i <inpipe …\")` execve is NOT warned: the");
    println!("/bin/sh string lives in trusted libc — the paper's documented");
    println!("false negative, reproduced faithfully.");
    Ok(())
}
