//! Policy authoring: extend Secpert with a custom CLIPS rule, exactly
//! the way the paper's Appendix A writes its rules.
//!
//! Run with `cargo run --example policy_authoring`.
//!
//! The custom rule flags any program that *reads* the password database
//! (a resource access the stock policy only observes): a corporate
//! policy layered on top of HTH's generic one.

use hth::{Session, SessionConfig};

const CUSTOM_RULE: &str = r#"
(defglobal ?*PASSWORD_DB* = "/home/user/.pwsafe.dat")

(defrule corp_password_db_access "flag any open of the password database"
  ?e <- (system_call_access (system_call_name SYS_open)
          (pid ?pid) (resource_name ?name) (time ?time))
  (test (eq ?name ?*PASSWORD_DB*))
  =>
  (bind ?msg (str-cat "Corporate policy: " ?name " was opened"))
  (printout t (severity-text 2) " " ?msg crlf)
  (warn 2 corp_password_db_access ?pid ?time ?msg))
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut session = Session::new(SessionConfig::default())?;

    // Load the extra rule on top of the standard paper policy.
    session.secpert_mut().load_policy(CUSTOM_RULE)?;

    session.kernel.vfs.install(
        "/home/user/.pwsafe.dat",
        hth::emukernel::FileNode::regular(b"site=bank pass=hunter2".to_vec()),
    );
    session.kernel.register_binary(
        "/bin/sneaky-reader",
        r#"
        _start:
            mov eax, 5          ; open the password DB (hardcoded path)
            mov ebx, db
            mov ecx, 0
            int 0x80
            mov edi, eax
            mov eax, 3          ; read it
            mov ebx, edi
            mov ecx, 0x09000000
            mov edx, 22
            int 0x80
            mov eax, 1
            mov ebx, 0
            int 0x80
        .data
        db: .asciz "/home/user/.pwsafe.dat"
        "#,
        &[],
    );

    session.start("/bin/sneaky-reader", &["/bin/sneaky-reader"], &[])?;
    session.run()?;

    print!("{}", session.take_transcript());
    println!("\nwarnings:");
    for warning in session.warnings() {
        println!("  [{}] {} — {}", warning.severity, warning.rule, warning.message);
    }
    assert!(session.warnings().iter().any(|w| w.rule == "corp_password_db_access"));
    println!("\nthe custom CLIPS rule fired alongside the standard policy.");
    Ok(())
}
