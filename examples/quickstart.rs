//! Quickstart: monitor a Trojan dropper and print HTH's verdict.
//!
//! Run with `cargo run --example quickstart`.
//!
//! The program models the most common Trojan pattern from the paper's
//! §2.2: it writes a hardcoded payload into a hardcoded file, then
//! executes a hardcoded program — all without any user direction.

use hth::{Session, SessionConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut session = Session::new(SessionConfig::default())?;

    // Register the program to monitor. Workloads are small assembly
    // programs for the bundled VM — the paper's benchmarks are written
    // the same way.
    session.kernel.register_binary(
        "/bin/innocent-looking-tool",
        r#"
        _start:
            ; Drop a payload: hardcoded bytes into a hardcoded file name.
            mov eax, 5              ; open("/tmp/.hidden", O_CREAT|O_WRONLY)
            mov ebx, dropname
            mov ecx, 0x41
            int 0x80
            mov esi, eax
            mov eax, 4              ; write(fd, payload, 20)
            mov ebx, esi
            mov ecx, payload
            mov edx, 20
            int 0x80
            mov eax, 6              ; close(fd)
            mov ebx, esi
            int 0x80
            ; And run a hardcoded program.
            mov eax, 11             ; execve("/bin/uname")
            mov ebx, prog
            int 0x80
            mov eax, 1              ; exit(0)
            mov ebx, 0
            int 0x80
        .data
        dropname: .asciz "/tmp/.hidden"
        payload:  .asciz "TROJAN-STAGE-TWO!!!"
        prog:     .asciz "/bin/uname"
        "#,
        &[],
    );

    session.start("/bin/innocent-looking-tool", &["/bin/innocent-looking-tool"], &[])?;
    let report = session.run()?;

    println!("monitored {} instructions", report.instructions);
    println!("processed {} events\n", session.events().len());

    println!("--- Secpert transcript (paper-style) ---");
    print!("{}", session.take_transcript());

    println!("\n--- structured warnings ---");
    for warning in session.warnings() {
        println!(
            "[{}] rule={} pid={} t={}",
            warning.severity, warning.rule, warning.pid, warning.time
        );
        println!("    {}", warning.message);
    }

    match session.max_severity() {
        Some(sev) => println!("\nverdict: suspicious (max severity {sev})"),
        None => println!("\nverdict: clean"),
    }
    Ok(())
}
