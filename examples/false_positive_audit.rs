//! False-positive audit: run every Table 7 trusted program and every
//! Table 8 exploit, and print the detection/false-positive summary —
//! the paper's §8.2/§8.3 in one screen.
//!
//! Run with `cargo run --example false_positive_audit`.

use hth::hth_workloads::{exploits, trusted};
use hth::Severity;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Trusted programs (Table 7) ==");
    let mut false_positives = 0;
    let mut trusted_total = 0;
    for scenario in trusted::scenarios() {
        trusted_total += 1;
        let result = scenario.run()?;
        let verdict = match result.max_severity() {
            None => "clean  ".to_string(),
            Some(sev) => {
                false_positives += 1;
                format!("warn[{sev}]")
            }
        };
        println!("  {verdict}  {:<12} {}", scenario.id, scenario.description);
    }

    println!("\n== Real exploits (Table 8) ==");
    let mut detected = 0;
    let mut exploits_total = 0;
    for scenario in exploits::scenarios() {
        exploits_total += 1;
        let result = scenario.run()?;
        let verdict = match result.max_severity() {
            None => "MISSED ".to_string(),
            Some(sev) => {
                if sev >= Severity::Low {
                    detected += 1;
                }
                format!("warn[{sev}]")
            }
        };
        println!("  {verdict}  {:<14} {}", scenario.id, scenario.description);
    }

    println!("\nsummary:");
    println!(
        "  exploits detected      : {detected}/{exploits_total} (every Table 8 exploit warns)"
    );
    println!(
        "  trusted programs noisy : {false_positives}/{trusted_total} (all Low severity — \
         make/g++ helper execs and xeyes' X-library writes, as in the paper)"
    );
    Ok(())
}
